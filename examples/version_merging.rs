//! Version merging (§7, Figure 16): two users independently evolve the same
//! view; a third user merges both improvements without copying a single
//! object.
//!
//! ```text
//! cargo run --example version_merging
//! ```

use tse::object_model::Value;
use tse::workload::university::build_university;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (mut tse, _) = build_university()?;
    tse.create_view("VS.1", &["Person", "Student"])?;
    tse.create_view("VS.2", &["Person", "Student"])?;

    // Shared data predating either change.
    let v0 = *tse.views().versions("VS.1")?.first().unwrap();
    let ann = tse.create(v0, "Student", &[("name", "ann".into())])?;

    // User 1 adds `register`; user 2 adds `student_id` — both to "Student".
    let v1 = tse.evolve_cmd("VS.1", "add_attribute register: bool = false to Student")?.view;
    let v2 = tse.evolve_cmd("VS.2", "add_attribute student_id: int = 0 to Student")?.view;
    tse.set(v1, ann, "Student", &[("register", Value::Bool(true))])?;
    tse.set(v2, ann, "Student", &[("student_id", Value::Int(4711))])?;

    // User 3 wants both improvements: merge — no instance copying, no manual
    // schema integration, duplicate classes detected via the global schema.
    let merged = tse.merge_views("VS.1", "VS.2", "VS.3")?;
    println!("merged view:");
    print!("{}", tse.view(merged)?.render(tse.db()));

    // Person was identical in both versions → appears once. The two Student
    // classes are distinct (different stored attributes) → suffixed.
    assert!(tse.view(merged)?.lookup(tse.db(), "Person").is_ok());
    println!(
        "ann through Student.v1: register = {:?}",
        tse.get(merged, ann, "Student.v1", "register")?
    );
    println!(
        "ann through Student.v2: student_id = {:?}",
        tse.get(merged, ann, "Student.v2", "student_id")?
    );
    assert_eq!(tse.get(merged, ann, "Student.v1", "register")?, Value::Bool(true));
    assert_eq!(tse.get(merged, ann, "Student.v2", "student_id")?, Value::Int(4711));
    // No duplicate fields were created (Figure 16's warning): the attribute
    // sets stay separate definitions.
    assert!(tse.get(merged, ann, "Student.v1", "student_id").is_err());
    println!("one object, both improvements, zero copies. done.");
    Ok(())
}
