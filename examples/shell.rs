//! An interactive TSE shell: define a schema, give users views, evolve them
//! transparently, and poke at shared objects across schema versions.
//!
//! ```text
//! cargo run --example shell                 # interactive
//! echo '...commands...' | cargo run --example shell   # scripted
//! ```
//!
//! Commands:
//! ```text
//! class <Name> [under A,B] [(attr: type [= default], …)]   define a base class
//! view <family> = <Class>, <Class>, …                      create a view
//! use <family>[@version]                                   select current view
//! evolve <schema-change command>                           evolve current family
//! show [types]                                             render current view
//! versions                                                 list the family's versions
//! new <Class> [attr=value …]                               create an object
//! get <oid> <Class> <attr>                                 read an attribute
//! set <oid> <Class> <attr>=<value> …                       write attributes
//! extent <Class>                                           list members
//! merge <famA> <famB> into <famC>                          merge two views (§7)
//! save <path> | load <path>                                 persist / restore
//! help | quit
//! ```

use std::io::{BufRead, Write};

use tse::core::{change, TseSystem};
use tse::object_model::{Oid, PropertyDef, Value};
use tse::view::ViewId;

struct Shell {
    tse: TseSystem,
    family: Option<String>,
    view: Option<ViewId>,
}

fn parse_oid(s: &str) -> Result<Oid, String> {
    s.trim_start_matches('o')
        .parse::<u64>()
        .map(Oid)
        .map_err(|_| format!("bad oid {s:?} (use e.g. o3)"))
}

fn parse_assignments(parts: &[&str]) -> Result<Vec<(String, Value)>, String> {
    parts
        .iter()
        .map(|p| {
            let (k, v) = p.split_once('=').ok_or_else(|| format!("expected attr=value, got {p:?}"))?;
            let value = change::parse_value(v).map_err(|e| e.to_string())?;
            Ok((k.trim().to_string(), value))
        })
        .collect()
}

impl Shell {
    fn new() -> Self {
        Shell { tse: TseSystem::new(), family: None, view: None }
    }

    fn current(&self) -> Result<(String, ViewId), String> {
        match (&self.family, self.view) {
            (Some(f), Some(v)) => Ok((f.clone(), v)),
            _ => Err("no view selected; `view <fam> = …` then `use <fam>`".into()),
        }
    }

    fn exec(&mut self, line: &str) -> Result<String, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let (cmd, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match cmd {
            "help" => Ok(HELP.to_string()),
            "class" => self.cmd_class(rest),
            "view" => self.cmd_view(rest),
            "use" => self.cmd_use(rest),
            "evolve" => self.cmd_evolve(rest),
            "show" => {
                let (_, v) = self.current()?;
                let view = self.tse.view(v).map_err(|e| e.to_string())?;
                Ok(if rest == "types" {
                    view.render_with_types(self.tse.db())
                } else {
                    view.render(self.tse.db())
                })
            }
            "versions" => {
                let (f, _) = self.current()?;
                let ids = self.tse.views().versions(&f).map_err(|e| e.to_string())?;
                Ok(ids
                    .iter()
                    .enumerate()
                    .map(|(i, id)| format!("{f}@{} = {id}\n", i + 1))
                    .collect())
            }
            "new" => self.cmd_new(rest),
            "get" => self.cmd_get(rest),
            "set" => self.cmd_set(rest),
            "extent" => {
                let (_, v) = self.current()?;
                let oids = self.tse.extent(v, rest).map_err(|e| e.to_string())?;
                Ok(format!(
                    "{{ {} }} ({} members)\n",
                    oids.iter().map(|o| o.to_string()).collect::<Vec<_>>().join(" "),
                    oids.len()
                ))
            }
            "merge" => self.cmd_merge(rest),
            "save" => {
                self.tse.save(std::path::Path::new(rest)).map_err(|e| e.to_string())?;
                Ok(format!("saved to {rest}\n"))
            }
            "load" => {
                self.tse = TseSystem::load(std::path::Path::new(rest)).map_err(|e| e.to_string())?;
                self.family = None;
                self.view = None;
                Ok(format!("loaded {rest}; select a view with `use`\n"))
            }
            other => Err(format!("unknown command {other:?}; try `help`")),
        }
    }

    fn cmd_class(&mut self, rest: &str) -> Result<String, String> {
        // class Name [under A,B] [(attr: type [= default], ...)]
        let (head, props_src) = match rest.split_once('(') {
            Some((h, p)) => (h.trim(), Some(p.trim_end_matches(')').trim())),
            None => (rest.trim(), None),
        };
        let (name, supers) = match head.split_once(" under ") {
            Some((n, s)) => (n.trim(), s.split(',').map(|x| x.trim()).collect::<Vec<_>>()),
            None => (head.trim(), vec![]),
        };
        let mut props = Vec::new();
        if let Some(src) = props_src {
            for decl in src.split(',').filter(|d| !d.trim().is_empty()) {
                let (pname, rest) = decl
                    .split_once(':')
                    .ok_or_else(|| format!("expected 'attr: type', got {decl:?}"))?;
                let (ty, default) = match rest.split_once('=') {
                    Some((t, d)) => (
                        change::parse_type(t).map_err(|e| e.to_string())?,
                        change::parse_value(d).map_err(|e| e.to_string())?,
                    ),
                    None => {
                        let t = change::parse_type(rest).map_err(|e| e.to_string())?;
                        let d = change::default_for_type(&t);
                        (t, d)
                    }
                };
                props.push(PropertyDef::stored(pname.trim(), ty, default));
            }
        }
        self.tse.define_base_class(name, &supers, props).map_err(|e| e.to_string())?;
        Ok(format!("class {name} defined\n"))
    }

    fn cmd_view(&mut self, rest: &str) -> Result<String, String> {
        let (fam, classes) =
            rest.split_once('=').ok_or("expected `view <fam> = <Class>, …`")?;
        let names: Vec<&str> = classes.split(',').map(|c| c.trim()).collect();
        let id = self.tse.create_view(fam.trim(), &names).map_err(|e| e.to_string())?;
        self.family = Some(fam.trim().to_string());
        self.view = Some(id);
        Ok(format!("view {} created and selected\n", fam.trim()))
    }

    fn cmd_use(&mut self, rest: &str) -> Result<String, String> {
        let (fam, version) = match rest.split_once('@') {
            Some((f, v)) => (f.trim(), Some(v.trim().parse::<usize>().map_err(|e| e.to_string())?)),
            None => (rest.trim(), None),
        };
        let versions = self.tse.views().versions(fam).map_err(|e| e.to_string())?;
        let id = match version {
            Some(n) if n >= 1 && n <= versions.len() => versions[n - 1],
            Some(n) => return Err(format!("{fam} has {} versions, not {n}", versions.len())),
            None => *versions.last().unwrap(),
        };
        self.family = Some(fam.to_string());
        self.view = Some(id);
        Ok(format!("using {fam} (version {})\n", self.tse.view(id).map_err(|e| e.to_string())?.version))
    }

    fn cmd_evolve(&mut self, rest: &str) -> Result<String, String> {
        let (fam, _) = self.current()?;
        let report = self.tse.evolve_cmd(&fam, rest).map_err(|e| e.to_string())?;
        self.view = Some(report.view);
        let mut out = String::new();
        if !report.script.is_empty() {
            out.push_str("generated view specification:\n");
            out.push_str(&report.script);
        }
        out.push_str(&format!(
            "now at version {} ({} classes touched, {} duplicates folded)\n",
            self.tse.view(report.view).map_err(|e| e.to_string())?.version,
            report.classes_touched,
            report.duplicates_folded
        ));
        Ok(out)
    }

    fn cmd_new(&mut self, rest: &str) -> Result<String, String> {
        let (_, v) = self.current()?;
        let mut parts = rest.split_whitespace();
        let class = parts.next().ok_or("expected `new <Class> [attr=value …]`")?;
        let assigns = parse_assignments(&parts.collect::<Vec<_>>())?;
        let refs: Vec<(&str, Value)> =
            assigns.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let oid = self.tse.create(v, class, &refs).map_err(|e| e.to_string())?;
        Ok(format!("{oid}\n"))
    }

    fn cmd_get(&mut self, rest: &str) -> Result<String, String> {
        let (_, v) = self.current()?;
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let [oid, class, attr] = parts[..] else {
            return Err("expected `get <oid> <Class> <attr>`".into());
        };
        let value = self
            .tse
            .get(v, parse_oid(oid)?, class, attr)
            .map_err(|e| e.to_string())?;
        Ok(format!("{value:?}\n"))
    }

    fn cmd_set(&mut self, rest: &str) -> Result<String, String> {
        let (_, v) = self.current()?;
        let mut parts = rest.split_whitespace();
        let oid = parse_oid(parts.next().ok_or("expected `set <oid> <Class> attr=value …`")?)?;
        let class = parts.next().ok_or("missing class")?;
        let assigns = parse_assignments(&parts.collect::<Vec<_>>())?;
        let refs: Vec<(&str, Value)> =
            assigns.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        self.tse.set(v, oid, class, &refs).map_err(|e| e.to_string())?;
        Ok("ok\n".into())
    }

    fn cmd_merge(&mut self, rest: &str) -> Result<String, String> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let [a, b, "into", c] = parts[..] else {
            return Err("expected `merge <famA> <famB> into <famC>`".into());
        };
        let id = self.tse.merge_views(a, b, c).map_err(|e| e.to_string())?;
        self.family = Some(c.to_string());
        self.view = Some(id);
        Ok(format!("merged into {c} and selected\n"))
    }
}

const HELP: &str = "\
commands: class, view, use, evolve, show, versions, new, get, set, extent,\n\
merge, save, load, help, quit — see the file header for syntax.\n";

fn main() {
    let mut shell = Shell::new();
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    if interactive {
        println!("TSE shell — `help` for commands, `quit` to exit.");
    }
    loop {
        if interactive {
            let prompt = shell.family.clone().unwrap_or_else(|| "tse".into());
            print!("{prompt}> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        match shell.exec(line) {
            Ok(out) => print!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}

/// Minimal TTY check without a dependency: scripted runs pipe stdin.
fn atty_stdin() -> bool {
    use std::os::unix::io::AsRawFd;
    // SAFETY: isatty on a valid fd.
    unsafe { libc_isatty(std::io::stdin().as_raw_fd()) }
}

#[cfg(unix)]
unsafe fn libc_isatty(fd: i32) -> bool {
    extern "C" {
        fn isatty(fd: i32) -> i32;
    }
    isatty(fd) == 1
}
