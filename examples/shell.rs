//! An interactive TSE shell: define a schema, give users views, evolve them
//! transparently, and poke at shared objects across schema versions.
//!
//! The shell is written against the [`TseClient`] trait, so the same loop
//! drives an in-process system or a remote `tse-server`:
//!
//! ```text
//! cargo run --example shell                          # in-process, interactive
//! echo '...commands...' | cargo run --example shell  # scripted
//! cargo run --example shell -- --connect 127.0.0.1:7421 --user ann
//! ```
//!
//! Commands:
//! ```text
//! class <Name> [under A,B] [(attr: type [= default], …)]   define a base class
//! view <family> = <Class>, <Class>, …                      create a view family
//! use <family>                                             bind to a family
//! evolve <schema-change command>                           evolve bound family
//! show                                                     render bound view
//! versions                                                 count the family's versions
//! new <Class> [attr=value …]                               create an object
//! get <oid> <Class> <attr>                                 read an attribute
//! set <oid> <Class> <attr>=<value> …                       write attributes
//! extent <Class>                                           list members
//! select <Class> where <expr>                              filter members
//! health                                                   service health
//! help | quit
//! ```

use std::io::{BufRead, Write};

use tse::core::{change, SharedSystem, TseClient, TseReader, TseWriter};
use tse::object_model::{Oid, PropertyDef, Value};
use tse::server::RemoteClient;

struct Shell<C: TseClient> {
    client: C,
}

fn parse_oid(s: &str) -> Result<Oid, String> {
    s.trim_start_matches('o')
        .parse::<u64>()
        .map(Oid)
        .map_err(|_| format!("bad oid {s:?} (use e.g. o3)"))
}

fn parse_assignments(parts: &[&str]) -> Result<Vec<(String, Value)>, String> {
    parts
        .iter()
        .map(|p| {
            let (k, v) = p.split_once('=').ok_or_else(|| format!("expected attr=value, got {p:?}"))?;
            let value = change::parse_value(v).map_err(|e| e.to_string())?;
            Ok((k.trim().to_string(), value))
        })
        .collect()
}

impl<C: TseClient> Shell<C> {
    fn new(client: C) -> Self {
        Shell { client }
    }

    fn exec(&mut self, line: &str) -> Result<String, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let (cmd, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match cmd {
            "help" => Ok(HELP.to_string()),
            "class" => self.cmd_class(rest),
            "view" => self.cmd_view(rest),
            "use" => {
                let version = self.client.bind(rest).map_err(|e| e.to_string())?;
                if version == 0 {
                    Ok(format!("bound to {rest} (no view yet; `view {rest} = …`)\n"))
                } else {
                    Ok(format!("using {rest} (version {version})\n"))
                }
            }
            "evolve" => self.cmd_evolve(rest),
            "show" => self.client.describe().map_err(|e| e.to_string()),
            "versions" => {
                let family = self.client.family();
                let n = self.client.versions().map_err(|e| e.to_string())?;
                Ok((1..=n).map(|v| format!("{family}@{v}\n")).collect())
            }
            "new" => self.cmd_new(rest),
            "get" => self.cmd_get(rest),
            "set" => self.cmd_set(rest),
            "extent" => {
                let oids = self
                    .client
                    .session()
                    .and_then(|s| s.extent(rest))
                    .map_err(|e| e.to_string())?;
                Ok(render_oids(&oids))
            }
            "select" => self.cmd_select(rest),
            "health" => {
                let health = self.client.health().map_err(|e| e.to_string())?;
                Ok(format!("{}\n", health.name()))
            }
            other => Err(format!("unknown command {other:?}; try `help`")),
        }
    }

    fn cmd_class(&mut self, rest: &str) -> Result<String, String> {
        // class Name [under A,B] [(attr: type [= default], ...)]
        let (head, props_src) = match rest.split_once('(') {
            Some((h, p)) => (h.trim(), Some(p.trim_end_matches(')').trim())),
            None => (rest.trim(), None),
        };
        let (name, supers) = match head.split_once(" under ") {
            Some((n, s)) => (n.trim(), s.split(',').map(|x| x.trim()).collect::<Vec<_>>()),
            None => (head.trim(), vec![]),
        };
        let mut props = Vec::new();
        if let Some(src) = props_src {
            for decl in src.split(',').filter(|d| !d.trim().is_empty()) {
                let (pname, rest) = decl
                    .split_once(':')
                    .ok_or_else(|| format!("expected 'attr: type', got {decl:?}"))?;
                let (ty, default) = match rest.split_once('=') {
                    Some((t, d)) => (
                        change::parse_type(t).map_err(|e| e.to_string())?,
                        change::parse_value(d).map_err(|e| e.to_string())?,
                    ),
                    None => {
                        let t = change::parse_type(rest).map_err(|e| e.to_string())?;
                        let d = change::default_for_type(&t);
                        (t, d)
                    }
                };
                props.push(PropertyDef::stored(pname.trim(), ty, default));
            }
        }
        self.client.define_class(name, &supers, props).map_err(|e| e.to_string())?;
        Ok(format!("class {name} defined\n"))
    }

    fn cmd_view(&mut self, rest: &str) -> Result<String, String> {
        let (fam, classes) =
            rest.split_once('=').ok_or("expected `view <fam> = <Class>, …`")?;
        let names: Vec<&str> = classes.split(',').map(|c| c.trim()).collect();
        self.client.bind(fam.trim()).map_err(|e| e.to_string())?;
        self.client.create_view(&names).map_err(|e| e.to_string())?;
        Ok(format!("view {} created and selected\n", fam.trim()))
    }

    fn cmd_evolve(&mut self, rest: &str) -> Result<String, String> {
        let summary = self.client.evolve(rest).map_err(|e| e.to_string())?;
        let mut out = String::new();
        if !summary.script.is_empty() {
            out.push_str("generated view specification:\n");
            out.push_str(&summary.script);
        }
        out.push_str(&format!(
            "now at version {} ({} classes touched, {} duplicates folded)\n",
            summary.version, summary.classes_touched, summary.duplicates_folded
        ));
        Ok(out)
    }

    fn cmd_new(&mut self, rest: &str) -> Result<String, String> {
        let mut parts = rest.split_whitespace();
        let class = parts.next().ok_or("expected `new <Class> [attr=value …]`")?;
        let assigns = parse_assignments(&parts.collect::<Vec<_>>())?;
        let refs: Vec<(&str, Value)> =
            assigns.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let oid = self
            .client
            .writer()
            .and_then(|w| w.create(class, &refs))
            .map_err(|e| e.to_string())?;
        Ok(format!("{oid}\n"))
    }

    fn cmd_get(&mut self, rest: &str) -> Result<String, String> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let [oid, class, attr] = parts[..] else {
            return Err("expected `get <oid> <Class> <attr>`".into());
        };
        let oid = parse_oid(oid)?;
        let value = self
            .client
            .session()
            .and_then(|s| s.get(oid, class, attr))
            .map_err(|e| e.to_string())?;
        Ok(format!("{value:?}\n"))
    }

    fn cmd_set(&mut self, rest: &str) -> Result<String, String> {
        let mut parts = rest.split_whitespace();
        let oid = parse_oid(parts.next().ok_or("expected `set <oid> <Class> attr=value …`")?)?;
        let class = parts.next().ok_or("missing class")?;
        let assigns = parse_assignments(&parts.collect::<Vec<_>>())?;
        let refs: Vec<(&str, Value)> =
            assigns.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        self.client
            .writer()
            .and_then(|w| w.set(oid, class, &refs))
            .map_err(|e| e.to_string())?;
        Ok("ok\n".into())
    }

    fn cmd_select(&mut self, rest: &str) -> Result<String, String> {
        let (class, expr) =
            rest.split_once(" where ").ok_or("expected `select <Class> where <expr>`")?;
        let oids = self
            .client
            .session()
            .and_then(|s| s.select_where(class.trim(), expr.trim()))
            .map_err(|e| e.to_string())?;
        Ok(render_oids(&oids))
    }
}

fn render_oids(oids: &[Oid]) -> String {
    format!(
        "{{ {} }} ({} members)\n",
        oids.iter().map(|o| o.to_string()).collect::<Vec<_>>().join(" "),
        oids.len()
    )
}

const HELP: &str = "\
commands: class, view, use, evolve, show, versions, new, get, set, extent,\n\
select, health, help, quit — see the file header for syntax.\n";

fn run<C: TseClient>(mut shell: Shell<C>) {
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    if interactive {
        println!("TSE shell — `help` for commands, `quit` to exit.");
    }
    loop {
        if interactive {
            print!("{}> ", shell.client.family());
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        match shell.exec(line) {
            Ok(out) => print!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}

fn main() {
    let mut connect: Option<String> = None;
    let mut user = "shell".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--connect" => match it.next() {
                Some(addr) => connect = Some(addr),
                None => {
                    eprintln!("shell: --connect requires HOST:PORT");
                    std::process::exit(2);
                }
            },
            "--user" => match it.next() {
                Some(name) => user = name,
                None => {
                    eprintln!("shell: --user requires a name");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("shell: unknown flag {other:?} (try --connect, --user)");
                std::process::exit(2);
            }
        }
    }
    match connect {
        Some(addr) => match RemoteClient::open(addr.clone(), &user) {
            Ok(client) => run(Shell::new(client)),
            Err(e) => {
                eprintln!("shell: connecting to {addr} failed: {e}");
                std::process::exit(1);
            }
        },
        None => run(Shell::new(SharedSystem::new().client(&user))),
    }
}

/// Minimal TTY check without a dependency: scripted runs pipe stdin.
fn atty_stdin() -> bool {
    use std::os::unix::io::AsRawFd;
    // SAFETY: isatty on a valid fd.
    unsafe { libc_isatty(std::io::stdin().as_raw_fd()) }
}

#[cfg(unix)]
unsafe fn libc_isatty(fd: i32) -> bool {
    extern "C" {
        fn isatty(fd: i32) -> i32;
    }
    isatty(fd) == 1
}
