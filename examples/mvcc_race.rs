//! MVCC race: pinned readers vs writer churn vs an evolution swap.
//!
//! ```text
//! cargo run --release --example mvcc_race > mvcc.jsonl
//! cargo run --release -p tse-inspect -- --check mvcc.jsonl
//! ```
//!
//! Four reader threads each pin a `ReadSession` *before* the churn starts
//! and sweep the same accounts for the whole run, asserting every value
//! and extent matches what the session saw at pin time — while two writer
//! threads rewrite every balance each round and grow the extent, and the
//! main thread swaps a schema evolution in underneath them. After the
//! pins drop, the epoch GC must reclaim the superseded version backlog:
//! the example asserts `mvcc.gc_reclaimed > 0` and embeds the GC counters
//! in the printed journal (one traced JSON object per line, with a
//! `metrics.snapshot` event at the end) so `tse-inspect` can gate the run
//! offline. All self-checks double as the CI concurrency contract.

use tse::core::{SharedSystem, TseSystem};
use tse::object_model::{PropertyDef, Value, ValueType};
use tse::telemetry::json::validate_lines;

const ACCOUNTS: usize = 64;
const READER_ROUNDS: usize = 25;
const WRITER_ROUNDS: i64 = 40;

fn main() {
    let mut sys = TseSystem::new();
    sys.define_base_class(
        "Account",
        &[],
        vec![
            PropertyDef::stored("owner", ValueType::Str, Value::Null),
            PropertyDef::stored("balance", ValueType::Int, Value::Int(0)),
        ],
    )
    .expect("schema builds");
    let v = sys.create_view("BANK", &["Account"]).expect("view");
    let mut oids = Vec::with_capacity(ACCOUNTS);
    for i in 0..ACCOUNTS {
        oids.push(
            sys.create(
                v,
                "Account",
                &[
                    ("owner", Value::Str(format!("acct{i}"))),
                    ("balance", Value::Int(i as i64)),
                ],
            )
            .expect("seed create"),
        );
    }
    let shared = SharedSystem::from_system(sys);
    let telemetry = shared.telemetry();

    // Journal the data plane too (every op becomes a slow-op event), and
    // start fresh so every printed record belongs to the race below.
    telemetry.reset();
    telemetry.set_slow_op_threshold_ns(1);

    let start = std::sync::Barrier::new(7); // 4 readers + 2 writers + evolver
    std::thread::scope(|scope| {
        for r in 0..4 {
            let shared = shared.clone();
            let oids = oids.clone();
            let start = &start;
            scope.spawn(move || {
                let session = shared.session(); // pinned BEFORE any churn
                let frozen: Vec<Value> = oids
                    .iter()
                    .map(|o| session.get(v, *o, "Account", "balance").expect("pin-time read"))
                    .collect();
                start.wait();
                for round in 0..READER_ROUNDS {
                    for (k, oid) in oids.iter().enumerate() {
                        let now = session.get(v, *oid, "Account", "balance").unwrap();
                        assert_eq!(
                            now, frozen[k],
                            "reader {r} round {round}: pinned read drifted under churn"
                        );
                    }
                    assert_eq!(
                        session.extent(v, "Account").unwrap().len(),
                        oids.len(),
                        "reader {r} round {round}: late create leaked into pinned extent"
                    );
                }
            });
        }
        for w in 0..2i64 {
            let shared = shared.clone();
            let start = &start;
            scope.spawn(move || {
                let writer = shared.writer();
                start.wait();
                for i in 0..WRITER_ROUNDS {
                    // Rewrite every seeded balance (new version per object,
                    // per round) and grow the live extent.
                    writer
                        .update_where(
                            v,
                            "Account",
                            "balance >= 0",
                            &[("balance", Value::Int(1_000 + w * 100 + i))],
                        )
                        .expect("churn update");
                    writer
                        .create(
                            v,
                            "Account",
                            &[
                                ("owner", Value::Str(format!("late{w}-{i}"))),
                                ("balance", Value::Int(-1)),
                            ],
                        )
                        .expect("late create");
                }
            });
        }
        start.wait();
        shared
            .evolve_cmd("BANK", "add_attribute frozen: bool = false to Account")
            .expect("schema evolution under pinned sessions");
    });

    // Every pin has dropped: the whole churn backlog sits below the GC
    // watermark now. Reclaim it (session drops may already have) and
    // embed the counters in the journal for offline inspection.
    let reclaimed_now = shared.gc_now();
    let reclaimed_total = telemetry.counter("mvcc.gc_reclaimed");
    assert!(
        reclaimed_total > 0,
        "GC must reclaim superseded versions once pins drop (reclaimed {reclaimed_total})"
    );
    {
        let _t = telemetry.ensure_trace("mvcc_gc");
        telemetry.event(
            "mvcc.gc_now",
            &[
                ("reclaimed_now", reclaimed_now.into()),
                ("reclaimed_total", reclaimed_total.into()),
                ("backlog_after", telemetry.counter("mvcc.versions").into()),
            ],
        );
        telemetry.journal_metrics_snapshot();
    }
    let lines = telemetry.journal_lines();
    print!("{lines}");

    // Self-validation — this is the CI contract.
    let records = validate_lines(&lines).expect("journal is well-formed JSON-lines");
    assert!(records > 100, "journal must capture the race, got {records}");
    assert!(
        lines.contains("mvcc.gc_reclaimed"),
        "embedded snapshot must carry the GC counters"
    );
    assert_eq!(telemetry.journal_dropped(), 0, "default capacity must not drop");
    eprintln!(
        "mvcc_race: ok — {records} journal records, {reclaimed_total} versions reclaimed"
    );
}
