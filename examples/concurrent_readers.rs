//! The control-plane / data-plane split in action: reader threads run
//! queries through `SharedSystem` sessions with no `&mut` anywhere, while
//! an evolver thread pushes schema changes through the serialized control
//! plane. Each session pins an epoch-published metadata snapshot, so
//! readers never block on translate/classify/view-regen — only on the
//! final swap-in, which is a pointer exchange.
//!
//! ```text
//! cargo run --example concurrent_readers
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use tse::core::SharedSystem;
use tse::object_model::{PropertyDef, Value, ValueType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shared = SharedSystem::new();
    shared.define_base_class(
        "Reading",
        &[],
        vec![
            PropertyDef::stored("sensor", ValueType::Str, Value::Null),
            PropertyDef::stored("celsius", ValueType::Int, Value::Int(0)),
        ],
    )?;
    let view = shared.create_view("LAB", &["Reading"])?;
    let writer = shared.writer();
    let mut oids = Vec::new();
    for i in 0..500 {
        oids.push(writer.create(
            view,
            "Reading",
            &[("sensor", Value::Str(format!("s{}", i % 8))), ("celsius", Value::Int(i % 40))],
        )?);
    }

    let done = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let evolutions = 6u64;
    // Metadata ops (define/create_view above) publish epochs too; evolutions
    // are measured against the epoch the readers start from.
    let epoch_before = shared.epoch();

    std::thread::scope(|scope| -> Result<(), tse::object_model::ModelError> {
        // Control plane: one evolver serializes schema changes. Everything
        // but the swap-in runs on a private fork of the system.
        let evolver = {
            let shared = shared.clone();
            let done = Arc::clone(&done);
            scope.spawn(move || -> Result<(), tse::object_model::ModelError> {
                for i in 0..evolutions {
                    shared.evolve_cmd(
                        "LAB",
                        &format!("add_attribute flag{i}: bool = false to Reading"),
                    )?;
                }
                done.store(true, Ordering::Release);
                Ok(())
            })
        };
        // Data plane: four readers on immutable snapshots, zero `&mut`.
        for t in 0..4usize {
            let shared = shared.clone();
            let done = Arc::clone(&done);
            let reads = Arc::clone(&reads);
            let oids = oids.clone();
            scope.spawn(move || {
                let mut round = 0usize;
                while !done.load(Ordering::Acquire) {
                    let session = shared.session();
                    let current = session.current_view("LAB").expect("family exists");
                    // Epochs publish whole view versions: the version a
                    // session observes is always a committed one.
                    assert!(u64::from(current.version) <= 1 + evolutions);
                    let oid = oids[(t * 131 + round * 17) % oids.len()];
                    let v = session.get(view, oid, "Reading", "celsius").expect("read");
                    assert!(matches!(v, Value::Int(c) if (0..40).contains(&c)));
                    let hot = session.select_where(view, "Reading", "celsius >= 35").expect("query");
                    assert!(hot.len().is_multiple_of(5), "5 sensors per temperature step");
                    reads.fetch_add(2, Ordering::Relaxed);
                    round += 1;
                }
            });
        }
        evolver.join().expect("evolver thread")?;
        Ok(())
    })?;

    let session = shared.session();
    let final_version = session.current_view("LAB")?.version;
    println!(
        "{} reads completed across 4 sessions while {} evolutions ran.",
        reads.load(Ordering::Relaxed),
        evolutions
    );
    println!(
        "epoch {} published; LAB advanced to view version {} with every intermediate \
         version swapped in atomically.",
        shared.epoch(),
        final_version
    );
    assert_eq!(shared.epoch(), epoch_before + evolutions);
    assert_eq!(u64::from(final_version), 1 + evolutions);
    let snapshot = shared.telemetry().snapshot();
    if let Some(h) = snapshot.histograms.get("evolve.exclusive_ns") {
        println!(
            "exclusive swap-in: mean {:.0}ns over {} evolutions (everything else ran \
             on private forks).",
            h.mean(),
            h.count
        );
    }
    Ok(())
}
