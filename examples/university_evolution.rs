//! The paper's running example (§2.2 + §6), end to end: the university
//! database, a developer's view, and one of every schema-change operator —
//! narrated, with the old view checked after every step.
//!
//! ```text
//! cargo run --example university_evolution
//! ```

use tse::core::TseSystem;
use tse::object_model::Value;
use tse::workload::university::build_university;

fn show(tse: &TseSystem, family: &str) {
    print!("{}", tse.current_view(family).unwrap().render(tse.db()));
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (mut tse, _) = build_university()?;
    let v1 = tse.create_view(
        "dev",
        &["Person", "Student", "Staff", "TeachingStaff", "SupportStaff", "TA", "Grader"],
    )?;
    // A second team's view, which must survive everything below untouched.
    tse.create_view("reporting", &["Person", "Student", "Grad", "Undergrad"])?;

    println!("== initial view");
    show(&tse, "dev");
    let kim = tse.create(v1, "TA", &[("name", "kim".into())])?;

    let steps = [
        "add_attribute register: bool = false to Student",
        "add_method is_senior: bool := age >= 65 to Person",
        "add_edge SupportStaff - TA",
        "delete_attribute register from Student",
        "delete_edge TeachingStaff - TA connected_to Staff",
        "add_class Lecturer connected_to TeachingStaff",
        "insert_class Tutor between Student - TA",
        "delete_method is_senior from Person",
        "delete_class_2 Grader",
    ];
    for step in steps {
        let report = tse.evolve_cmd("dev", step)?;
        println!(
            "\n== {step}\n   classes touched: {}, duplicates folded: {}",
            report.classes_touched, report.duplicates_folded
        );
        show(&tse, "dev");
        assert!(tse.views_unaffected_except("dev")?, "reporting view must never change");
    }

    // Every version in the history still answers queries over shared data.
    let versions = tse.views().versions("dev")?.to_vec();
    println!("\n== version history: {} versions; probing each against kim", versions.len());
    for vid in versions {
        let view = tse.view(vid)?;
        let name = tse.get(vid, kim, "TA", "name");
        println!("  version {:>2}: kim.name = {:?}", view.version, name);
    }
    // kim's age, written through the newest view, is visible through v1.
    let latest = *tse.views().versions("dev")?.last().unwrap();
    tse.set(latest, kim, "TA", &[("age", Value::Int(28))])?;
    assert_eq!(tse.get(v1, kim, "TA", "age")?, Value::Int(28));
    println!("\nwrite through newest version observed through version 1. done.");
    Ok(())
}
