//! Quickstart: transparent schema evolution in a dozen lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tse::core::TseSystem;
use tse::object_model::{PropertyDef, Value, ValueType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A shared base schema.
    let mut tse = TseSystem::new();
    tse.define_base_class(
        "Person",
        &[],
        vec![PropertyDef::stored("name", ValueType::Str, Value::Null)],
    )?;
    tse.define_base_class("Student", &["Person"], vec![])?;

    // 2. Each developer works against a personal view.
    let alice_v1 = tse.create_view("alice", &["Person", "Student"])?;
    let bob_v1 = tse.create_view("bob", &["Person", "Student"])?;

    // 3. Alice's application stores data through her view.
    let ann = tse.create(alice_v1, "Student", &[("name", "ann".into())])?;

    // 4. Alice needs a new stored attribute. She changes *her view*; nobody
    //    consults a DBA, and Bob's programs never notice.
    let report = tse.evolve_cmd("alice", "add_attribute register: bool = false to Student")?;
    let alice_v2 = report.view;
    println!("generated view specification:\n{}", report.script);

    // 5. Transparent: the class is still called Student, old data is there,
    //    and the new attribute is real, stored state.
    tse.set(alice_v2, ann, "Student", &[("register", Value::Bool(true))])?;
    println!(
        "alice v2: name={:?} register={:?}",
        tse.get(alice_v2, ann, "Student", "name")?,
        tse.get(alice_v2, ann, "Student", "register")?,
    );

    // 6. Bob still sees the same object — without the attribute he never
    //    asked for — and his view schema is untouched.
    println!("bob   v1: name={:?}", tse.get(bob_v1, ann, "Student", "name")?);
    assert!(tse.get(bob_v1, ann, "Student", "register").is_err());
    assert!(tse.views_unaffected_except("alice")?);
    println!("bob's view unaffected; objects shared. done.");
    Ok(())
}
