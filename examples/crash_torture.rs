//! Randomized fault-schedule torture loop for the shared durable system,
//! with three arms selected by `CRASH_TORTURE_MODE`:
//!
//! - `kill` (default): each iteration runs a random workload (creates,
//!   sets, single-target query-updates, deletes, structural evolutions,
//!   checkpoints) with one failpoint site armed to kill the "process"
//!   (simulated crash, torn write, or injected error) at a random point —
//!   across WAL append, fsync, data apply, snapshot write, and the
//!   fork–evolve–swap pipeline. The moment a fault fires (or the workload
//!   finishes), the system is dropped without a clean shutdown and
//!   reopened from disk.
//! - `chaos`: injects *recoverable* fault schedules — transient stalls
//!   inside the retry budget (which must ride out invisibly), and
//!   exhausted-transient / disk-full faults (which must degrade the
//!   system to read-only with typed `Unavailable` backpressure, then heal
//!   via `try_heal()` and resume) — with zero acknowledged-write loss,
//!   verified against the oracle after periodic pulled plugs.
//! - `poison`: injects a *permanent* fsync fault. The system must
//!   fail-stop (`Poisoned`) without acknowledging the unsynced frame,
//!   refuse to heal in place, and recover cleanly on restart.
//!
//! The invariant is checked against an in-memory oracle: a non-durable
//! system replaying exactly the **acknowledged** operations. The recovered
//! state must be semantically equal to the oracle — or, when one operation
//! was in flight at the kill, to the oracle plus that single operation
//! (apply-then-log means an unacknowledged frame may or may not have
//! reached the disk; both outcomes are correct, a partial one is not).
//!
//! The schedule is driven by a fixed-seed xorshift generator (override
//! with `CRASH_TORTURE_SEED`; iterations with `CRASH_TORTURE_ITERS`), so
//! any failure reproduces exactly. The process exits nonzero on a violated
//! invariant and prints the seed plus the recovery journal. When
//! `CRASH_TORTURE_JOURNAL` names a file, the run's telemetry journal
//! (with an embedded metrics snapshot) is written there for
//! `tse-inspect --check`: the chaos arm's journal must pass the gate,
//! the poison arm's must fail it.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use tse_core::{DegradedReason, SharedSystem, SystemHealth};
use tse_object_model::{ModelError, Oid, PropertyDef, Value, ValueType};
use tse_storage::{FailAction, StoreConfig};
use tse_view::ViewId;

const SITES: [&str; 10] = [
    "durable.wal_append",
    "durable.wal_fsync",
    "storage.insert",
    "durable.snapshot_write",
    "durable.manifest_write",
    "snapshot.encode",
    "evolve.translate",
    "evolve.classify",
    "evolve.view_regen",
    "evolve.swap_in",
];

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // xorshift64* — deterministic, no external crates.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One logical operation, described abstractly so it can be applied to the
/// durable system and replayed verbatim on the in-memory oracle. Objects
/// are addressed by their unique `tag` (stored in the `age` attribute):
/// oids are assigned by each side's allocator and may legitimately differ
/// once faults skip allocations, so they never appear in the digest.
#[derive(Clone, Debug)]
enum Op {
    Create { name: String, tag: i64 },
    Set { tag: i64, attr: String, value: Value },
    UpdateWhere { tag: i64, attr: String, value: Value },
    Delete { tag: i64 },
    AddAttr { attr: String, default: i64 },
    Checkpoint,
}

/// Apply one op to a system. `oids` maps tag → oid on *that* side.
/// Returns the created oid for `Create`.
fn apply(
    shared: &SharedSystem,
    oids: &mut BTreeMap<i64, Oid>,
    op: &Op,
) -> tse_object_model::ModelResult<()> {
    let view = current_view(shared);
    match op {
        Op::Create { name, tag } => {
            let oid = shared.writer().create(
                view,
                "Student",
                &[("name", Value::Str(name.clone())), ("age", Value::Int(*tag))],
            )?;
            oids.insert(*tag, oid);
        }
        Op::Set { tag, attr, value } => {
            let oid = oids[tag];
            shared.writer().set(view, oid, "Student", &[(attr, value.clone())])?;
        }
        Op::UpdateWhere { tag, attr, value } => {
            // Single-target by construction: `age` tags are unique, so the
            // update touches at most one object and is atomic under crash.
            shared.writer().update_where(
                view,
                "Student",
                &format!("age == {tag}"),
                &[(attr, value.clone())],
            )?;
        }
        Op::Delete { tag } => {
            let oid = oids[tag];
            shared.writer().delete_objects(&[oid])?;
            oids.remove(tag);
        }
        Op::AddAttr { attr, default } => {
            shared.evolve_cmd("VS", &format!("add_attribute {attr}: int = {default} to Student"))?;
        }
        Op::Checkpoint => {
            shared.checkpoint()?;
        }
    }
    Ok(())
}

fn current_view(shared: &SharedSystem) -> ViewId {
    let s = shared.session();
    *s.meta().views().versions("VS").expect("VS exists").last().expect("one version")
}

/// Semantic digest of the Student extent: one sorted row per object over
/// the given attribute set. Oids are deliberately excluded (see [`Op`]).
fn digest(shared: &SharedSystem, attrs: &[String]) -> String {
    let s = shared.session();
    let view = current_view(shared);
    let mut rows = Vec::new();
    for oid in s.extent(view, "Student").expect("extent readable") {
        let mut row = Vec::new();
        for attr in attrs {
            let v = s
                .get(view, oid, "Student", attr)
                .map(|v| format!("{v:?}"))
                .unwrap_or_else(|_| "<missing>".into());
            row.push(format!("{attr}={v}"));
        }
        rows.push(row.join(";"));
    }
    rows.sort();
    rows.join("\n")
}

/// Build a fresh in-memory oracle and replay `ops` through it.
fn oracle_replay(ops: &[Op]) -> (SharedSystem, Vec<String>) {
    let shared = SharedSystem::new();
    seed_schema(&shared);
    let mut oids = BTreeMap::new();
    let mut attrs = vec!["name".to_string(), "age".to_string()];
    for op in ops {
        if matches!(op, Op::Checkpoint) {
            continue; // durability-only; no semantic effect to mirror
        }
        apply(&shared, &mut oids, op).expect("oracle replay is fault-free");
        if let Op::AddAttr { attr, .. } = op {
            attrs.push(attr.clone());
        }
    }
    (shared, attrs)
}

fn seed_schema(shared: &SharedSystem) {
    shared
        .define_base_class(
            "Person",
            &[],
            vec![
                PropertyDef::stored("name", ValueType::Str, Value::Null),
                PropertyDef::stored("age", ValueType::Int, Value::Int(0)),
            ],
        )
        .unwrap();
    shared.define_base_class("Student", &["Person"], vec![]).unwrap();
    shared.create_view("VS", &["Person", "Student"]).unwrap();
}

fn reopen(dir: &Path, config: StoreConfig, seed: u64, iteration: u64) -> SharedSystem {
    SharedSystem::builder().dir(dir).store_config(config).open().unwrap_or_else(|e| {
        eprintln!("seed={seed:#x} iteration={iteration}: recovery failed: {e}");
        std::process::exit(1);
    })
}

fn fail(shared: &SharedSystem, seed: u64, iteration: u64, msg: &str) -> ! {
    eprintln!("seed={seed:#x} iteration={iteration}: {msg}");
    eprintln!("--- recovery journal ---");
    eprint!("{}", shared.telemetry().journal_lines());
    std::process::exit(1);
}

/// Compare `shared` against the oracle's replay of `acked`, tolerating at
/// most one `in_flight` operation that may legitimately have landed either
/// way. When it did land, it becomes part of durable history: it is folded
/// into `acked` and the live-side tag maps, so every later comparison (and
/// every future recovery) accounts for it. Returns true in that case;
/// exits nonzero when the state matches neither world.
fn reconcile(
    shared: &SharedSystem,
    acked: &mut Vec<Op>,
    live_oids: &mut BTreeMap<i64, Oid>,
    live_attrs: &mut Vec<String>,
    in_flight: Option<Op>,
    seed: u64,
    iteration: u64,
) -> bool {
    let (oracle_a, attrs_a) = oracle_replay(acked);
    let expect_a = digest(&oracle_a, &attrs_a);
    let got_a = digest(shared, &attrs_a);
    if got_a == expect_a {
        return false;
    }
    let Some(op) = in_flight else {
        fail(
            shared,
            seed,
            iteration,
            &format!(
                "state lost acknowledged operations\n\
                 --- expected ---\n{expect_a}\n--- got ---\n{got_a}"
            ),
        );
    };
    let mut with = acked.clone();
    with.push(op.clone());
    let (oracle_b, attrs_b) = oracle_replay(&with);
    let expect_b = digest(&oracle_b, &attrs_b);
    let got_b = digest(shared, &attrs_b);
    if got_b != expect_b {
        fail(
            shared,
            seed,
            iteration,
            &format!(
                "state matches neither acked-only nor acked+in-flight\n\
                 in-flight: {op:?}\n--- acked-only ---\n{expect_a}\n\
                 --- acked+in-flight ---\n{expect_b}\n--- got ---\n{got_a}"
            ),
        );
    }
    *acked = with;
    match op {
        Op::Create { tag, .. } => {
            // Resolve its oid on the live side so later ops can target it
            // like any acknowledged object.
            let s = shared.session();
            let view = current_view(shared);
            let found = s
                .select_where(view, "Student", &format!("age == {tag}"))
                .expect("extent readable");
            assert_eq!(found.len(), 1, "in-flight create present exactly once");
            live_oids.insert(tag, found[0]);
        }
        Op::Delete { tag } => {
            live_oids.remove(&tag);
        }
        Op::AddAttr { attr, .. } => {
            live_attrs.push(attr);
        }
        _ => {}
    }
    true
}

/// When `CRASH_TORTURE_JOURNAL` is set, embed a metrics snapshot and dump
/// the live journal there for offline gating with `tse-inspect --check`.
fn write_journal(shared: &SharedSystem) {
    if let Ok(path) = std::env::var("CRASH_TORTURE_JOURNAL") {
        shared.telemetry().journal_metrics_snapshot();
        std::fs::write(&path, shared.telemetry().journal_lines()).expect("write journal file");
        println!("journal written to {path}");
    }
}

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tse_crash_torture_{label}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn main() {
    let seed = std::env::var("CRASH_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x7042_7475_7265_5EED_u64);
    let iterations: u64 = std::env::var("CRASH_TORTURE_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);
    let mode = std::env::var("CRASH_TORTURE_MODE").unwrap_or_else(|_| "kill".into());
    match mode.as_str() {
        "kill" => run_kill(seed, iterations),
        "chaos" => run_chaos(seed, iterations),
        "poison" => run_poison(seed),
        other => {
            eprintln!("crash_torture: unknown CRASH_TORTURE_MODE `{other}` (kill|chaos|poison)");
            std::process::exit(2);
        }
    }
}

/// The original arm: kill at a random failpoint, reopen, compare.
fn run_kill(seed: u64, iterations: u64) {
    // Odd multiplier keeps the state nonzero and distinct for every seed
    // (a plain `seed | 1` would alias each even seed with its successor).
    let mut rng = Rng(seed.wrapping_mul(2).wrapping_add(1));
    println!("crash_torture[kill]: seed={seed:#x} iterations={iterations}");

    // A small auto-checkpoint threshold so checkpoints also happen *inside*
    // the torture window, not only when the workload asks for one.
    let config = StoreConfig { wal_autocheckpoint_bytes: 640, ..StoreConfig::default() };
    let dir = scratch_dir("kill");

    // Seed a durable baseline on disk.
    {
        let shared = SharedSystem::builder().dir(&dir).store_config(config).open().expect("fresh open");
        seed_schema(&shared);
        shared.checkpoint().unwrap();
    }

    // Oracle state: the exact sequence of acknowledged operations, plus the
    // live system's tag → oid map (survives recovery because replay
    // reissues logged oids).
    let mut acked: Vec<Op> = Vec::new();
    let mut live_oids = BTreeMap::new();
    // Attributes known to exist on the live side (acknowledged AddAttrs);
    // mutation targets are drawn from here so every generated op is
    // well-typed against both the live schema and the oracle's.
    let mut live_attrs: Vec<String> = Vec::new();
    let mut next_tag: i64 = 0;
    let mut next_attr: u64 = 0;
    let mut kills = 0u64;
    let mut faults = 0u64;
    let mut matched_present = 0u64;
    let mut matched_absent = 0u64;
    let mut autocheckpoints = 0u64;

    for iteration in 0..iterations {
        let shared = reopen(&dir, config, seed, iteration);

        // Arm one random site most iterations; some iterations kill with no
        // fault at all, exercising pure pull-the-plug recovery.
        let armed = if rng.below(5) > 0 {
            let site = SITES[rng.below(SITES.len() as u64) as usize];
            let action = match rng.below(4) {
                0 => FailAction::Error,
                1 | 2 => FailAction::Crash,
                _ => FailAction::TornWrite { keep_bytes: rng.below(48) as usize },
            };
            shared.failpoints().arm(site, 1 + rng.below(4), action);
            Some(site)
        } else {
            None
        };

        // Run random ops until a fault fires or the budget is spent. The
        // op that errors (or that an async-swallowed fault interrupted) is
        // the single in-flight candidate.
        let mut in_flight: Option<Op> = None;
        for _ in 0..(2 + rng.below(6)) {
            let tags: Vec<i64> = live_oids.keys().copied().collect();
            let op = match rng.below(8) {
                0..=2 => {
                    let tag = next_tag;
                    next_tag += 1;
                    Op::Create { name: format!("s{tag}"), tag }
                }
                3 | 4 if !tags.is_empty() => {
                    let tag = tags[rng.below(tags.len() as u64) as usize];
                    // Never touch `age` — it is the tag objects are
                    // addressed by. Mutate an evolved attribute when one
                    // exists, else rewrite the name.
                    let (attr, value) = if !live_attrs.is_empty() && rng.below(2) == 0 {
                        let a = &live_attrs[rng.below(live_attrs.len() as u64) as usize];
                        (a.clone(), Value::Int(rng.below(1000) as i64))
                    } else {
                        ("name".to_string(), Value::Str(format!("n{}", rng.below(1000))))
                    };
                    if rng.below(2) == 0 {
                        Op::Set { tag, attr, value }
                    } else {
                        Op::UpdateWhere { tag, attr, value }
                    }
                }
                5 if !tags.is_empty() => {
                    Op::Delete { tag: tags[rng.below(tags.len() as u64) as usize] }
                }
                6 => {
                    let attr = format!("a{next_attr}");
                    next_attr += 1;
                    Op::AddAttr { attr, default: rng.below(100) as i64 }
                }
                7 => Op::Checkpoint,
                _ => continue,
            };
            match apply(&shared, &mut live_oids, &op) {
                Ok(()) => {
                    if let Op::AddAttr { attr, .. } = &op {
                        live_attrs.push(attr.clone());
                    }
                    acked.push(op);
                    // A fault swallowed inside an auto-checkpoint still
                    // means the plug gets pulled here.
                    if armed.is_some_and(|s| shared.failpoints().fired(s)) {
                        faults += 1;
                        break;
                    }
                }
                Err(e) => {
                    let fired = armed.is_some_and(|s| shared.failpoints().fired(s));
                    let poisoned = e.to_string().contains("wal poisoned");
                    if !fired && !poisoned {
                        fail(&shared, seed, iteration, &format!("non-injected error: {e}"));
                    }
                    faults += 1;
                    in_flight = Some(op);
                    break;
                }
            }
        }

        // Pull the plug. (Telemetry dies with the process, so roll the
        // auto-checkpoint count into the harness total first.)
        autocheckpoints += shared.telemetry().counter("durable.autocheckpoints");
        drop(shared);
        kills += 1;

        // Recover and compare against the oracle.
        let recovered = reopen(&dir, config, seed, iteration);
        if reconcile(
            &recovered,
            &mut acked,
            &mut live_oids,
            &mut live_attrs,
            in_flight,
            seed,
            iteration,
        ) {
            matched_present += 1;
        } else {
            matched_absent += 1;
        }
        drop(recovered);
    }

    // Final recovery must also be self-consistent and telemetry-visible.
    let shared = reopen(&dir, config, seed, iterations);
    let journal = shared.telemetry().journal_lines();
    assert!(journal.contains("recovery.complete"), "final journal missing recovery.complete");
    assert!(faults > 0, "no failpoint ever fired — the schedule is broken");
    write_journal(&shared);
    println!(
        "crash_torture[kill] ok: seed={seed:#x} kills={kills} faults={faults} \
         inflight_present={matched_present} inflight_absent={matched_absent} \
         acked_ops={} generation={:?} autocheckpoints={autocheckpoints}",
        acked.len(),
        shared.generation(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The graceful-degradation arm: recoverable fault schedules only. Small
/// transient stalls must ride out inside the retry budget; exhausted
/// transients and ENOSPC must degrade → heal → resume, losing nothing.
fn run_chaos(seed: u64, iterations: u64) {
    let mut rng = Rng(seed.wrapping_mul(2).wrapping_add(1));
    println!("crash_torture[chaos]: seed={seed:#x} iterations={iterations}");
    let config = StoreConfig::default();
    let dir = scratch_dir("chaos");

    let mut shared = SharedSystem::builder().dir(&dir).store_config(config).open().expect("fresh open");
    seed_schema(&shared);
    shared.checkpoint().unwrap();
    // Backoff sleeps accumulate on the virtual clock: the schedule is
    // deterministic and the run takes no real wall-clock delay.
    shared.failpoints().set_virtual_clock(true);

    let mut acked: Vec<Op> = Vec::new();
    let mut live_oids = BTreeMap::new();
    let mut live_attrs: Vec<String> = Vec::new();
    let mut next_tag: i64 = 0;
    let mut next_attr: u64 = 0;
    let mut rideouts = 0u64;
    let mut degrades = 0u64;
    let mut heals = 0u64;
    let mut rejected = 0u64;
    let mut plugs = 0u64;

    for iteration in 0..iterations {
        // Occasionally interleave a calm, unarmed op (a set or a schema
        // evolution) so degrade episodes land on a varied history.
        if rng.below(3) == 0 {
            let tags: Vec<i64> = live_oids.keys().copied().collect();
            let op = if !tags.is_empty() && rng.below(2) == 0 {
                let tag = tags[rng.below(tags.len() as u64) as usize];
                Op::Set { tag, attr: "name".into(), value: Value::Str(format!("n{iteration}")) }
            } else {
                let attr = format!("a{next_attr}");
                next_attr += 1;
                Op::AddAttr { attr, default: rng.below(100) as i64 }
            };
            if let Err(e) = apply(&shared, &mut live_oids, &op) {
                fail(&shared, seed, iteration, &format!("calm op failed: {e}"));
            }
            if let Op::AddAttr { attr, .. } = &op {
                live_attrs.push(attr.clone());
            }
            acked.push(op);
        }

        let retries_before = shared.telemetry().counter("fault.retries");
        match rng.below(3) {
            0 => {
                // Transient stall inside the retry budget: the caller never
                // sees it and health never moves.
                let site =
                    if rng.below(2) == 0 { "durable.wal_fsync" } else { "durable.wal_append" };
                let succeed_after = 1 + rng.below(3);
                shared.failpoints().arm(site, 1, FailAction::TransientError { succeed_after });
                let tag = next_tag;
                next_tag += 1;
                let op = Op::Create { name: format!("s{tag}"), tag };
                if let Err(e) = apply(&shared, &mut live_oids, &op) {
                    fail(&shared, seed, iteration, &format!("ride-out write failed: {e}"));
                }
                acked.push(op);
                if shared.health() != SystemHealth::Healthy {
                    fail(&shared, seed, iteration, "health moved on a rode-out transient");
                }
                if shared.telemetry().counter("fault.retries") == retries_before {
                    fail(&shared, seed, iteration, "transient schedule spent no retries");
                }
                shared.failpoints().disarm(site);
                rideouts += 1;
            }
            kind => {
                // A fault that outlasts the retry budget (kind 1) or
                // ENOSPC (kind 2): the write fails, the system degrades.
                let (action, want) = if kind == 1 {
                    (
                        FailAction::TransientError { succeed_after: 1_000 },
                        DegradedReason::RetriesExhausted,
                    )
                } else {
                    (FailAction::DiskFull, DegradedReason::DiskFull)
                };
                shared.failpoints().arm("durable.wal_append", 1, action);
                let tag = next_tag;
                next_tag += 1;
                let op = Op::Create { name: format!("s{tag}"), tag };
                let err = match apply(&shared, &mut live_oids, &op) {
                    Err(e) => e,
                    Ok(()) => fail(&shared, seed, iteration, "armed fault did not fire"),
                };
                if shared.health() != (SystemHealth::Degraded { reason: want }) {
                    fail(
                        &shared,
                        seed,
                        iteration,
                        &format!(
                            "expected degraded ({}) after `{err}`, got {}",
                            want.name(),
                            shared.health()
                        ),
                    );
                }
                degrades += 1;

                // While degraded: writers get typed backpressure, readers
                // keep serving.
                let probe = Op::Create { name: "rejected".into(), tag: next_tag };
                match apply(&shared, &mut live_oids, &probe) {
                    Err(ModelError::Unavailable { .. }) => rejected += 1,
                    other => fail(
                        &shared,
                        seed,
                        iteration,
                        &format!("degraded write was not rejected as Unavailable: {other:?}"),
                    ),
                }
                let (_, attrs) = oracle_replay(&acked);
                let _ = digest(&shared, &attrs); // reads must not error

                // The operator clears the fault and heals without restart.
                shared.failpoints().disarm("durable.wal_append");
                match shared.try_heal() {
                    Ok(SystemHealth::Healthy) => heals += 1,
                    other => fail(&shared, seed, iteration, &format!("try_heal: {other:?}")),
                }
                // The failed op had applied in memory before its log append
                // failed, so the healing checkpoint may have made it
                // durable — fold it into history if so; losing anything
                // *acknowledged* is fatal.
                reconcile(
                    &shared,
                    &mut acked,
                    &mut live_oids,
                    &mut live_attrs,
                    Some(op),
                    seed,
                    iteration,
                );
            }
        }

        // Periodically pull the plug mid-run: heals must never have
        // compromised durability of the acknowledged history.
        if rng.below(8) == 0 {
            drop(shared);
            plugs += 1;
            shared = reopen(&dir, config, seed, iteration);
            shared.failpoints().set_virtual_clock(true);
            reconcile(&shared, &mut acked, &mut live_oids, &mut live_attrs, None, seed, iteration);
        }
    }

    // Force one deterministic degrade→heal episode at the end so the
    // captured journal always demonstrates a full recovered cycle.
    shared.failpoints().arm("durable.wal_append", 1, FailAction::DiskFull);
    let tag = next_tag;
    let op = Op::Create { name: format!("s{tag}"), tag };
    if apply(&shared, &mut live_oids, &op).is_ok() {
        fail(&shared, seed, iterations, "final disk-full fault did not fire");
    }
    shared.failpoints().disarm("durable.wal_append");
    if shared.try_heal() != Ok(SystemHealth::Healthy) {
        fail(&shared, seed, iterations, "final heal failed");
    }
    heals += 1;
    degrades += 1;
    reconcile(&shared, &mut acked, &mut live_oids, &mut live_attrs, Some(op), seed, iterations);

    let virtual_slept_ms = shared.failpoints().virtual_slept_ns() / 1_000_000;
    let journal = shared.telemetry().journal_lines();
    assert!(journal.contains("health.transition"), "journal missing health transitions");
    assert!(shared.telemetry().counter("durable.heals") >= 1);
    assert_eq!(shared.health(), SystemHealth::Healthy, "chaos run must end healthy");
    write_journal(&shared);
    drop(shared);

    // Final pulled plug: recovery must reproduce the acked history exactly.
    let shared = reopen(&dir, config, seed, iterations);
    reconcile(&shared, &mut acked, &mut live_oids, &mut live_attrs, None, seed, iterations);
    let report = shared.scrub_now().unwrap_or_else(|e| {
        fail(&shared, seed, iterations, &format!("final scrub failed: {e}"))
    });
    if !report.clean() {
        fail(&shared, seed, iterations, "final scrub found damage after a chaos run");
    }
    assert!(degrades > 0 && rideouts > 0, "schedule never exercised both arms");
    assert_eq!(heals, degrades, "every degradation must heal");
    println!(
        "crash_torture[chaos] ok: seed={seed:#x} rideouts={rideouts} degrades={degrades} \
         heals={heals} rejected_writes={rejected} plugs={plugs} acked_ops={} \
         virtual_backoff_ms={virtual_slept_ms} generation={:?}",
        acked.len(),
        shared.generation(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fail-stop arm: a permanent fsync fault must poison the system
/// without acknowledging the unsynced frame, refuse an in-place heal, and
/// recover cleanly only through a restart.
fn run_poison(seed: u64) {
    println!("crash_torture[poison]: seed={seed:#x}");
    let config = StoreConfig::default();
    let dir = scratch_dir("poison");

    let shared = SharedSystem::builder().dir(&dir).store_config(config).open().expect("fresh open");
    seed_schema(&shared);
    shared.checkpoint().unwrap();

    let mut acked: Vec<Op> = Vec::new();
    let mut live_oids = BTreeMap::new();
    let mut live_attrs: Vec<String> = Vec::new();
    for tag in 0..5i64 {
        let op = Op::Create { name: format!("s{tag}"), tag };
        apply(&shared, &mut live_oids, &op).expect("pre-fault writes ack");
        acked.push(op);
    }

    // A permanent (non-transient, non-ENOSPC) fsync failure: the log's
    // durable contents are unknowable, so the system must fail-stop.
    shared.failpoints().arm("durable.wal_fsync", 1, FailAction::Error);
    let in_flight = Op::Create { name: "s5".into(), tag: 5 };
    if apply(&shared, &mut live_oids, &in_flight).is_ok() {
        fail(&shared, seed, 0, "write acked through a failed fsync");
    }
    if shared.health() != SystemHealth::Poisoned {
        fail(&shared, seed, 0, &format!("expected poisoned, got {}", shared.health()));
    }
    if shared.try_heal().is_ok() {
        fail(&shared, seed, 0, "try_heal healed a poisoned system in place");
    }
    let probe = Op::Create { name: "s6".into(), tag: 6 };
    match apply(&shared, &mut live_oids, &probe) {
        Err(e) if e.to_string().contains("poison") => {}
        other => fail(&shared, seed, 0, &format!("poisoned write not fail-stopped: {other:?}")),
    }
    // The captured journal carries the unrecovered transition and the
    // poisoned-log counter — `tse-inspect --check` must FAIL on it.
    write_journal(&shared);
    drop(shared);

    // Restart-and-recover: every acked write present; the unsynced frame
    // may have reached the disk but was never acknowledged — either world
    // is correct.
    let shared = reopen(&dir, config, seed, 1);
    if shared.health() != SystemHealth::Healthy {
        fail(&shared, seed, 1, "reopened system not healthy");
    }
    let present = reconcile(
        &shared,
        &mut acked,
        &mut live_oids,
        &mut live_attrs,
        Some(in_flight),
        seed,
        1,
    );
    let next = Op::Create { name: "s7".into(), tag: 7 };
    apply(&shared, &mut live_oids, &next).expect("writes resume after restart");
    println!(
        "crash_torture[poison] ok: seed={seed:#x} acked_ops={} unsynced_frame_landed={present}",
        acked.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
