//! Randomized crash-schedule torture loop for the shared durable system.
//!
//! Each iteration runs a random workload (creates, sets, single-target
//! query-updates, deletes, structural evolutions, checkpoints) against a
//! durable [`tse_core::SharedSystem`], with one failpoint site armed to
//! kill the "process" (simulated crash, torn write, or injected error) at
//! a random point — across WAL append, fsync, data apply, snapshot write,
//! and the fork–evolve–swap pipeline. The moment a fault fires (or the
//! workload finishes), the system is dropped without a clean shutdown and
//! reopened from disk.
//!
//! The invariant is checked against an in-memory oracle: a non-durable
//! system replaying exactly the **acknowledged** operations. The recovered
//! state must be semantically equal to the oracle — or, when one operation
//! was in flight at the kill, to the oracle plus that single operation
//! (apply-then-log means an unacknowledged frame may or may not have
//! reached the disk; both outcomes are correct, a partial one is not).
//!
//! The schedule is driven by a fixed-seed xorshift generator (override
//! with `CRASH_TORTURE_SEED`; iterations with `CRASH_TORTURE_ITERS`), so
//! any failure reproduces exactly. The process exits nonzero on a violated
//! invariant and prints the seed plus the recovery journal.

use std::path::Path;

use tse_core::SharedSystem;
use tse_object_model::{Oid, PropertyDef, Value, ValueType};
use tse_storage::{FailAction, StoreConfig};
use tse_view::ViewId;

const SITES: [&str; 10] = [
    "durable.wal_append",
    "durable.wal_fsync",
    "storage.insert",
    "durable.snapshot_write",
    "durable.manifest_write",
    "snapshot.encode",
    "evolve.translate",
    "evolve.classify",
    "evolve.view_regen",
    "evolve.swap_in",
];

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // xorshift64* — deterministic, no external crates.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One logical operation, described abstractly so it can be applied to the
/// durable system and replayed verbatim on the in-memory oracle. Objects
/// are addressed by their unique `tag` (stored in the `age` attribute):
/// oids are assigned by each side's allocator and may legitimately differ
/// once faults skip allocations, so they never appear in the digest.
#[derive(Clone, Debug)]
enum Op {
    Create { name: String, tag: i64 },
    Set { tag: i64, attr: String, value: Value },
    UpdateWhere { tag: i64, attr: String, value: Value },
    Delete { tag: i64 },
    AddAttr { attr: String, default: i64 },
    Checkpoint,
}

/// Apply one op to a system. `oids` maps tag → oid on *that* side.
/// Returns the created oid for `Create`.
fn apply(
    shared: &SharedSystem,
    oids: &mut std::collections::BTreeMap<i64, Oid>,
    op: &Op,
) -> tse_object_model::ModelResult<()> {
    let view = current_view(shared);
    match op {
        Op::Create { name, tag } => {
            let oid = shared.writer().create(
                view,
                "Student",
                &[("name", Value::Str(name.clone())), ("age", Value::Int(*tag))],
            )?;
            oids.insert(*tag, oid);
        }
        Op::Set { tag, attr, value } => {
            let oid = oids[tag];
            shared.writer().set(view, oid, "Student", &[(attr, value.clone())])?;
        }
        Op::UpdateWhere { tag, attr, value } => {
            // Single-target by construction: `age` tags are unique, so the
            // update touches at most one object and is atomic under crash.
            shared.writer().update_where(
                view,
                "Student",
                &format!("age == {tag}"),
                &[(attr, value.clone())],
            )?;
        }
        Op::Delete { tag } => {
            let oid = oids[tag];
            shared.writer().delete_objects(&[oid])?;
            oids.remove(tag);
        }
        Op::AddAttr { attr, default } => {
            shared.evolve_cmd("VS", &format!("add_attribute {attr}: int = {default} to Student"))?;
        }
        Op::Checkpoint => {
            shared.checkpoint()?;
        }
    }
    Ok(())
}

fn current_view(shared: &SharedSystem) -> ViewId {
    let s = shared.session();
    *s.meta().views().versions("VS").expect("VS exists").last().expect("one version")
}

/// Semantic digest of the Student extent: one sorted row per object over
/// the given attribute set. Oids are deliberately excluded (see [`Op`]).
fn digest(shared: &SharedSystem, attrs: &[String]) -> String {
    let s = shared.session();
    let view = current_view(shared);
    let mut rows = Vec::new();
    for oid in s.extent(view, "Student").expect("extent readable") {
        let mut row = Vec::new();
        for attr in attrs {
            let v = s
                .get(view, oid, "Student", attr)
                .map(|v| format!("{v:?}"))
                .unwrap_or_else(|_| "<missing>".into());
            row.push(format!("{attr}={v}"));
        }
        rows.push(row.join(";"));
    }
    rows.sort();
    rows.join("\n")
}

/// Build a fresh in-memory oracle and replay `ops` through it.
fn oracle_replay(ops: &[Op]) -> (SharedSystem, Vec<String>) {
    let shared = SharedSystem::new();
    seed_schema(&shared);
    let mut oids = std::collections::BTreeMap::new();
    let mut attrs = vec!["name".to_string(), "age".to_string()];
    for op in ops {
        if matches!(op, Op::Checkpoint) {
            continue; // durability-only; no semantic effect to mirror
        }
        apply(&shared, &mut oids, op).expect("oracle replay is fault-free");
        if let Op::AddAttr { attr, .. } = op {
            attrs.push(attr.clone());
        }
    }
    (shared, attrs)
}

fn seed_schema(shared: &SharedSystem) {
    shared
        .define_base_class(
            "Person",
            &[],
            vec![
                PropertyDef::stored("name", ValueType::Str, Value::Null),
                PropertyDef::stored("age", ValueType::Int, Value::Int(0)),
            ],
        )
        .unwrap();
    shared.define_base_class("Student", &["Person"], vec![]).unwrap();
    shared.create_view("VS", &["Person", "Student"]).unwrap();
}

fn reopen(dir: &Path, config: StoreConfig, seed: u64, iteration: u64) -> SharedSystem {
    SharedSystem::open_with_config(dir, config).unwrap_or_else(|e| {
        eprintln!("seed={seed:#x} iteration={iteration}: recovery failed: {e}");
        std::process::exit(1);
    })
}

fn fail(shared: &SharedSystem, seed: u64, iteration: u64, msg: &str) -> ! {
    eprintln!("seed={seed:#x} iteration={iteration}: {msg}");
    eprintln!("--- recovery journal ---");
    eprint!("{}", shared.telemetry().journal_lines());
    std::process::exit(1);
}

fn main() {
    let seed = std::env::var("CRASH_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x7042_7475_7265_5EED_u64);
    let iterations: u64 = std::env::var("CRASH_TORTURE_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);
    // Odd multiplier keeps the state nonzero and distinct for every seed
    // (a plain `seed | 1` would alias each even seed with its successor).
    let mut rng = Rng(seed.wrapping_mul(2).wrapping_add(1));
    println!("crash_torture: seed={seed:#x} iterations={iterations}");

    // A small auto-checkpoint threshold so checkpoints also happen *inside*
    // the torture window, not only when the workload asks for one.
    let config = StoreConfig { wal_autocheckpoint_bytes: 640, ..StoreConfig::default() };

    let dir = std::env::temp_dir().join(format!("tse_crash_torture_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Seed a durable baseline on disk.
    {
        let shared = SharedSystem::open_with_config(&dir, config).expect("fresh open");
        seed_schema(&shared);
        shared.checkpoint().unwrap();
    }

    // Oracle state: the exact sequence of acknowledged operations, plus the
    // live system's tag → oid map (survives recovery because replay
    // reissues logged oids).
    let mut acked: Vec<Op> = Vec::new();
    let mut live_oids = std::collections::BTreeMap::new();
    // Attributes known to exist on the live side (acknowledged AddAttrs);
    // mutation targets are drawn from here so every generated op is
    // well-typed against both the live schema and the oracle's.
    let mut live_attrs: Vec<String> = Vec::new();
    let mut next_tag: i64 = 0;
    let mut next_attr: u64 = 0;
    let mut kills = 0u64;
    let mut faults = 0u64;
    let mut matched_present = 0u64;
    let mut matched_absent = 0u64;
    let mut autocheckpoints = 0u64;

    for iteration in 0..iterations {
        let shared = reopen(&dir, config, seed, iteration);

        // Arm one random site most iterations; some iterations kill with no
        // fault at all, exercising pure pull-the-plug recovery.
        let armed = if rng.below(5) > 0 {
            let site = SITES[rng.below(SITES.len() as u64) as usize];
            let action = match rng.below(4) {
                0 => FailAction::Error,
                1 | 2 => FailAction::Crash,
                _ => FailAction::TornWrite { keep_bytes: rng.below(48) as usize },
            };
            shared.failpoints().arm(site, 1 + rng.below(4), action);
            Some(site)
        } else {
            None
        };

        // Run random ops until a fault fires or the budget is spent. The
        // op that errors (or that an async-swallowed fault interrupted) is
        // the single in-flight candidate.
        let mut in_flight: Option<Op> = None;
        for _ in 0..(2 + rng.below(6)) {
            let tags: Vec<i64> = live_oids.keys().copied().collect();
            let op = match rng.below(8) {
                0..=2 => {
                    let tag = next_tag;
                    next_tag += 1;
                    Op::Create { name: format!("s{tag}"), tag }
                }
                3 | 4 if !tags.is_empty() => {
                    let tag = tags[rng.below(tags.len() as u64) as usize];
                    // Never touch `age` — it is the tag objects are
                    // addressed by. Mutate an evolved attribute when one
                    // exists, else rewrite the name.
                    let (attr, value) = if !live_attrs.is_empty() && rng.below(2) == 0 {
                        let a = &live_attrs[rng.below(live_attrs.len() as u64) as usize];
                        (a.clone(), Value::Int(rng.below(1000) as i64))
                    } else {
                        ("name".to_string(), Value::Str(format!("n{}", rng.below(1000))))
                    };
                    if rng.below(2) == 0 {
                        Op::Set { tag, attr, value }
                    } else {
                        Op::UpdateWhere { tag, attr, value }
                    }
                }
                5 if !tags.is_empty() => {
                    Op::Delete { tag: tags[rng.below(tags.len() as u64) as usize] }
                }
                6 => {
                    let attr = format!("a{next_attr}");
                    next_attr += 1;
                    Op::AddAttr { attr, default: rng.below(100) as i64 }
                }
                7 => Op::Checkpoint,
                _ => continue,
            };
            match apply(&shared, &mut live_oids, &op) {
                Ok(()) => {
                    if let Op::AddAttr { attr, .. } = &op {
                        live_attrs.push(attr.clone());
                    }
                    acked.push(op);
                    // A fault swallowed inside an auto-checkpoint still
                    // means the plug gets pulled here.
                    if armed.is_some_and(|s| shared.failpoints().fired(s)) {
                        faults += 1;
                        break;
                    }
                }
                Err(e) => {
                    let fired = armed.is_some_and(|s| shared.failpoints().fired(s));
                    let poisoned = e.to_string().contains("wal poisoned");
                    if !fired && !poisoned {
                        fail(&shared, seed, iteration, &format!("non-injected error: {e}"));
                    }
                    faults += 1;
                    in_flight = Some(op);
                    break;
                }
            }
        }

        // Pull the plug. (Telemetry dies with the process, so roll the
        // auto-checkpoint count into the harness total first.)
        autocheckpoints += shared.telemetry().counter("durable.autocheckpoints");
        drop(shared);
        kills += 1;

        // Recover and compare against the oracle.
        let recovered = reopen(&dir, config, seed, iteration);
        let (oracle_a, attrs_a) = oracle_replay(&acked);
        let expect_a = digest(&oracle_a, &attrs_a);
        let got_a = digest(&recovered, &attrs_a);
        if got_a == expect_a {
            matched_absent += 1;
        } else if let Some(op) = in_flight.clone() {
            let mut with = acked.clone();
            with.push(op.clone());
            let (oracle_b, attrs_b) = oracle_replay(&with);
            let expect_b = digest(&oracle_b, &attrs_b);
            let got_b = digest(&recovered, &attrs_b);
            if got_b == expect_b {
                matched_present += 1;
                // The in-flight op reached the disk: it is now part of
                // durable history and every future recovery replays it.
                acked = with;
                match op {
                    Op::Create { tag, .. } => {
                        // Resolve its oid on the live side so later ops can
                        // target it like any acknowledged object.
                        let s = recovered.session();
                        let view = current_view(&recovered);
                        let found = s
                            .select_where(view, "Student", &format!("age == {tag}"))
                            .expect("recovered extent readable");
                        assert_eq!(found.len(), 1, "in-flight create present exactly once");
                        live_oids.insert(tag, found[0]);
                    }
                    Op::Delete { tag } => {
                        live_oids.remove(&tag);
                    }
                    Op::AddAttr { attr, .. } => {
                        live_attrs.push(attr);
                    }
                    _ => {}
                }
            } else {
                fail(
                    &recovered,
                    seed,
                    iteration,
                    &format!(
                        "recovered state matches neither acked-only nor acked+in-flight\n\
                         in-flight: {op:?}\n--- acked-only ---\n{expect_a}\n\
                         --- acked+in-flight ---\n{expect_b}\n--- recovered ---\n{got_a}"
                    ),
                );
            }
        } else {
            fail(
                &recovered,
                seed,
                iteration,
                &format!(
                    "recovered state lost acknowledged operations\n\
                     --- expected ---\n{expect_a}\n--- recovered ---\n{got_a}"
                ),
            );
        }
        drop(recovered);
    }

    // Final recovery must also be self-consistent and telemetry-visible.
    let shared = reopen(&dir, config, seed, iterations);
    let journal = shared.telemetry().journal_lines();
    assert!(journal.contains("recovery.complete"), "final journal missing recovery.complete");
    assert!(faults > 0, "no failpoint ever fired — the schedule is broken");
    println!(
        "crash_torture ok: seed={seed:#x} kills={kills} faults={faults} \
         inflight_present={matched_present} inflight_absent={matched_absent} \
         acked_ops={} generation={:?} autocheckpoints={autocheckpoints}",
        acked.len(),
        shared.generation(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}
