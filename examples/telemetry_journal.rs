//! Dump the telemetry journal of a concurrent workload as JSON-lines.
//!
//! ```text
//! cargo run --example telemetry_journal [journal-sink.jsonl]
//! ```
//!
//! Builds the university database, runs concurrent read/write sessions
//! while a schema evolution swaps epochs under them, and prints the
//! system's flight-recorder journal — one traced JSON object per line —
//! with a `metrics.snapshot` event embedded at the end so `tse-inspect`
//! can expose the counters offline:
//!
//! ```text
//! cargo run --example telemetry_journal > journal.jsonl
//! cargo run -p tse-inspect -- --check journal.jsonl
//! ```
//!
//! The example then exercises the bounded ring past capacity on a separate
//! telemetry domain with a streaming file sink attached, asserting the
//! `journal.dropped` counter and the sink agree on record counts. All
//! self-checks double as the CI telemetry-smoke contract.

use tse::core::SharedSystem;
use tse::object_model::Value;
use tse::telemetry::json::validate_lines;
use tse::telemetry::Telemetry;
use tse::workload::university::build_university;

fn main() {
    let (tse_sys, _) = build_university().expect("university schema builds");
    let shared = SharedSystem::from_system(tse_sys);
    let telemetry = shared.telemetry();
    let v = shared.create_view("VS1", &["Person", "Student", "TA"]).expect("view");

    // Journal the data plane too (every op becomes a slow-op event), and
    // start the journal fresh so every printed record is traced.
    telemetry.reset();
    telemetry.set_slow_op_threshold_ns(1);

    // Concurrent sessions during an evolve: two writers, two readers, and
    // the evolving main thread.
    let start = std::sync::Barrier::new(5);
    std::thread::scope(|scope| {
        for w in 0..2i64 {
            let shared = shared.clone();
            let start = &start;
            scope.spawn(move || {
                let writer = shared.writer();
                start.wait();
                for i in 0..25 {
                    writer
                        .create(v, "Student", &[("age", Value::Int(20 + (w * 25 + i) % 10))])
                        .expect("create through view");
                }
            });
        }
        for _ in 0..2 {
            let shared = shared.clone();
            let start = &start;
            scope.spawn(move || {
                let session = shared.session();
                start.wait();
                for _ in 0..25 {
                    session.extent(v, "Student").expect("extent through view");
                    session.select_where(v, "Student", "age >= 21").expect("select");
                }
            });
        }
        start.wait();
        shared
            .evolve_cmd("VS1", "add_attribute register: bool = false to Student")
            .expect("schema evolution under concurrent sessions");
    });

    // Embed the metrics snapshot for offline exposition, then print. The
    // embed runs under its own trace so every printed record is traced.
    {
        let _t = telemetry.ensure_trace("snapshot");
        telemetry.journal_metrics_snapshot();
    }
    let lines = telemetry.journal_lines();
    print!("{lines}");

    // Self-validation — this is the CI smoke contract.
    let records = validate_lines(&lines).expect("journal is well-formed JSON-lines");
    assert!(records > 100, "journal must capture the whole workload, got {records}");
    for phase in ["evolve", "evolve.translate", "evolve.classify", "evolve.view_regen",
                  "evolve.swap_in", "view.generate"] {
        assert!(
            lines.lines().any(|l| l.contains(&format!("\"name\":\"{phase}\""))),
            "journal is missing the {phase} span"
        );
    }
    assert!(
        !lines.lines().any(|l| l.contains("\"trace\":null")),
        "every record must carry a trace id"
    );
    assert_eq!(telemetry.journal_dropped(), 0, "default capacity must not drop");

    // ----- bounded flight recorder + streaming sink -------------------------
    //
    // A separate domain with a tiny ring and a JSONL file sink: push far
    // past capacity, then check that (records still in the ring) + (dropped)
    // equals what the sink persisted — long runs keep full history on disk
    // with bounded memory.
    let sink_path = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::temp_dir().join("tse_telemetry_sink.jsonl").to_string_lossy().into_owned()
    });
    let ring = Telemetry::with_capacity(32);
    ring.attach_sink(std::path::Path::new(&sink_path)).expect("sink file opens");
    let trace = ring.mint_trace("overflow_demo");
    let guard = ring.enter_trace(trace);
    for i in 0..500u64 {
        ring.event("tick", &[("i", i.into())]);
    }
    drop(guard);
    let sink_records = ring.detach_sink().expect("sink flushes cleanly");

    let in_ring = ring.journal().len() as u64;
    let dropped = ring.journal_dropped();
    assert!(in_ring <= 32, "ring exceeded capacity: {in_ring}");
    assert!(dropped > 0, "501 records through 32 slots must drop");
    assert_eq!(
        in_ring + dropped,
        sink_records,
        "ring + dropped must equal the sink's record count"
    );
    let sink_text = std::fs::read_to_string(&sink_path).expect("sink readable");
    assert_eq!(
        validate_lines(&sink_text).expect("sink is well-formed JSONL") as u64,
        sink_records,
        "sink file contents must match the sink record count"
    );
    let _ = std::fs::remove_file(&sink_path);

    eprintln!(
        "\n{records} journal records (all traced); ring kept {in_ring}, dropped {dropped}, \
         sink persisted {sink_records}. OK"
    );
}
