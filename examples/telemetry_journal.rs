//! Dump the telemetry journal of one schema evolution as JSON-lines.
//!
//! ```text
//! cargo run --example telemetry_journal
//! ```
//!
//! Builds the university database, applies a single `add_attribute` change
//! through a view, performs a few data-plane operations, and prints the
//! system's event journal — one JSON object per line — followed by the
//! metrics-registry snapshot. The example validates its own output (every
//! line parses as JSON; the pipeline phase spans are present with nonzero
//! durations), so CI can use it as a telemetry smoke test.

use tse::object_model::Value;
use tse::telemetry::json::validate_lines;
use tse::workload::university::build_university;

fn main() {
    let (mut tse, _) = build_university().expect("university schema builds");
    tse.create_view("VS1", &["Person", "Student", "TA"]).expect("view");

    let report = tse
        .evolve_cmd("VS1", "add_attribute register: bool = false to Student")
        .expect("schema evolution");
    let o = tse
        .create(report.view, "Student", &[("register", Value::Bool(true))])
        .expect("create through view");
    assert_eq!(
        tse.get(report.view, o, "Student", "register").expect("read through view"),
        Value::Bool(true)
    );
    tse.update_where(report.view, "Student", "register == true", &[("register", Value::Bool(false))])
        .expect("update through view");

    // The journal: one JSON object per completed span or event.
    let lines = tse.telemetry().journal_lines();
    print!("{lines}");

    // Self-validation — this is the CI smoke contract.
    let records = validate_lines(&lines).expect("journal is well-formed JSON-lines");
    assert!(records > 0, "journal must not be empty");
    for phase in ["evolve", "evolve.translate", "evolve.classify", "evolve.view_regen", "evolve.swap_in", "view.generate"] {
        assert!(
            lines.lines().any(|l| l.contains(&format!("\"name\":\"{phase}\""))),
            "journal is missing the {phase} span"
        );
    }
    let t = &report.timings;
    assert!(t.translate_ns > 0 && t.classify_ns > 0 && t.view_regen_ns > 0 && t.swap_in_ns > 0);
    assert!(t.phases_sum_ns() <= t.total_ns, "phase intervals must not overlap the total");

    tse.db().publish_store_stats(); // refresh store.* gauges past the data-plane ops
    eprintln!("\n-- metrics snapshot --");
    eprintln!("{}", tse.telemetry().snapshot().to_json().render());
    eprintln!("\n{records} journal records; phase spans present with nonzero durations. OK");
}
