//! Deterministic kill-at-a-random-failpoint / reopen loop.
//!
//! Each iteration arms one failpoint site with a crash-flavoured action
//! (simulated crash or torn write), runs a schema/data workload until the
//! fault fires (or the workload completes), then drops the system and
//! recovers it from disk with [`tse_core::TseSystem::open`]. After every
//! recovery the system must be structurally consistent: all view versions
//! resolve, the whole-system snapshot round-trips, and the seeded object
//! answers reads.
//!
//! The schedule is driven by a fixed-seed xorshift generator (override
//! with `CRASH_LOOP_SEED`), so a failure reproduces exactly. The process
//! exits nonzero on any violated invariant; stdout is a summary plus the
//! final recovery journal.

use tse_core::{DurableSystem, TseSystem};
use tse_object_model::{ModelResult, Oid, PropertyDef, Value, ValueType};
use tse_storage::FailAction;
use tse_view::ViewId;

const SITES: [&str; 9] = [
    "storage.insert",
    "durable.wal_append",
    "durable.snapshot_write",
    "durable.manifest_write",
    "snapshot.encode",
    "evolve.translate",
    "evolve.classify",
    "evolve.view_regen",
    "evolve.swap_in",
];

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // xorshift64* — deterministic, no external crates.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One iteration's workload: a unique schema change, a create, and a
/// periodic checkpoint. Stops at the first error (the armed fault).
fn workload(sys: &mut DurableSystem, i: u64, view: ViewId) -> ModelResult<()> {
    sys.evolve_cmd("VS", &format!("add_attribute a{i}: int = 0 to Student"))?;
    sys.create(view, "Student", &[("name", Value::Str(format!("s{i}")))])?;
    if i % 5 == 4 {
        sys.checkpoint()?;
    }
    Ok(())
}

fn check_consistency(sys: &DurableSystem, view: ViewId, oid: Oid) {
    for fam in sys.views().families().map(|s| s.to_string()).collect::<Vec<_>>() {
        sys.views().current(&fam).expect("current view resolves");
        for vid in sys.views().versions(&fam).expect("versions resolve") {
            sys.views().view(*vid).expect("view version resolves");
        }
    }
    TseSystem::decode(sys.encode()).expect("system snapshot round-trips");
    assert_eq!(
        sys.get(view, oid, "Student", "name").expect("seeded object readable"),
        Value::Str("seed".into())
    );
}

fn main() {
    let seed = std::env::var("CRASH_LOOP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE_u64);
    let iterations = 60u64;
    let mut rng = Rng(seed | 1);

    let dir = std::env::temp_dir().join(format!("tse_crash_loop_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Seed a durable baseline.
    let (view, oid) = {
        let mut sys = TseSystem::open(&dir).expect("fresh open");
        sys.define_base_class(
            "Person",
            &[],
            vec![PropertyDef::stored("name", ValueType::Str, Value::Null)],
        )
        .unwrap();
        sys.define_base_class("Student", &["Person"], vec![]).unwrap();
        let view = sys.create_view("VS", &["Person", "Student"]).unwrap();
        let oid = sys.create(view, "Student", &[("name", "seed".into())]).unwrap();
        sys.checkpoint().unwrap();
        (view, oid)
    };

    let mut fired = 0u64;
    let mut clean = 0u64;
    let mut recoveries = 0u64;
    let mut last_journal = String::new();

    for i in 0..iterations {
        let mut sys = TseSystem::open(&dir).unwrap_or_else(|e| {
            eprintln!("iteration {i}: recovery failed: {e}");
            std::process::exit(1);
        });
        recoveries += 1;
        check_consistency(&sys, view, oid);
        let journal = sys.telemetry().journal_lines();
        assert!(
            journal.contains("recovery.complete"),
            "iteration {i}: journal missing recovery.complete"
        );
        for line in journal.lines().filter(|l| !l.trim().is_empty()) {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "iteration {i}: malformed journal line: {line}"
            );
        }
        last_journal = journal;

        let site = SITES[rng.below(SITES.len() as u64) as usize];
        let action = match rng.below(3) {
            0 => FailAction::Error,
            1 => FailAction::Crash,
            _ => FailAction::TornWrite { keep_bytes: rng.below(64) as usize },
        };
        let on_hit = 1 + rng.below(3);
        sys.failpoints().arm(site, on_hit, action);

        match workload(&mut sys, i, view) {
            Ok(()) => {}
            Err(_) if sys.failpoints().fired(site) => {
                if matches!(action, FailAction::Error) {
                    clean += 1;
                    // A clean fault rolls back in place: the system must
                    // stay usable without a reopen.
                    sys.failpoints().disarm(site);
                    check_consistency(&sys, view, oid);
                } else {
                    fired += 1;
                }
            }
            Err(e) => {
                eprintln!("iteration {i}: unexpected non-injected error at {site}: {e}");
                std::process::exit(1);
            }
        }
        // Drop = the process dying; the next iteration recovers from disk.
    }

    // Final recovery and sanity summary.
    let sys = TseSystem::open(&dir).unwrap();
    check_consistency(&sys, view, oid);
    let versions = sys.views().versions("VS").unwrap().len();
    assert!(versions > 1, "no schema change ever survived: versions={versions}");
    assert!(fired + clean > 0, "no failpoint ever fired — schedule is broken");
    println!(
        "crash_loop ok: seed={seed:#x} iterations={iterations} recoveries={recoveries} \
         crashes={fired} clean_faults={clean} surviving_view_versions={versions} \
         generation={}",
        sys.generation()
    );
    println!("--- final recovery journal ---");
    print!("{last_journal}");
    let _ = std::fs::remove_dir_all(&dir);
}
