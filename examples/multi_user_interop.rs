//! Multiple concurrent users over one shared TSE database: an "old" client
//! keeps running against its original view version while a "new" client
//! evolves and uses the changed schema — both threads interoperate on the
//! same objects (the paper's interoperability requirement, §2.3).
//!
//! ```text
//! cargo run --example multi_user_interop
//! ```

use std::sync::Arc;

use parking_lot::RwLock;

use tse::core::TseSystem;
use tse::object_model::{Oid, PropertyDef, Value, ValueType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = TseSystem::new();
    sys.define_base_class(
        "Order",
        &[],
        vec![
            PropertyDef::stored("sku", ValueType::Str, Value::Null),
            PropertyDef::stored("qty", ValueType::Int, Value::Int(1)),
        ],
    )?;
    let v1 = sys.create_view("orders", &["Order"])?;
    // The evolution happens before the clients start (schema changes are
    // serialized through the TSEM; data operations then run concurrently).
    let v2 = sys.evolve_cmd("orders", "add_attribute priority: int = 3 to Order")?.view;

    let shared = Arc::new(RwLock::new(sys));
    let mut legacy_oids: Vec<Oid> = Vec::new();
    let mut modern_oids: Vec<Oid> = Vec::new();

    std::thread::scope(|scope| {
        // The legacy client: compiled against view version 1, no idea that
        // `priority` exists.
        let legacy = {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                let mut created = Vec::new();
                for i in 0..50 {
                    let sys = shared.write();
                    let oid = sys
                        .create(v1, "Order", &[("sku", Value::Str(format!("L-{i}")))])
                        .expect("legacy create");
                    created.push(oid);
                }
                created
            })
        };
        // The modern client: uses version 2 with priorities.
        let modern = {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                let mut created = Vec::new();
                for i in 0..50 {
                    let sys = shared.write();
                    let oid = sys
                        .create(
                            v2,
                            "Order",
                            &[
                                ("sku", Value::Str(format!("M-{i}"))),
                                ("priority", Value::Int((i % 5) as i64)),
                            ],
                        )
                        .expect("modern create");
                    created.push(oid);
                }
                created
            })
        };
        legacy_oids = legacy.join().expect("legacy thread");
        modern_oids = modern.join().expect("modern thread");
    });

    let sys = shared.read();
    // Interop both ways: each client sees all 100 orders through its view.
    assert_eq!(sys.extent(v1, "Order")?.len(), 100);
    assert_eq!(sys.extent(v2, "Order")?.len(), 100);
    // The modern client reads priorities of legacy orders (defaults), the
    // legacy client cannot even name the attribute.
    let legacy_order = legacy_oids[0];
    assert_eq!(sys.get(v2, legacy_order, "Order", "priority")?, Value::Int(3));
    assert!(sys.get(v1, legacy_order, "Order", "priority").is_err());
    // And legacy reads modern data it understands.
    let modern_order = modern_oids[0];
    assert_eq!(sys.get(v1, modern_order, "Order", "sku")?, Value::Str("M-0".into()));
    println!(
        "100 shared orders; legacy view sees {} of them, modern view sees {}.",
        sys.extent(v1, "Order")?.len(),
        sys.extent(v2, "Order")?.len()
    );
    println!("legacy cannot see `priority`; modern reads defaults on legacy data. done.");
    Ok(())
}
