//! Multiple concurrent users over one shared TSE database: an "old" client
//! keeps running against its original view version while a "new" client
//! evolves and uses the changed schema — both threads interoperate on the
//! same objects (the paper's interoperability requirement, §2.3).
//!
//! Both users go through the [`TseClient`] trait, so this program would run
//! unchanged against a remote `tse-server` by swapping `LocalClient` for
//! `RemoteClient`.
//!
//! ```text
//! cargo run --example multi_user_interop
//! ```

use tse::core::{SharedSystem, TseClient, TseCode, TseReader, TseWriter};
use tse::object_model::{Oid, PropertyDef, Value, ValueType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = SharedSystem::new();

    // The "orders" user owns the family; define the schema and version 1.
    let modern = sys.client("orders");
    modern.define_class(
        "Order",
        &[],
        vec![
            PropertyDef::stored("sku", ValueType::Str, Value::Null),
            PropertyDef::stored("qty", ValueType::Int, Value::Int(1)),
        ],
    )?;
    modern.create_view(&["Order"])?;

    // The legacy client binds while version 1 is current — and keeps that
    // binding when the family evolves underneath it.
    let mut legacy = sys.client("legacy");
    assert_eq!(legacy.bind("orders")?, 1);

    // The evolution happens before the clients start writing (schema
    // changes are serialized through the TSEM; data operations then run
    // concurrently). Only `modern` is re-bound to version 2.
    let summary = modern.evolve("add_attribute priority: int = 3 to Order")?;
    assert_eq!(summary.version, 2);

    let mut legacy_oids: Vec<Oid> = Vec::new();
    let mut modern_oids: Vec<Oid> = Vec::new();
    std::thread::scope(|scope| {
        // The legacy client: bound to view version 1, no idea that
        // `priority` exists.
        let legacy_writes = scope.spawn(|| {
            let w = legacy.writer().expect("legacy writer");
            (0..50)
                .map(|i| {
                    w.create("Order", &[("sku", Value::Str(format!("L-{i}")))])
                        .expect("legacy create")
                })
                .collect::<Vec<Oid>>()
        });
        // The modern client: uses version 2 with priorities.
        let modern_writes = scope.spawn(|| {
            let w = modern.writer().expect("modern writer");
            (0..50)
                .map(|i| {
                    w.create(
                        "Order",
                        &[
                            ("sku", Value::Str(format!("M-{i}"))),
                            ("priority", Value::Int((i % 5) as i64)),
                        ],
                    )
                    .expect("modern create")
                })
                .collect::<Vec<Oid>>()
        });
        legacy_oids = legacy_writes.join().expect("legacy thread");
        modern_oids = modern_writes.join().expect("modern thread");
    });

    // Interop both ways: each client sees all 100 orders through its view.
    let old_eyes = legacy.session()?;
    let new_eyes = modern.session()?;
    assert_eq!(old_eyes.view_version(), 1);
    assert_eq!(new_eyes.view_version(), 2);
    assert_eq!(old_eyes.extent("Order")?.len(), 100);
    assert_eq!(new_eyes.extent("Order")?.len(), 100);
    // The modern client reads priorities of legacy orders (defaults), the
    // legacy client cannot even name the attribute.
    let legacy_order = legacy_oids[0];
    assert_eq!(new_eyes.get(legacy_order, "Order", "priority")?, Value::Int(3));
    let hidden = old_eyes.get(legacy_order, "Order", "priority").unwrap_err();
    assert_eq!(hidden.code(), TseCode::NotFound);
    // And legacy reads modern data it understands.
    let modern_order = modern_oids[0];
    assert_eq!(old_eyes.get(modern_order, "Order", "sku")?, Value::Str("M-0".into()));
    println!(
        "100 shared orders; legacy view sees {} of them, modern view sees {}.",
        old_eyes.extent("Order")?.len(),
        new_eyes.extent("Order")?.len()
    );
    println!("legacy cannot see `priority`; modern reads defaults on legacy data. done.");
    Ok(())
}
