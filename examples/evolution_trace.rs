//! Replay a field-study-shaped schema-evolution trace (Sjøberg's 18-month
//! observation: attribute growth dominates; Marche: most attributes change)
//! and watch the system absorb it: every view version stays live, no other
//! team's view is ever touched, and the global schema grows monotonically.
//!
//! ```text
//! cargo run --release --example evolution_trace [changes] [seed]
//! ```

use tse::workload::trace::{generate_and_apply_trace, TraceMix};
use tse::workload::university::{build_university, populate_university};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(40);
    let seed: u64 = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(2026);

    let (mut tse, _) = build_university()?;
    tse.create_view("dev", &["Person", "Student", "Staff", "TeachingStaff"])?;
    tse.create_view("observers", &["Person", "TA", "Grad"])?;
    // Load data through a whole-schema view (population spans classes the
    // dev view deliberately does not select).
    let loader = tse.create_view_all("loader")?;
    let oids = populate_university(&mut tse, loader, 200)?;

    let classes_before = tse.db().schema().live_class_count();
    let trace = generate_and_apply_trace(&mut tse, "dev", n, &TraceMix::default(), seed)?;

    let mut histogram = std::collections::BTreeMap::new();
    for c in &trace.changes {
        *histogram.entry(c.op_name()).or_insert(0usize) += 1;
    }
    println!("applied {} schema changes (seed {seed}):", trace.changes.len());
    for (op, count) in &histogram {
        println!("  {op:<18} {count}");
    }
    println!(
        "global schema: {} -> {} live classes; view versions: {}",
        classes_before,
        tse.db().schema().live_class_count(),
        tse.views().versions("dev")?.len()
    );

    // Invariants after the storm:
    assert!(tse.views_unaffected_except("dev")?, "observers' view untouched");
    // All objects survive (the untouched loader view sees every one of them;
    // the dev view's extents may legitimately differ after edge surgery).
    let survivors = tse.extent(loader, "Person")?;
    assert_eq!(survivors.len(), oids.len(), "all objects survive schema evolution");
    // The very first dev version still answers.
    let v1 = tse.views().versions("dev")?[0];
    assert!(tse.get(v1, oids[0], "Person", "name").is_ok());
    println!("observers' view untouched; all {} objects reachable from every version. done.",
        oids.len());
    Ok(())
}
