//! Proposition A, executable (§6.x "Verification of the Translation
//! Process"): for every primitive schema-change operator, the view TSE
//! computes (`S''`) is equivalent to the schema a normal destructive
//! modification would produce (`S'`) — same classes, same computed types,
//! same extents, same generalization reachability.
//!
//! Fixed scenarios cover each operator on the university schema; the
//! property tests sweep randomized schemas and change sequences.

use proptest::prelude::*;

use tse::core::oracle::SimpleSchema;
use tse::core::{SchemaChange, TseSystem};
use tse::object_model::{Value, ValueType};
use tse::workload::random::{random_schema, RandomSchemaParams};
use tse::workload::university::{build_university, populate_university};

/// Apply `change` through TSE and through the oracle; panic with a diff if
/// the results diverge. Returns false if the change was rejected (in which
/// case both sides must reject).
fn check_equivalence(tse: &mut TseSystem, family: &str, change: &SchemaChange) -> bool {
    let view = tse.current_view(family).unwrap().clone();
    let before = SimpleSchema::snapshot(tse.db(), &view).unwrap();

    let tse_result = tse.evolve(family, change);
    let mut direct = before.clone();
    let oracle_result = direct.apply(change);

    match (&tse_result, &oracle_result) {
        (Ok(report), Ok(())) => {
            let new_view = tse.view(report.view).unwrap().clone();
            let after = SimpleSchema::snapshot(tse.db(), &new_view).unwrap();
            assert!(
                after.equivalent(&direct).unwrap(),
                "S'' != S' for {change:?}\n{}",
                after.diff(&direct)
            );
            true
        }
        (Err(_), Err(_)) => false,
        (Ok(_), Err(e)) => panic!("TSE accepted but oracle rejected {change:?}: {e}"),
        (Err(e), Ok(())) => panic!("oracle accepted but TSE rejected {change:?}: {e}"),
    }
}

fn university_sys() -> TseSystem {
    let (mut tse, _) = build_university().unwrap();
    tse.create_view(
        "VS",
        &["Person", "Student", "Staff", "TeachingStaff", "SupportStaff", "TA", "Grader"],
    )
    .unwrap();
    let loader = tse.create_view_all("loader").unwrap();
    populate_university(&mut tse, loader, 40).unwrap();
    tse
}

fn add_attr(class: &str, name: &str) -> SchemaChange {
    SchemaChange::AddAttribute {
        class: class.into(),
        name: name.into(),
        vtype: ValueType::Int,
        default: Value::Int(0),
        required: false,
    }
}

#[test]
fn fixed_add_attribute_matches_direct() {
    let mut tse = university_sys();
    assert!(check_equivalence(&mut tse, "VS", &add_attr("Student", "register")));
    assert!(check_equivalence(&mut tse, "VS", &add_attr("Person", "email")));
    // Rejected on both sides: the name exists.
    assert!(!check_equivalence(&mut tse, "VS", &add_attr("Student", "gpa")));
}

#[test]
fn fixed_delete_attribute_matches_direct() {
    let mut tse = university_sys();
    assert!(check_equivalence(
        &mut tse,
        "VS",
        &SchemaChange::DeleteAttribute { class: "Student".into(), name: "gpa".into() }
    ));
    // Non-local deletion rejected by both.
    assert!(!check_equivalence(
        &mut tse,
        "VS",
        &SchemaChange::DeleteAttribute { class: "TA".into(), name: "name".into() }
    ));
}

#[test]
fn fixed_method_ops_match_direct() {
    let mut tse = university_sys();
    assert!(check_equivalence(
        &mut tse,
        "VS",
        &SchemaChange::AddMethod {
            class: "Person".into(),
            name: "is_adult".into(),
            vtype: ValueType::Bool,
            body: tse::core::parse_expr("age >= 18").unwrap(),
        }
    ));
    assert!(check_equivalence(
        &mut tse,
        "VS",
        &SchemaChange::DeleteMethod { class: "Person".into(), name: "is_adult".into() }
    ));
}

#[test]
fn fixed_add_edge_matches_direct() {
    let mut tse = university_sys();
    assert!(check_equivalence(
        &mut tse,
        "VS",
        &SchemaChange::AddEdge { sup: "SupportStaff".into(), sub: "TA".into() }
    ));
    // Already a superclass → both reject.
    assert!(!check_equivalence(
        &mut tse,
        "VS",
        &SchemaChange::AddEdge { sup: "Person".into(), sub: "TA".into() }
    ));
    // Cycle → both reject.
    assert!(!check_equivalence(
        &mut tse,
        "VS",
        &SchemaChange::AddEdge { sup: "TA".into(), sub: "Person".into() }
    ));
}

#[test]
fn fixed_delete_edge_matches_direct() {
    let mut tse = university_sys();
    assert!(check_equivalence(
        &mut tse,
        "VS",
        &SchemaChange::DeleteEdge {
            sup: "TeachingStaff".into(),
            sub: "TA".into(),
            connected_to: Some("Staff".into()),
        }
    ));
    // Edge no longer exists → both reject.
    assert!(!check_equivalence(
        &mut tse,
        "VS",
        &SchemaChange::DeleteEdge {
            sup: "TeachingStaff".into(),
            sub: "TA".into(),
            connected_to: None,
        }
    ));
}

#[test]
fn fixed_class_ops_match_direct() {
    let mut tse = university_sys();
    assert!(check_equivalence(
        &mut tse,
        "VS",
        &SchemaChange::AddClass { name: "Intern".into(), connected_to: Some("Staff".into()) }
    ));
    assert!(check_equivalence(
        &mut tse,
        "VS",
        &SchemaChange::DeleteClass { class: "Grader".into() }
    ));
    // Duplicate class name → both reject.
    assert!(!check_equivalence(
        &mut tse,
        "VS",
        &SchemaChange::AddClass { name: "Person".into(), connected_to: None }
    ));
}

/// Derive a (possibly invalid) change from fuzz input over the current view.
fn derive_change(
    tse: &TseSystem,
    family: &str,
    op: usize,
    a: usize,
    b: usize,
    tag: usize,
) -> Option<SchemaChange> {
    let view = tse.current_view(family).ok()?.clone();
    let mut names: Vec<String> = view
        .classes
        .iter()
        .map(|c| view.local_name(tse.db(), *c).unwrap())
        .collect();
    names.sort();
    let pick = |i: usize| names[i % names.len()].clone();
    Some(match op % 7 {
        0 => add_attr(&pick(a), &format!("fz_{tag}")),
        1 => {
            // Delete some locally defined property of the picked class.
            let class = pick(a);
            let id = view.lookup(tse.db(), &class).ok()?;
            let locals = tse.db().schema().class(id).ok()?.locals().to_vec();
            let name = locals.get(b % locals.len().max(1))?.def.name.clone();
            SchemaChange::DeleteAttribute { class, name }
        }
        2 => SchemaChange::AddEdge { sup: pick(a), sub: pick(b) },
        3 => {
            let (sup, sub) = *view
                .edges
                .get(a % view.edges.len().max(1))
                .or_else(|| view.edges.first())?;
            SchemaChange::DeleteEdge {
                sup: view.local_name(tse.db(), sup).ok()?,
                sub: view.local_name(tse.db(), sub).ok()?,
                connected_to: None,
            }
        }
        4 => SchemaChange::AddClass {
            name: format!("K_{tag}"),
            connected_to: Some(pick(a)),
        },
        5 => SchemaChange::DeleteClass { class: pick(a) },
        _ => SchemaChange::RenameClass { old: pick(a), new: format!("R_{tag}") },
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Randomized Proposition A: sequences of derived changes on random
    /// schemas stay equivalent to direct modification at every step.
    #[test]
    fn random_change_sequences_match_direct(
        seed in 0u64..1000,
        ops in proptest::collection::vec((0usize..7, 0usize..16, 0usize..16), 1..6),
    ) {
        let r = random_schema(&RandomSchemaParams {
            classes: 7,
            objects: 20,
            seed,
            ..Default::default()
        }).unwrap();
        let mut tse = r.tse;
        let mut applied = 0usize;
        for (tag, (op, a, b)) in ops.into_iter().enumerate() {
            if let Some(change) = derive_change(&tse, "R", op, a, b, tag) {
                if check_equivalence(&mut tse, "R", &change) {
                    applied += 1;
                }
            }
        }
        let _ = applied;
    }

    /// Proposition B, randomized: other views are never affected.
    #[test]
    fn random_changes_leave_other_views_untouched(
        seed in 0u64..1000,
        ops in proptest::collection::vec((0usize..7, 0usize..16, 0usize..16), 1..5),
    ) {
        let r = random_schema(&RandomSchemaParams {
            classes: 7,
            objects: 10,
            seed,
            ..Default::default()
        }).unwrap();
        let mut tse = r.tse;
        // A second family over a subset of classes.
        let subset: Vec<&str> = r.class_names.iter().take(4).map(|s| s.as_str()).collect();
        tse.create_view("OTHER", &subset).unwrap();
        let other_before = tse.current_view("OTHER").unwrap().clone();
        for (tag, (op, a, b)) in ops.into_iter().enumerate() {
            if let Some(change) = derive_change(&tse, "R", op, a, b, tag) {
                let _ = tse.evolve("R", &change);
                prop_assert!(tse.views_unaffected_except("R").unwrap());
                prop_assert_eq!(&other_before, tse.current_view("OTHER").unwrap());
            }
        }
    }
}
