//! End-to-end telemetry integration: the evolution pipeline's spans,
//! counters, and phase timings, observed through the public facade.

use tse::core::TseSystem;
use tse::object_model::Value;
use tse::telemetry::json::validate_lines;
use tse::workload::university::build_university;

/// A fixed mixed workload: one evolution plus a few data-plane operations.
fn run_workload() -> TseSystem {
    let (mut tse, _) = build_university().unwrap();
    tse.create_view("VS1", &["Person", "Student", "TA"]).unwrap();
    let report = tse
        .evolve_cmd("VS1", "add_attribute register: bool = false to Student")
        .unwrap();
    let o = tse.create(report.view, "Student", &[("register", Value::Bool(true))]).unwrap();
    assert_eq!(tse.get(report.view, o, "Student", "register").unwrap(), Value::Bool(true));
    tse.update_where(report.view, "Student", "register == true", &[("register", Value::Bool(false))])
        .unwrap();
    tse
}

#[test]
fn evolution_report_phase_timings_populated_and_disjoint() {
    let (mut tse, _) = build_university().unwrap();
    tse.create_view("VS1", &["Person", "Student", "TA"]).unwrap();
    let report = tse
        .evolve_cmd("VS1", "add_attribute register: bool = false to Student")
        .unwrap();
    let t = &report.timings;
    assert!(t.translate_ns > 0, "translate phase untimed");
    assert!(t.classify_ns > 0, "classify phase untimed");
    assert!(t.view_regen_ns > 0, "view-regen phase untimed");
    assert!(t.swap_in_ns > 0, "swap-in phase untimed");
    // The phases are measured on disjoint sub-intervals of the evolve span.
    assert!(t.phases_sum_ns() <= t.total_ns, "phases overlap the total");
}

#[test]
fn composite_macro_total_covers_all_expanded_primitives() {
    let (mut tse, _) = build_university().unwrap();
    tse.create_view_all("VS").unwrap();
    let report = tse.evolve_cmd("VS", "insert_class Assistant between Student - TA").unwrap();
    // The report describes the last primitive; its total spans the whole
    // composite, so it dominates the last primitive's own phases.
    assert!(report.timings.phases_sum_ns() <= report.timings.total_ns);
    // One outer evolve + two nested primitives.
    assert!(tse.telemetry().snapshot().counter("evolve.count") >= 3);
}

#[test]
fn snapshot_counters_deterministic_across_identical_runs() {
    let a = run_workload().telemetry().snapshot();
    let b = run_workload().telemetry().snapshot();
    // Durations vary run to run; everything countable must not.
    assert_eq!(a.counters, b.counters, "counters diverged between identical runs");
    let names_a: Vec<&String> = a.histograms.keys().collect();
    let names_b: Vec<&String> = b.histograms.keys().collect();
    assert_eq!(names_a, names_b, "histogram sets diverged");
    for (name, h) in &a.histograms {
        assert_eq!(h.count, b.histograms[name].count, "{name}: observation count diverged");
    }
}

#[test]
fn journal_is_valid_json_lines_with_pipeline_spans() {
    let tse = run_workload();
    let lines = tse.telemetry().journal_lines();
    let records = validate_lines(&lines).expect("well-formed JSON-lines");
    assert!(records >= 5, "expected a real journal, got {records} records");
    for phase in ["evolve", "evolve.translate", "evolve.classify", "evolve.view_regen",
                  "evolve.swap_in", "view.generate", "classifier.classify"] {
        assert!(
            lines.lines().any(|l| l.contains(&format!("\"name\":\"{phase}\""))),
            "journal is missing the {phase} span"
        );
    }
}

#[test]
fn evolve_journal_records_share_one_trace() {
    let tse = run_workload();
    let lines = tse.telemetry().journal_lines();
    let journal = tse_inspect::Journal::parse(&lines).unwrap();
    // Every evolve-pipeline span carries the evolve's trace id — one trace
    // for the whole expansion tree.
    let traces: Vec<Option<u64>> = journal
        .records
        .iter()
        .filter(|r| {
            r.get("name")
                .and_then(|n| n.as_str())
                .is_some_and(|n| n == "evolve" || n.starts_with("evolve."))
        })
        .map(|r| r.get("trace").and_then(|t| t.as_u64()))
        .collect();
    assert!(!traces.is_empty());
    assert!(traces.iter().all(|t| t.is_some()), "untraced evolve span");
    assert_eq!(
        traces.iter().collect::<std::collections::BTreeSet<_>>().len(),
        1,
        "evolve pipeline fragmented across traces: {traces:?}"
    );
    assert!(journal.causality_errors().is_empty());
    // And the offline reconstruction is complete.
    assert!(journal.evolve_timelines().iter().any(|tl| tl.complete));
}

#[test]
fn data_plane_counters_and_latency_histograms_recorded() {
    let tse = run_workload();
    let snap = tse.telemetry().snapshot();
    for op in ["create", "get", "select_where", "update_where"] {
        assert!(snap.counter(&format!("op.{op}")) >= 1, "op.{op} not counted");
        let h = snap.histograms.get(&format!("latency.{op}")).unwrap_or_else(|| {
            panic!("latency.{op} histogram missing");
        });
        assert!(h.count >= 1 && h.min >= 1, "latency.{op} empty or zero");
    }
    // Store gauges are published on every evolve.
    assert!(snap.counters.contains_key("store.hit_ratio_bp"));
}
