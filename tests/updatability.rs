//! Theorem 1, executable: "any virtual class defined by our object algebra
//! is updatable in terms of the generic update operators" — randomized over
//! derivation DAGs built from all six operators.

use proptest::prelude::*;

use tse::algebra::{self, define_vc, Query, UpdatePolicy};
use tse::classifier::classify;
use tse::object_model::{
    ClassId, CmpOp, Database, Predicate, PropertyDef, Value, ValueType,
};

/// Base schema: two sibling base classes under a common parent.
fn base() -> (Database, ClassId, ClassId, ClassId) {
    let mut db = Database::default();
    let root = db.schema_mut().create_base_class("Thing", &[]).unwrap();
    db.schema_mut()
        .add_local_prop(root, PropertyDef::stored("rank", ValueType::Int, Value::Int(0)), None)
        .unwrap();
    let a = db.schema_mut().create_base_class("A", &[root]).unwrap();
    let b = db.schema_mut().create_base_class("B", &[root]).unwrap();
    (db, root, a, b)
}

/// Build a random single-operator layer over existing classes.
fn layer(db: &mut Database, op: usize, x: ClassId, y: ClassId, tag: usize) -> Option<ClassId> {
    let name = format!("V{tag}");
    let query = match op % 6 {
        0 => Query::select(Query::class(x), Predicate::cmp("rank", CmpOp::Ge, 0)),
        1 => Query::hide(Query::class(x), &[]),
        2 => Query::refine(
            Query::class(x),
            vec![PropertyDef::stored(&format!("extra{tag}"), ValueType::Int, Value::Int(0))],
        ),
        3 => Query::union(Query::class(x), Query::class(y)),
        4 => Query::difference(Query::class(x), Query::class(y)),
        _ => Query::intersect(Query::class(x), Query::class(y)),
    };
    let id = define_vc(db, &name, &query).ok()?;
    let placement = classify(db, id).ok()?;
    Some(placement.class)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Every class in a random derivation DAG supports create / set / read /
    /// add / remove / delete through the generic operators, and updates made
    /// through the virtual class are observable at its origin base classes
    /// (and vice versa).
    #[test]
    fn theorem_1_every_derived_class_is_updatable(
        ops in proptest::collection::vec((0usize..6, 0usize..8, 0usize..8), 1..6),
    ) {
        let (mut db, _root, a, b) = base();
        let mut classes: Vec<ClassId> = vec![a, b];
        for (tag, (op, xi, yi)) in ops.into_iter().enumerate() {
            let x = classes[xi % classes.len()];
            let y = classes[yi % classes.len()];
            if x == y && op % 6 >= 3 {
                continue; // skip degenerate self set-ops
            }
            if let Some(id) = layer(&mut db, op, x, y, tag) {
                classes.push(id);
            }
        }
        // Allow value-closure anomalies: e.g. creating through
        // `difference(X, A)` necessarily lands in A when X's creation target
        // is inside A — §3.4 explicitly leaves this to policy.
        let policy =
            UpdatePolicy { value_closure: tse::algebra::ValueClosure::Allow, ..Default::default() };
        for &class in &classes {
            // Create through the class…
            let oid = match algebra::create(&db, &policy, class, &[("rank", Value::Int(5))]) {
                Ok(oid) => oid,
                Err(e) => return Err(TestCaseError::fail(format!("create via {class}: {e}"))),
            };
            if !db.is_member(oid, class).unwrap() {
                // Value-closure anomaly: object exists at the base but is
                // invisible through this class; nothing further to check.
                algebra::delete(&db, &[oid]).unwrap();
                continue;
            }
            // …it reaches the origin base classes:
            let origins = algebra::origin_classes(db.schema(), class).unwrap();
            let targets = algebra::creation_targets(&db, &policy, class).unwrap();
            for t in &targets {
                prop_assert!(origins.contains(t));
                prop_assert!(db.is_member(oid, *t).unwrap());
            }
            // set through the class is visible at a base target:
            algebra::set(&db, &policy, &[oid], class, &[("rank", Value::Int(9))]).unwrap();
            if !db.is_member(oid, class).unwrap() {
                // The set pushed it out of a select class (allowed policy).
                algebra::delete(&db, &[oid]).unwrap();
                continue;
            }
            prop_assert_eq!(db.read_attr(oid, targets[0], "rank").unwrap(), Value::Int(9));
            // and a write at the base is visible through the class:
            db.write_attr(oid, targets[0], "rank", Value::Int(11)).unwrap();
            prop_assert_eq!(db.read_attr(oid, class, "rank").unwrap(), Value::Int(11));
            // remove / delete:
            algebra::remove(&db, &policy, &[oid], class).unwrap();
            prop_assert!(!db.is_member(oid, class).unwrap(), "removed from {class}");
            prop_assert!(db.object_exists(oid), "remove is not delete");
            algebra::delete(&db, &[oid]).unwrap();
            prop_assert!(!db.object_exists(oid));
        }
    }

    /// Classified classes always satisfy the type-agreement invariant:
    /// hierarchy-resolved type == operator-intent type.
    #[test]
    fn classification_preserves_type_agreement(
        ops in proptest::collection::vec((0usize..6, 0usize..8, 0usize..8), 1..8),
    ) {
        let (mut db, _root, a, b) = base();
        let mut classes: Vec<ClassId> = vec![a, b];
        for (tag, (op, xi, yi)) in ops.into_iter().enumerate() {
            let x = classes[xi % classes.len()];
            let y = classes[yi % classes.len()];
            if x == y && op % 6 >= 3 {
                continue;
            }
            if let Some(id) = layer(&mut db, op, x, y, tag) {
                classes.push(id);
            }
        }
        for &class in &classes {
            let resolved = db.schema().type_keys(class).unwrap();
            let intent = tse::algebra::intent_type(&db, class).unwrap();
            prop_assert_eq!(resolved, intent, "type agreement at {}", class);
        }
    }
}

#[test]
fn union_substitution_policy_matches_section_6_5_4() {
    // The create on a union class replacing a source class must propagate to
    // the *substituted* class, so the subclass extent is not polluted.
    let (mut db, _root, a, b) = base();
    let u = define_vc(&mut db, "U", &Query::union(Query::class(a), Query::class(b))).unwrap();
    classify(&mut db, u).unwrap();
    let mut policy = UpdatePolicy::default();
    policy.union_routes.insert(u, tse::algebra::UnionRoute::First);
    let oid = algebra::create(&db, &policy, u, &[]).unwrap();
    assert!(db.is_member(oid, a).unwrap(), "routed to the substituted (first) source");
    assert!(
        !db.is_member(oid, b).unwrap(),
        "creating through the superclass must not pollute the sibling subclass"
    );
}
