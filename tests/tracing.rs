//! Concurrency-correct tracing, end to end: per-thread span contexts under
//! real multi-threaded sessions, trace stamping on every journal record,
//! explicit cross-thread handoff, the bounded flight recorder, and
//! `tse-inspect`'s offline reconstruction of the result.

use std::sync::Barrier;

use tse::core::{SharedSystem, TseSystem};
use tse::object_model::{PropertyDef, Value, ValueType};
use tse::telemetry::Telemetry;
use tse_inspect::Journal;

fn build_shared() -> (SharedSystem, tse::view::ViewId) {
    let mut sys = TseSystem::new();
    sys.define_base_class(
        "Person",
        &[],
        vec![
            PropertyDef::stored("name", ValueType::Str, Value::Null),
            PropertyDef::stored("age", ValueType::Int, Value::Int(0)),
        ],
    )
    .unwrap();
    let v = sys.create_view("VS", &["Person"]).unwrap();
    for i in 0..100 {
        sys.create(
            v,
            "Person",
            &[("name", Value::Str(format!("p{i}"))), ("age", Value::Int(i as i64))],
        )
        .unwrap();
    }
    (SharedSystem::from_system(sys), v)
}

/// The PR-1 regression at the public API: two threads open concurrent spans
/// on one shared telemetry domain. The old single global stack parented
/// thread B's root off thread A's open span and let A's `finish` force-close
/// B's spans; per-thread contexts must keep the threads independent.
#[test]
fn concurrent_spans_keep_per_thread_parentage() {
    let t = Telemetry::new();
    let a = t.span("a.root");
    let (tx, rx) = std::sync::mpsc::channel();
    let (release_tx, release_rx) = std::sync::mpsc::channel();
    let t2 = t.clone();
    let worker = std::thread::spawn(move || {
        let b = t2.span("b.root");
        let b_child = t2.span("b.child");
        tx.send(()).unwrap();
        release_rx.recv().unwrap();
        b_child.finish();
        b.finish();
    });
    rx.recv().unwrap();
    // A finishes while B's spans are open — must not close or journal them.
    a.finish();
    assert!(
        t.journal().iter().all(|r| !r.name().starts_with("b.")),
        "thread A's finish closed thread B's spans"
    );
    release_tx.send(()).unwrap();
    worker.join().unwrap();

    let journal = Journal::parse(&t.journal_lines()).unwrap();
    assert!(journal.causality_errors().is_empty());
    // B's root is a root (not parented off A's open span) and B's child
    // parents inside B's own thread.
    let b_root = journal
        .records
        .iter()
        .find(|r| r.get("name").and_then(|n| n.as_str()) == Some("b.root"))
        .unwrap();
    assert_eq!(b_root.get("parent"), Some(&tse::telemetry::json::JsonValue::Null));
    assert_eq!(t.counter("span.leaked"), 0);
}

/// Explicit cross-thread causality: a handed-off trace context adopted on
/// another thread stamps that thread's spans with the same trace and links
/// the first span back via `follows_from` instead of a bogus parent.
#[test]
fn handoff_links_cross_thread_work_with_follows_from() {
    let t = Telemetry::new();
    let trace = t.mint_trace("pipeline");
    let guard = t.enter_trace(trace);
    let stage1 = t.span("stage1");
    let h = t.handoff().expect("active scope to hand off");
    let t2 = t.clone();
    std::thread::spawn(move || {
        let _adopted = t2.adopt(h);
        let _s = t2.span("stage2");
    })
    .join()
    .unwrap();
    stage1.finish();
    drop(guard);

    let journal = Journal::parse(&t.journal_lines()).unwrap();
    let stage2 = journal
        .records
        .iter()
        .find(|r| r.get("name").and_then(|n| n.as_str()) == Some("stage2"))
        .unwrap();
    assert_eq!(stage2.get("trace").and_then(|v| v.as_u64()), Some(trace));
    assert_eq!(stage2.get("parent"), Some(&tse::telemetry::json::JsonValue::Null));
    let stage1_id = journal
        .records
        .iter()
        .find(|r| r.get("name").and_then(|n| n.as_str()) == Some("stage1"))
        .and_then(|r| r.get("id").and_then(|v| v.as_u64()))
        .unwrap();
    assert_eq!(stage2.get("follows_from").and_then(|v| v.as_u64()), Some(stage1_id));
    assert!(journal.causality_errors().is_empty());
}

/// The acceptance scenario: four worker threads run read/write sessions
/// while the main thread evolves the schema mid-flight. Every journal
/// record must carry a trace id, parent links must stay inside one thread's
/// trace (`tse-inspect` verifies), and the evolve-phase timeline must be
/// reconstructible offline.
#[test]
fn multithreaded_sessions_during_evolve_produce_fully_traced_journal() {
    let (shared, v) = build_shared();
    let telemetry = shared.telemetry();
    // Setup (define/create through the control plane) predates tracing
    // scopes; start the journal fresh so the assertion below can be exact.
    telemetry.reset();
    // Journal every operation as a slow op so data-plane traffic is visible
    // in the journal, not only in counters.
    telemetry.set_slow_op_threshold_ns(1);

    let start = Barrier::new(5);
    std::thread::scope(|scope| {
        for w in 0..2u64 {
            let shared = shared.clone();
            let start = &start;
            scope.spawn(move || {
                let writer = shared.writer();
                start.wait();
                for i in 0..50 {
                    writer
                        .create(
                            v,
                            "Person",
                            &[("age", Value::Int((w * 1000 + i) as i64))],
                        )
                        .unwrap();
                }
            });
        }
        for r in 0..2u64 {
            let shared = shared.clone();
            let start = &start;
            scope.spawn(move || {
                let session = shared.session();
                start.wait();
                for i in 0..50 {
                    let n = session
                        .select_where(v, "Person", &format!("age >= {}", (r * 7 + i) % 90))
                        .unwrap()
                        .len();
                    assert!(n > 0);
                    session.extent(v, "Person").unwrap();
                }
            });
        }
        start.wait();
        // Evolve while all four sessions are in flight.
        shared.evolve_cmd("VS", "add_attribute flag: bool = false to Person").unwrap();
    });

    let lines = telemetry.journal_lines();
    let journal = Journal::parse(&lines).unwrap();
    assert!(!journal.torn);
    assert!(journal.records.len() > 100, "expected a busy journal");

    // Every record carries a trace id.
    for rec in &journal.records {
        assert!(
            rec.get("trace").and_then(|t| t.as_u64()).is_some(),
            "untraced record: {}",
            rec.render()
        );
    }
    // Parent links never cross threads or traces.
    assert_eq!(journal.causality_errors(), Vec::<String>::new());

    // All five threads (4 workers + the evolving main thread) are visible.
    let tids: std::collections::BTreeSet<u64> = journal
        .records
        .iter()
        .filter_map(|r| r.get("tid").and_then(|t| t.as_u64()))
        .collect();
    assert!(tids.len() >= 5, "expected >= 5 threads in the journal, got {tids:?}");

    // The session traces and the evolve trace are distinct.
    let summaries = journal.trace_summaries();
    let kinds: Vec<&str> = summaries.iter().map(|s| s.kind.as_str()).collect();
    assert!(kinds.iter().filter(|k| **k == "read_session").count() >= 2, "{kinds:?}");
    assert!(kinds.iter().filter(|k| **k == "write_session").count() >= 2, "{kinds:?}");
    assert!(kinds.contains(&"evolve"), "{kinds:?}");

    // tse-inspect reconstructs a complete evolve phase timeline.
    let timelines = journal.evolve_timelines();
    assert!(
        timelines.iter().any(|tl| tl.complete),
        "no complete evolve timeline in {timelines:?}"
    );
    let tl = timelines.iter().find(|tl| tl.complete).unwrap();
    assert!(tl.trace.is_some());
    for phase in &tl.phases {
        assert!(phase.start_ns >= tl.start_ns);
        assert!(phase.start_ns + phase.dur_ns <= tl.start_ns + tl.total_ns);
    }

    // The CI gate passes end to end (embed the snapshot it reads first).
    telemetry.journal_metrics_snapshot();
    let journal = Journal::parse(&telemetry.journal_lines()).unwrap();
    let report = journal.check();
    assert!(report.problems.is_empty(), "{:?}", report.problems);
    assert_eq!(report.dropped, Some(0), "default capacity must not drop");
}

/// Flight-recorder bound: with a small ring capacity the journal holds at
/// most `capacity` records no matter how much traffic runs, and the drop
/// counter accounts for the evicted remainder.
#[test]
fn journal_memory_is_bounded_at_ring_capacity() {
    let (shared, v) = build_shared();
    let telemetry = shared.telemetry();
    telemetry.reset();
    telemetry.set_journal_capacity(64);
    telemetry.set_slow_op_threshold_ns(1);

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let shared = shared.clone();
            scope.spawn(move || {
                let writer = shared.writer();
                for i in 0..100 {
                    writer.create(v, "Person", &[("age", Value::Int(i))]).unwrap();
                }
            });
        }
    });

    assert!(telemetry.journal().len() <= 64, "ring exceeded its capacity");
    let dropped = telemetry.journal_dropped();
    assert!(dropped > 0, "400+ records through a 64-slot ring must drop");
    // Ring occupancy + drops account for everything emitted.
    let emitted = telemetry.journal().len() as u64 + dropped;
    assert!(emitted >= 400, "emitted {emitted}");
    // Everything still in the ring parses and is traced.
    let journal = Journal::parse(&telemetry.journal_lines()).unwrap();
    for rec in &journal.records {
        assert!(rec.get("trace").and_then(|t| t.as_u64()).is_some());
    }
}
