//! Shared-access correctness: the system is designed for `RwLock` sharing
//! (the paper's platform provides concurrency control). Reads use interior
//! mutability for caches and counters, so many parallel readers must be
//! safe and coherent; writers serialize through the lock.

use std::sync::Arc;

use parking_lot::RwLock;

use tse::core::TseSystem;
use tse::object_model::{PropertyDef, Value, ValueType};

fn build() -> (TseSystem, Vec<tse::object_model::Oid>, tse::view::ViewId) {
    let mut sys = TseSystem::new();
    sys.define_base_class(
        "Person",
        &[],
        vec![
            PropertyDef::stored("name", ValueType::Str, Value::Null),
            PropertyDef::stored("age", ValueType::Int, Value::Int(0)),
        ],
    )
    .unwrap();
    let v = sys.create_view("VS", &["Person"]).unwrap();
    let mut oids = Vec::new();
    for i in 0..200 {
        oids.push(
            sys.create(
                v,
                "Person",
                &[("name", Value::Str(format!("p{i}"))), ("age", Value::Int(i as i64))],
            )
            .unwrap(),
        );
    }
    (sys, oids, v)
}

#[test]
fn parallel_readers_see_consistent_data() {
    let (sys, oids, v) = build();
    let shared = Arc::new(RwLock::new(sys));
    std::thread::scope(|scope| {
        for t in 0..8 {
            let shared = Arc::clone(&shared);
            let oids = oids.clone();
            scope.spawn(move || {
                for round in 0..50 {
                    let sys = shared.read();
                    let idx = (t * 31 + round * 7) % oids.len();
                    let age = sys.get(v, oids[idx], "Person", "age").unwrap();
                    assert_eq!(age, Value::Int(idx as i64));
                    // Extent evaluation (cache-refreshing) under read locks.
                    assert_eq!(sys.extent(v, "Person").unwrap().len(), oids.len());
                    // Query pipeline too.
                    let n = sys.select_where(v, "Person", "age >= 100").unwrap().len();
                    assert_eq!(n, 100);
                }
            });
        }
    });
}

#[test]
fn readers_interleaved_with_writers_stay_coherent() {
    let (sys, oids, v) = build();
    let shared = Arc::new(RwLock::new(sys));
    std::thread::scope(|scope| {
        // A writer bumps ages by 1000 one at a time.
        {
            let shared = Arc::clone(&shared);
            let oids = oids.clone();
            scope.spawn(move || {
                for (i, oid) in oids.iter().enumerate() {
                    let mut sys = shared.write();
                    sys.set(v, *oid, "Person", &[("age", Value::Int(1000 + i as i64))]).unwrap();
                }
            });
        }
        // Readers observe either the old or the new value, never junk.
        for _ in 0..4 {
            let shared = Arc::clone(&shared);
            let oids = oids.clone();
            scope.spawn(move || {
                for (i, oid) in oids.iter().enumerate() {
                    let sys = shared.read();
                    match sys.get(v, *oid, "Person", "age").unwrap() {
                        Value::Int(x) => {
                            assert!(
                                x == i as i64 || x == 1000 + i as i64,
                                "age of {oid} was {x}"
                            );
                        }
                        other => panic!("non-int age {other:?}"),
                    }
                }
            });
        }
    });
    // Final state: all bumped.
    let sys = shared.read();
    assert_eq!(sys.get(v, oids[5], "Person", "age").unwrap(), Value::Int(1005));
}

#[test]
fn evolution_under_lock_with_concurrent_old_version_readers() {
    let (sys, oids, v1) = build();
    let shared = Arc::new(RwLock::new(sys));
    std::thread::scope(|scope| {
        {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                for i in 0..5 {
                    let mut sys = shared.write();
                    sys.evolve_cmd("VS", &format!("add_attribute extra{i}: int to Person"))
                        .unwrap();
                }
            });
        }
        for _ in 0..4 {
            let shared = Arc::clone(&shared);
            let oids = oids.clone();
            scope.spawn(move || {
                for oid in &oids {
                    let sys = shared.read();
                    // The old view keeps answering regardless of how far
                    // evolution has progressed.
                    assert!(sys.get(v1, *oid, "Person", "name").is_ok());
                }
            });
        }
    });
    let sys = shared.read();
    assert_eq!(sys.views().versions("VS").unwrap().len(), 6);
}
