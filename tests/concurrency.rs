//! Shared-access correctness: the legacy whole-system `RwLock` sharing
//! model (readers and writers both serialize on one lock), and the
//! control-plane / data-plane split of `SharedSystem`, where read sessions
//! pin epoch-published metadata snapshots and evolution only takes the
//! exclusive lock for the final swap-in.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use tse::core::{SharedSystem, TseSystem};
use tse::object_model::{PropertyDef, Value, ValueType};
use tse::storage::FailAction;

fn build() -> (TseSystem, Vec<tse::object_model::Oid>, tse::view::ViewId) {
    let mut sys = TseSystem::new();
    sys.define_base_class(
        "Person",
        &[],
        vec![
            PropertyDef::stored("name", ValueType::Str, Value::Null),
            PropertyDef::stored("age", ValueType::Int, Value::Int(0)),
        ],
    )
    .unwrap();
    let v = sys.create_view("VS", &["Person"]).unwrap();
    let mut oids = Vec::new();
    for i in 0..200 {
        oids.push(
            sys.create(
                v,
                "Person",
                &[("name", Value::Str(format!("p{i}"))), ("age", Value::Int(i as i64))],
            )
            .unwrap(),
        );
    }
    (sys, oids, v)
}

#[test]
fn parallel_readers_see_consistent_data() {
    let (sys, oids, v) = build();
    let shared = Arc::new(RwLock::new(sys));
    std::thread::scope(|scope| {
        for t in 0..8 {
            let shared = Arc::clone(&shared);
            let oids = oids.clone();
            scope.spawn(move || {
                for round in 0..50 {
                    let sys = shared.read();
                    let idx = (t * 31 + round * 7) % oids.len();
                    let age = sys.get(v, oids[idx], "Person", "age").unwrap();
                    assert_eq!(age, Value::Int(idx as i64));
                    // Extent evaluation (cache-refreshing) under read locks.
                    assert_eq!(sys.extent(v, "Person").unwrap().len(), oids.len());
                    // Query pipeline too.
                    let n = sys.select_where(v, "Person", "age >= 100").unwrap().len();
                    assert_eq!(n, 100);
                }
            });
        }
    });
}

#[test]
fn readers_interleaved_with_writers_stay_coherent() {
    let (sys, oids, v) = build();
    let shared = Arc::new(RwLock::new(sys));
    std::thread::scope(|scope| {
        // A writer bumps ages by 1000 one at a time.
        {
            let shared = Arc::clone(&shared);
            let oids = oids.clone();
            scope.spawn(move || {
                for (i, oid) in oids.iter().enumerate() {
                    let sys = shared.write();
                    sys.set(v, *oid, "Person", &[("age", Value::Int(1000 + i as i64))]).unwrap();
                }
            });
        }
        // Readers observe either the old or the new value, never junk.
        for _ in 0..4 {
            let shared = Arc::clone(&shared);
            let oids = oids.clone();
            scope.spawn(move || {
                for (i, oid) in oids.iter().enumerate() {
                    let sys = shared.read();
                    match sys.get(v, *oid, "Person", "age").unwrap() {
                        Value::Int(x) => {
                            assert!(
                                x == i as i64 || x == 1000 + i as i64,
                                "age of {oid} was {x}"
                            );
                        }
                        other => panic!("non-int age {other:?}"),
                    }
                }
            });
        }
    });
    // Final state: all bumped.
    let sys = shared.read();
    assert_eq!(sys.get(v, oids[5], "Person", "age").unwrap(), Value::Int(1005));
}

#[test]
fn evolution_under_lock_with_concurrent_old_version_readers() {
    let (sys, oids, v1) = build();
    let shared = Arc::new(RwLock::new(sys));
    std::thread::scope(|scope| {
        {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                for i in 0..5 {
                    let mut sys = shared.write();
                    sys.evolve_cmd("VS", &format!("add_attribute extra{i}: int to Person"))
                        .unwrap();
                }
            });
        }
        for _ in 0..4 {
            let shared = Arc::clone(&shared);
            let oids = oids.clone();
            scope.spawn(move || {
                for oid in &oids {
                    let sys = shared.read();
                    // The old view keeps answering regardless of how far
                    // evolution has progressed.
                    assert!(sys.get(v1, *oid, "Person", "name").is_ok());
                }
            });
        }
    });
    let sys = shared.read();
    assert_eq!(sys.views().versions("VS").unwrap().len(), 6);
}

/// Person ← Student system with a two-class view — the shape a composite
/// `insert_class` macro needs (it splices a class between the two).
fn build_two_level() -> (TseSystem, Vec<tse::object_model::Oid>, tse::view::ViewId) {
    let mut sys = TseSystem::new();
    sys.define_base_class(
        "Person",
        &[],
        vec![
            PropertyDef::stored("name", ValueType::Str, Value::Null),
            PropertyDef::stored("age", ValueType::Int, Value::Int(0)),
        ],
    )
    .unwrap();
    sys.define_base_class("Student", &["Person"], vec![]).unwrap();
    let v = sys.create_view("VS", &["Person", "Student"]).unwrap();
    let mut oids = Vec::new();
    for i in 0..100 {
        oids.push(
            sys.create(
                v,
                "Student",
                &[("name", Value::Str(format!("s{i}"))), ("age", Value::Int(i as i64))],
            )
            .unwrap(),
        );
    }
    (sys, oids, v)
}

#[test]
fn shared_system_readers_never_observe_torn_epoch() {
    // A composite macro (insert_class = add_class + add_edge) registers TWO
    // view versions. Under fork–evolve–swap both publish in one epoch, so a
    // reader must see the family at 1 version (old epoch) or 3 versions
    // (new epoch) — never the intermediate 2.
    let (sys, oids, v1) = build_two_level();
    let shared = SharedSystem::from_system(sys);
    let epoch_before = shared.epoch();
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        {
            let shared = shared.clone();
            let done = Arc::clone(&done);
            scope.spawn(move || {
                shared
                    .evolve_cmd("VS", "insert_class Mid between Person - Student")
                    .unwrap();
                done.store(true, Ordering::Release);
            });
        }
        for t in 0..4 {
            let shared = shared.clone();
            let done = Arc::clone(&done);
            let oids = oids.clone();
            scope.spawn(move || {
                let mut rounds = 0usize;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    // A fresh session pins whatever epoch is current.
                    let session = shared.session();
                    let versions = session.meta().views().versions("VS").unwrap().len();
                    assert!(
                        versions == 1 || versions == 3,
                        "torn epoch: reader saw {versions} view versions"
                    );
                    let current = session.current_view("VS").unwrap();
                    assert!(
                        current.version == 1 || current.version == 3,
                        "torn epoch: current view at version {}",
                        current.version
                    );
                    // The session's pinned metadata keeps answering queries
                    // against the live system mid-evolution.
                    let idx = (t * 13 + rounds * 7) % oids.len();
                    assert_eq!(
                        session.get(v1, oids[idx], "Student", "age").unwrap(),
                        Value::Int(idx as i64)
                    );
                    assert_eq!(
                        session.select_where(v1, "Student", "age >= 50").unwrap().len(),
                        50
                    );
                    rounds += 1;
                    if finished {
                        break;
                    }
                }
                assert!(rounds > 0);
            });
        }
    });

    // One composite change = one published epoch, two new view versions.
    assert_eq!(shared.epoch(), epoch_before + 1);
    let session = shared.session();
    assert_eq!(session.meta().views().versions("VS").unwrap().len(), 3);
    assert_eq!(session.current_view("VS").unwrap().version, 3);
    // Old sessions' class resolution stays valid against the new system.
    assert!(session.select_where(v1, "Mid", "age >= 0").is_err(), "v1 predates Mid");
}

#[test]
fn shared_system_aborted_evolve_publishes_no_epoch() {
    let (sys, oids, v1) = build_two_level();
    let shared = SharedSystem::from_system(sys);
    let epoch_before = shared.epoch();
    let session_before = shared.session();
    let versions_before = session_before.meta().views().versions("VS").unwrap().len();

    // The failpoint fires inside the *private fork* (fork shares the
    // registry); the live system and its epoch must be untouched.
    shared.failpoints().arm("evolve.classify", 1, FailAction::Error);
    let err = shared.evolve_cmd("VS", "add_attribute gpa: float = 0.0 to Student");
    assert!(err.is_err());
    shared.failpoints().disarm("evolve.classify");

    assert_eq!(shared.epoch(), epoch_before, "aborted evolve published an epoch");
    let session = shared.session();
    assert_eq!(session.meta().views().versions("VS").unwrap().len(), versions_before);
    assert!(session.get(v1, oids[0], "Student", "gpa").is_err(), "no trace of the change");
    assert_eq!(session.get(v1, oids[7], "Student", "age").unwrap(), Value::Int(7));

    // The same change succeeds once the failpoint is gone — the live
    // system was never poisoned by the aborted fork.
    shared.evolve_cmd("VS", "add_attribute gpa: float = 0.0 to Student").unwrap();
    assert_eq!(shared.epoch(), epoch_before + 1);
    let mut session = session_before;
    session.refresh();
    assert_eq!(
        session.get(session.current_view("VS").unwrap().id, oids[0], "Student", "gpa").unwrap(),
        Value::Float(0.0)
    );
}

#[test]
fn shared_system_data_writes_interleave_with_readers() {
    let (sys, oids, v) = build_two_level();
    let shared = SharedSystem::from_system(sys);
    std::thread::scope(|scope| {
        {
            let writer = shared.writer();
            let oids = oids.clone();
            scope.spawn(move || {
                for (i, oid) in oids.iter().enumerate() {
                    writer.set(v, *oid, "Student", &[("age", Value::Int(1000 + i as i64))]).unwrap();
                }
            });
        }
        for _ in 0..3 {
            let session = shared.session();
            let oids = oids.clone();
            scope.spawn(move || {
                for (i, oid) in oids.iter().enumerate() {
                    match session.get(v, *oid, "Student", "age").unwrap() {
                        Value::Int(x) => assert!(
                            x == i as i64 || x == 1000 + i as i64,
                            "age of {oid} was {x}"
                        ),
                        other => panic!("non-int age {other:?}"),
                    }
                }
            });
        }
    });
    let session = shared.session();
    assert_eq!(session.get(v, oids[5], "Student", "age").unwrap(), Value::Int(1005));
    // Data writes do not publish epochs; metadata is untouched.
    assert_eq!(shared.epoch(), 1);
}

/// Two unrelated base classes → two store segments → (usually) two lock
/// stripes. The striped write path must let concurrent `create` batches on
/// them proceed without losing a single record.
fn build_two_segments() -> (SharedSystem, tse::view::ViewId) {
    let mut sys = TseSystem::new();
    sys.define_base_class(
        "Sensor",
        &[],
        vec![PropertyDef::stored("unit", ValueType::Str, Value::Null)],
    )
    .unwrap();
    sys.define_base_class(
        "Reading",
        &[],
        vec![PropertyDef::stored("celsius", ValueType::Int, Value::Int(0))],
    )
    .unwrap();
    let shared = SharedSystem::from_system(sys);
    let v = shared.create_view("LAB", &["Sensor", "Reading"]).unwrap();
    (shared, v)
}

#[test]
fn concurrent_create_batches_on_two_classes_lose_nothing() {
    let (shared, v) = build_two_segments();
    const PER_THREAD: usize = 250;
    std::thread::scope(|scope| {
        for t in 0..4 {
            let writer = shared.writer();
            scope.spawn(move || {
                let (class, attr) = if t % 2 == 0 { ("Sensor", "unit") } else { ("Reading", "celsius") };
                for i in 0..PER_THREAD {
                    let value = if t % 2 == 0 {
                        Value::Str(format!("u{t}-{i}"))
                    } else {
                        Value::Int((t * PER_THREAD + i) as i64)
                    };
                    writer.create(v, class, &[(attr, value)]).unwrap();
                }
            });
        }
    });
    let session = shared.session();
    assert_eq!(session.extent(v, "Sensor").unwrap().len(), 2 * PER_THREAD);
    assert_eq!(session.extent(v, "Reading").unwrap().len(), 2 * PER_THREAD);
    // The stripe metrics are registered (conflicts may legitimately be 0
    // on an uncontended run, but the counter must exist).
    let snap = shared.telemetry().snapshot();
    assert!(
        snap.counters.contains_key("stripe.conflicts"),
        "stripe.conflicts missing from telemetry"
    );
}

#[test]
fn cross_segment_delete_objects_does_not_deadlock_same_stripe_writers() {
    // Students slice across two segments: "name" homes in Person's segment,
    // "gpa" in Student's. delete_objects therefore frees records in both
    // segments while another writer keeps hammering one of them.
    let mut sys = TseSystem::new();
    sys.define_base_class(
        "Person",
        &[],
        vec![PropertyDef::stored("name", ValueType::Str, Value::Null)],
    )
    .unwrap();
    sys.define_base_class(
        "Student",
        &["Person"],
        vec![PropertyDef::stored("gpa", ValueType::Int, Value::Int(0))],
    )
    .unwrap();
    let shared = SharedSystem::from_system(sys);
    let v = shared.create_view("VS", &["Person", "Student"]).unwrap();

    let writer = shared.writer();
    let mut doomed = Vec::new();
    for i in 0..200 {
        let oid = writer
            .create(
                v,
                "Student",
                &[("name", Value::Str(format!("s{i}"))), ("gpa", Value::Int(i))],
            )
            .unwrap();
        doomed.push(oid);
    }

    std::thread::scope(|scope| {
        // Deleter: cross-segment frees, batch by batch.
        {
            let writer = shared.writer();
            let doomed = doomed.clone();
            scope.spawn(move || {
                for chunk in doomed.chunks(10) {
                    writer.delete_objects(chunk).unwrap();
                }
            });
        }
        // Same-stripe writers: keep creating/updating Students while the
        // deleter holds and releases the same segments' stripes.
        for t in 0..2 {
            let writer = shared.writer();
            scope.spawn(move || {
                for i in 0..100 {
                    let oid = writer
                        .create(
                            v,
                            "Student",
                            &[("name", Value::Str(format!("w{t}-{i}"))), ("gpa", Value::Int(i))],
                        )
                        .unwrap();
                    writer.set(v, oid, "Student", &[("gpa", Value::Int(i + 1))]).unwrap();
                }
            });
        }
    });

    // Every doomed object is gone; every late create survived.
    let session = shared.session();
    assert_eq!(session.extent(v, "Student").unwrap().len(), 200);
    assert_eq!(session.select_where(v, "Student", "gpa >= 1").unwrap().len(), 200);
}

#[test]
fn fork_mid_write_batch_sees_all_or_none() {
    // A write batch = one WriteSession operation (here: one `update_where`
    // touching every object). The swap latch makes fork–evolve–swap wait
    // out in-flight batches and blocks new ones until the swap, so no
    // batch can half-land in the forked successor. Evidence: after many
    // concurrent evolutions, the final state reflects the *last complete
    // batch* — nothing was lost at any swap, nothing tore.
    let (sys, oids, v) = build_two_level();
    let shared = SharedSystem::from_system(sys);
    const ROUNDS: i64 = 30;

    std::thread::scope(|scope| {
        {
            let writer = shared.writer();
            scope.spawn(move || {
                for k in 1..=ROUNDS {
                    let n = writer
                        .update_where(v, "Student", "age >= 0", &[("age", Value::Int(10_000 + k))])
                        .unwrap();
                    assert_eq!(n, 100);
                }
            });
        }
        {
            let shared = shared.clone();
            scope.spawn(move || {
                for i in 0..6 {
                    shared
                        .evolve_cmd("VS", &format!("add_attribute extra{i}: int to Student"))
                        .unwrap();
                }
            });
        }
    });

    // Uniform final state: every object carries the last batch's value. A
    // swap that dropped half a batch would leave a mix of round values.
    let session = shared.session();
    for oid in &oids {
        assert_eq!(
            session.get(v, *oid, "Student", "age").unwrap(),
            Value::Int(10_000 + ROUNDS),
            "write batch torn across an epoch swap"
        );
    }
    // Each evolve forks copy-free: the shared fork never quiesces the
    // stripes for a physical copy, and the version chains it layered on
    // the live store are observable as the `mvcc.versions` gauge.
    let snap = shared.telemetry().snapshot();
    assert!(
        snap.counters.contains_key("mvcc.versions"),
        "mvcc.versions gauge missing from telemetry"
    );
}

#[test]
fn read_session_pinned_mid_batch_sees_all_or_none() {
    // A ReadSession opened while an `update_where` batch is installing
    // must observe the pre-batch state or the whole batch — never a mix.
    // The batch's write ticket holds the stable epoch below its stamp
    // until every record version is installed, so no session can pin an
    // epoch that straddles it.
    let (sys, oids, v) = build();
    let shared = SharedSystem::from_system(sys);
    // Uniform starting state so a torn snapshot is detectable as a mix.
    shared
        .writer()
        .update_where(v, "Person", "age >= 0", &[("age", Value::Int(10_000))])
        .unwrap();
    const ROUNDS: i64 = 25;
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        {
            let writer = shared.writer();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                for k in 1..=ROUNDS {
                    let n = writer
                        .update_where(v, "Person", "age >= 0", &[("age", Value::Int(10_000 + k))])
                        .unwrap();
                    assert_eq!(n, 200);
                }
                stop.store(true, Ordering::Release);
            });
        }
        for _ in 0..4 {
            let shared = shared.clone();
            let oids = oids.clone();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let session = shared.session();
                    let first = session.get(v, oids[0], "Person", "age").unwrap();
                    for oid in &oids {
                        let age = session.get(v, *oid, "Person", "age").unwrap();
                        assert_eq!(age, first, "session observed a half-installed batch");
                    }
                    // Repeatable: re-reading under the same session returns
                    // the same value even though the writer has moved on.
                    assert_eq!(session.get(v, oids[0], "Person", "age").unwrap(), first);
                }
            });
        }
    });

    let session = shared.session();
    assert_eq!(session.get(v, oids[7], "Person", "age").unwrap(), Value::Int(10_000 + ROUNDS));
}

#[test]
fn session_spanning_evolve_swap_keeps_pre_swap_state_until_drop() {
    // A session pinned before a write burst and an evolution swap keeps
    // answering from its pinned epoch for its whole lifetime: the original
    // extent, the original attribute values, no late creates, no deletes.
    // Only a session opened (or refreshed) after the swap sees the new
    // world.
    let (sys, oids, v) = build();
    let shared = SharedSystem::from_system(sys);
    let session = shared.session(); // pinned before everything below

    let writer = shared.writer();
    let mut created = Vec::new();
    for i in 0..50 {
        created.push(
            writer
                .create(
                    v,
                    "Person",
                    &[("name", Value::Str(format!("late{i}"))), ("age", Value::Int(1000 + i))],
                )
                .unwrap(),
        );
    }
    writer.delete_objects(&oids[..20]).unwrap();
    writer.update_where(v, "Person", "age >= 0", &[("age", Value::Int(7777))]).unwrap();
    shared.evolve_cmd("VS", "add_attribute extra: int to Person").unwrap();

    let extent = session.extent(v, "Person").unwrap();
    assert_eq!(extent.len(), 200, "pre-swap extent changed under a pinned session");
    assert!(created.iter().all(|c| !extent.contains(c)), "late create leaked into pinned session");
    assert_eq!(session.get(v, oids[0], "Person", "age").unwrap(), Value::Int(0));
    assert_eq!(session.get(v, oids[150], "Person", "age").unwrap(), Value::Int(150));
    assert_eq!(session.select_where(v, "Person", "age >= 100").unwrap().len(), 100);
    drop(session);

    // A fresh session observes everything: 200 − 20 + 50 objects, the
    // uniform update, and the deletions.
    let session = shared.session();
    let extent = session.extent(v, "Person").unwrap();
    assert_eq!(extent.len(), 230);
    assert!(session.get(v, oids[0], "Person", "age").is_err(), "deleted object resurrected");
    assert_eq!(session.get(v, oids[150], "Person", "age").unwrap(), Value::Int(7777));
}
