//! Cross-version interoperability invariants (§2.3): "both old and new
//! versions of a schema must be able to share the same (persistent) data,
//! independently from through which schema they were originally created."
//!
//! After arbitrary evolution traces, every registered view version must
//! remain fully operational over the one shared object population.

use proptest::prelude::*;

use tse::core::TseSystem;
use tse::object_model::Value;
use tse::workload::trace::{generate_and_apply_trace, TraceMix};

/// A mix without hierarchy surgery: under it, class extents are invariant
/// across versions (edge ops legitimately reshape extents).
fn content_mix() -> TraceMix {
    TraceMix { add_edge: 0, delete_edge: 0, ..TraceMix::default() }
}
use tse::workload::university::build_university;

fn setup() -> (TseSystem, Vec<tse::object_model::Oid>) {
    let (mut tse, _) = build_university().unwrap();
    tse.create_view("dev", &["Person", "Student", "Staff", "TeachingStaff"]).unwrap();
    let v1 = tse.views().versions("dev").unwrap()[0];
    let mut oids = Vec::new();
    for i in 0..20 {
        let class = ["Person", "Student", "Staff"][i % 3];
        oids.push(
            tse.create(v1, class, &[("name", Value::Str(format!("p{i}")))]).unwrap(),
        );
    }
    (tse, oids)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn every_version_stays_operational_after_traces(seed in 0u64..500, n in 1usize..12) {
        let (mut tse, oids) = setup();
        generate_and_apply_trace(&mut tse, "dev", n, &content_mix(), seed).unwrap();

        let versions = tse.views().versions("dev").unwrap().to_vec();
        prop_assert_eq!(versions.len(), n + 1);
        for vid in versions {
            // The root class of the evolving view keeps answering extent and
            // attribute queries in every version.
            let view = tse.view(vid).unwrap();
            // Person is never deleted by the generator's mix (only added
            // classes are deleted), so it is in every version.
            let person = view.lookup(tse.db(), "Person");
            prop_assert!(person.is_ok(), "Person present in every version");
            let ext = tse.extent(vid, "Person").unwrap();
            prop_assert_eq!(ext.len(), oids.len(), "all objects visible in every version");
            prop_assert_eq!(
                tse.get(vid, oids[0], "Person", "name").unwrap(),
                Value::Str("p0".into())
            );
        }
    }

    #[test]
    fn writes_flow_between_any_two_versions(seed in 0u64..200, n in 1usize..8) {
        let (mut tse, oids) = setup();
        generate_and_apply_trace(&mut tse, "dev", n, &content_mix(), seed).unwrap();
        let versions = tse.views().versions("dev").unwrap().to_vec();
        let first = versions[0];
        let last = *versions.last().unwrap();
        // Write through the newest version; read through the oldest.
        tse.set(last, oids[0], "Person", &[("age", Value::Int(33))]).unwrap();
        prop_assert_eq!(tse.get(first, oids[0], "Person", "age").unwrap(), Value::Int(33));
        // And the other way round.
        tse.set(first, oids[1], "Person", &[("age", Value::Int(44))]).unwrap();
        prop_assert_eq!(tse.get(last, oids[1], "Person", "age").unwrap(), Value::Int(44));
        // Objects created under the newest version are visible in the first.
        let newcomer = tse.create(last, "Person", &[("name", "new".into())]).unwrap();
        prop_assert!(tse.extent(first, "Person").unwrap().contains(&newcomer));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// With the *full* mix (including hierarchy surgery), extents may change
    /// across versions — but every object survives and the oldest version
    /// keeps answering.
    #[test]
    fn objects_survive_full_mix_traces(seed in 0u64..200, n in 1usize..10) {
        let (mut tse, oids) = setup();
        generate_and_apply_trace(&mut tse, "dev", n, &TraceMix::default(), seed).unwrap();
        prop_assert_eq!(tse.db().object_count(), oids.len());
        let v1 = tse.views().versions("dev").unwrap()[0];
        prop_assert_eq!(
            tse.get(v1, oids[0], "Person", "name").unwrap(),
            Value::Str("p0".into())
        );
        prop_assert!(tse.views_unaffected_except("dev").unwrap());
    }
}

#[test]
fn deleted_attribute_data_survives_for_old_versions() {
    let (mut tse, oids) = setup();
    let v1 = tse.views().versions("dev").unwrap()[0];
    let student = oids[1]; // created as Student
    tse.set(v1, student, "Student", &[("gpa", Value::Float(3.7))]).unwrap();
    let v2 = tse.evolve_cmd("dev", "delete_attribute gpa from Student").unwrap().view;
    // Invisible through v2, alive through v1 — "the attributes to be deleted
    // are not removed from the underlying global schema".
    assert!(tse.get(v2, student, "Student", "gpa").is_err());
    assert_eq!(tse.get(v1, student, "Student", "gpa").unwrap(), Value::Float(3.7));
    // Still writable through the old version.
    tse.set(v1, student, "Student", &[("gpa", Value::Float(4.0))]).unwrap();
    assert_eq!(tse.get(v1, student, "Student", "gpa").unwrap(), Value::Float(4.0));
}
