//! Long-haul stress: hundreds of schema changes, snapshot round-trips at
//! checkpoints, every version probed. Run with `--release` (it is in the
//! default suite; sizes are tuned to stay in CI budgets).

use tse::core::TseSystem;
use tse::object_model::Value;
use tse::workload::trace::{generate_and_apply_trace, TraceMix};
use tse::workload::university::{build_university, populate_university};

#[test]
fn two_hundred_changes_with_snapshot_checkpoints() {
    let (mut tse, _) = build_university().unwrap();
    tse.create_view("dev", &["Person", "Student", "Staff", "TeachingStaff", "SupportStaff"])
        .unwrap();
    tse.create_view("obs", &["Person", "Grad"]).unwrap();
    let loader = tse.create_view_all("loader").unwrap();
    let oids = populate_university(&mut tse, loader, 100).unwrap();

    let chunks = if cfg!(debug_assertions) { 2 } else { 8 };
    let per_chunk = 25;
    for chunk in 0..chunks {
        generate_and_apply_trace(&mut tse, "dev", per_chunk, &TraceMix::default(), 1000 + chunk)
            .unwrap();
        // Checkpoint: snapshot, restore, and keep going with the restored
        // system.
        let restored = TseSystem::decode(tse.encode()).unwrap();
        tse = restored;
        // Invariants at every checkpoint.
        assert!(tse.views_unaffected_except("dev").unwrap());
        assert_eq!(tse.db().object_count(), oids.len());
        let v1 = tse.views().versions("dev").unwrap()[0];
        assert_eq!(
            tse.get(v1, oids[0], "Person", "name").unwrap(),
            Value::Str("p0".into())
        );
    }
    let versions = tse.views().versions("dev").unwrap().len();
    assert_eq!(versions, chunks as usize * per_chunk + 1);

    // Spot-probe a spread of historical versions.
    let all = tse.views().versions("dev").unwrap().to_vec();
    for idx in [0, all.len() / 3, 2 * all.len() / 3, all.len() - 1] {
        let vid = all[idx];
        let view = tse.view(vid).unwrap();
        let person = view.lookup(tse.db(), "Person");
        assert!(person.is_ok(), "version {idx} lost Person");
        assert!(tse.get(vid, oids[1], "Person", "name").is_ok());
    }
}

#[test]
fn wide_random_schema_absorbs_changes() {
    use tse::workload::random::{random_schema, RandomSchemaParams};
    let r = random_schema(&RandomSchemaParams {
        classes: 24,
        max_supers: 3,
        props_per_class: 3,
        objects: 150,
        seed: 99,
    })
    .unwrap();
    let mut tse = r.tse;
    let n = if cfg!(debug_assertions) { 10 } else { 40 };
    generate_and_apply_trace(&mut tse, "R", n, &TraceMix::default(), 4242).unwrap();
    assert_eq!(tse.db().object_count(), 150);
    assert_eq!(tse.views().versions("R").unwrap().len(), n + 1);
    // Full persistence round-trip of the big state.
    let restored = TseSystem::decode(tse.encode()).unwrap();
    assert_eq!(restored.views().view_count(), tse.views().view_count());
    assert_eq!(restored.db().object_count(), 150);
}
