//! Synthetic schema shapes for the benchmark parameter sweeps.

use tse_core::TseSystem;
use tse_object_model::{ModelResult, PropertyDef, Value, ValueType};

/// A linear inheritance chain `L0 ← L1 ← … ← L{depth-1}`, each class with
/// one local int attribute `a{i}`. Used by the subschema-evolution sweep and
/// the inherited-attribute-access measurements (hop count grows with depth).
pub fn build_chain(tse: &mut TseSystem, depth: usize) -> ModelResult<Vec<String>> {
    let mut names: Vec<String> = Vec::with_capacity(depth);
    for i in 0..depth {
        let name = format!("L{i}");
        let supers: Vec<&str> =
            if i == 0 { vec![] } else { vec![names[i - 1].as_str()] };
        tse.define_base_class(
            &name,
            &supers,
            vec![PropertyDef::stored(&format!("a{i}"), ValueType::Int, Value::Int(0))],
        )?;
        names.push(name);
    }
    Ok(names)
}

/// A flat fan: one root `F` with `width` direct subclasses `F0..`, each with
/// one local attribute. Used for wide-view priming sweeps.
pub fn build_fan(tse: &mut TseSystem, width: usize) -> ModelResult<Vec<String>> {
    tse.define_base_class(
        "F",
        &[],
        vec![PropertyDef::stored("root_attr", ValueType::Int, Value::Int(0))],
    )?;
    let mut names = vec!["F".to_string()];
    for i in 0..width {
        let name = format!("F{i}");
        tse.define_base_class(
            &name,
            &["F"],
            vec![PropertyDef::stored(&format!("f{i}"), ValueType::Int, Value::Int(0))],
        )?;
        names.push(name);
    }
    Ok(names)
}

/// `mixins` independent classes under a common base — the shape that makes
/// the intersection-class approach explode combinatorially (Table 1's
/// `#classes` row: up to `2^N_class`).
pub fn build_mixins(tse: &mut TseSystem, mixins: usize) -> ModelResult<Vec<String>> {
    tse.define_base_class("Base", &[], vec![])?;
    let mut names = vec!["Base".to_string()];
    for i in 0..mixins {
        let name = format!("M{i}");
        tse.define_base_class(
            &name,
            &["Base"],
            vec![PropertyDef::stored(&format!("m{i}"), ValueType::Int, Value::Int(0))],
        )?;
        names.push(name);
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_depth_and_inheritance() {
        let mut tse = TseSystem::new();
        let names = build_chain(&mut tse, 6).unwrap();
        assert_eq!(names.len(), 6);
        let bottom = tse.db().schema().by_name("L5").unwrap();
        let top = tse.db().schema().by_name("L0").unwrap();
        assert!(tse.db().schema().is_sub_of(bottom, top));
        assert_eq!(tse.db().schema().up_distance(bottom, top), Some(5));
        assert_eq!(tse.db().schema().resolved_type(bottom).unwrap().len(), 6);
    }

    #[test]
    fn fan_width() {
        let mut tse = TseSystem::new();
        let names = build_fan(&mut tse, 8).unwrap();
        assert_eq!(names.len(), 9);
        let root = tse.db().schema().by_name("F").unwrap();
        assert_eq!(tse.db().schema().class(root).unwrap().direct_subs().len(), 8);
    }

    #[test]
    fn mixins_are_independent() {
        let mut tse = TseSystem::new();
        build_mixins(&mut tse, 4).unwrap();
        let m0 = tse.db().schema().by_name("M0").unwrap();
        let m1 = tse.db().schema().by_name("M1").unwrap();
        assert!(!tse.db().schema().is_sub_of(m0, m1));
        assert!(!tse.db().schema().is_sub_of(m1, m0));
    }
}
