//! The university database of Figure 2, and the schemas of the other
//! figures, as reusable builders.

use tse_core::TseSystem;
use tse_object_model::{ClassId, ModelResult, Oid, PropertyDef, Value, ValueType};
use tse_view::ViewId;

/// Handles into the university schema (Figure 2).
#[derive(Debug, Clone)]
pub struct University {
    /// `Person(name, age)`.
    pub person: ClassId,
    /// `Student(gpa)` under Person.
    pub student: ClassId,
    /// `Staff(salary)` under Person.
    pub staff: ClassId,
    /// `TeachingStaff(lecture)` under Staff.
    pub teaching_staff: ClassId,
    /// `SupportStaff(boss)` under Staff.
    pub support_staff: ClassId,
    /// `TA` under Student and TeachingStaff.
    pub ta: ClassId,
    /// `Grader` under TA.
    pub grader: ClassId,
    /// `Grad` under Student.
    pub grad: ClassId,
    /// `Undergrad` under Student.
    pub undergrad: ClassId,
}

/// Build the full university schema of Figure 2 into a fresh [`TseSystem`].
pub fn build_university() -> ModelResult<(TseSystem, University)> {
    let mut tse = TseSystem::new();
    let person = tse.define_base_class(
        "Person",
        &[],
        vec![
            PropertyDef::stored("name", ValueType::Str, Value::Null),
            PropertyDef::stored("age", ValueType::Int, Value::Int(0)),
        ],
    )?;
    let student = tse.define_base_class(
        "Student",
        &["Person"],
        vec![PropertyDef::stored("gpa", ValueType::Float, Value::Float(0.0))],
    )?;
    let staff = tse.define_base_class(
        "Staff",
        &["Person"],
        vec![PropertyDef::stored("salary", ValueType::Int, Value::Int(0))],
    )?;
    let teaching_staff = tse.define_base_class(
        "TeachingStaff",
        &["Staff"],
        vec![PropertyDef::stored("lecture", ValueType::Str, Value::Null)],
    )?;
    let support_staff = tse.define_base_class(
        "SupportStaff",
        &["Staff"],
        vec![PropertyDef::stored("boss", ValueType::Str, Value::Null)],
    )?;
    let ta = tse.define_base_class("TA", &["Student", "TeachingStaff"], vec![])?;
    let grader = tse.define_base_class("Grader", &["TA"], vec![])?;
    let grad = tse.define_base_class("Grad", &["Student"], vec![])?;
    let undergrad = tse.define_base_class("Undergrad", &["Student"], vec![])?;
    Ok((
        tse,
        University {
            person,
            student,
            staff,
            teaching_staff,
            support_staff,
            ta,
            grader,
            grad,
            undergrad,
        },
    ))
}

/// Populate a university system with `n` people spread across the classes
/// (deterministic round-robin; attribute values derived from the index).
pub fn populate_university(
    tse: &mut TseSystem,
    view: ViewId,
    n: usize,
) -> ModelResult<Vec<Oid>> {
    let classes = ["Person", "Student", "Staff", "TeachingStaff", "SupportStaff", "TA", "Grad", "Undergrad", "Grader"];
    let mut oids = Vec::with_capacity(n);
    for i in 0..n {
        let class = classes[i % classes.len()];
        let oid = tse.create(
            view,
            class,
            &[
                ("name", Value::Str(format!("p{i}"))),
                ("age", Value::Int(18 + (i as i64 % 50))),
            ],
        )?;
        oids.push(oid);
    }
    Ok(oids)
}

/// The car schema of Figure 5 (for multiple-classification demos).
pub fn build_cars() -> ModelResult<(TseSystem, ClassId, ClassId, ClassId)> {
    let mut tse = TseSystem::new();
    let car = tse.define_base_class(
        "Car",
        &[],
        vec![PropertyDef::stored("model", ValueType::Str, Value::Null)],
    )?;
    let jeep = tse.define_base_class(
        "Jeep",
        &["Car"],
        vec![PropertyDef::stored("clearance", ValueType::Int, Value::Int(0))],
    )?;
    let imported = tse.define_base_class(
        "Imported",
        &["Car"],
        vec![PropertyDef::stored("nation", ValueType::Str, Value::Null)],
    )?;
    Ok((tse, car, jeep, imported))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn university_schema_matches_figure_2() {
        let (tse, u) = build_university().unwrap();
        let s = tse.db().schema();
        assert!(s.is_sub_of(u.ta, u.student));
        assert!(s.is_sub_of(u.ta, u.teaching_staff));
        assert!(s.is_sub_of(u.grader, u.person));
        assert!(s.is_sub_of(u.support_staff, u.staff));
        // TA inherits from both sides of the diamond.
        let t = s.resolved_type(u.ta).unwrap();
        assert!(t.contains_name("gpa"));
        assert!(t.contains_name("lecture"));
        assert!(t.contains_name("salary"));
        assert!(t.contains_name("name"));
    }

    #[test]
    fn population_is_deterministic_and_typed() {
        let (mut tse, u) = build_university().unwrap();
        let v = tse.create_view_all("ALL").unwrap();
        let oids = populate_university(&mut tse, v, 30).unwrap();
        assert_eq!(oids.len(), 30);
        assert_eq!(tse.db().extent(u.person).unwrap().len(), 30);
        assert_eq!(
            tse.get(v, oids[0], "Person", "name").unwrap(),
            Value::Str("p0".into())
        );
        // Round-robin: index 5 is a TA.
        assert!(tse.db().is_member(oids[5], u.ta).unwrap());
    }

    #[test]
    fn car_schema_builds() {
        let (tse, car, jeep, imported) = build_cars().unwrap();
        assert!(tse.db().schema().is_sub_of(jeep, car));
        assert!(tse.db().schema().is_sub_of(imported, car));
        assert!(!tse.db().schema().is_sub_of(jeep, imported));
    }
}
