//! Random schema and population generators (seeded, reproducible).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tse_core::TseSystem;
use tse_object_model::{ModelResult, Oid, PropertyDef, Value, ValueType};
use tse_view::ViewId;

/// Parameters for random schema generation.
#[derive(Debug, Clone)]
pub struct RandomSchemaParams {
    /// Number of classes (excluding the root).
    pub classes: usize,
    /// Maximum direct superclasses per class (≥1; >1 yields multiple
    /// inheritance).
    pub max_supers: usize,
    /// Properties defined locally per class (names are globally unique, so
    /// generated schemas never exercise the ambiguity corner unless asked).
    pub props_per_class: usize,
    /// Objects to create.
    pub objects: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSchemaParams {
    fn default() -> Self {
        RandomSchemaParams { classes: 12, max_supers: 2, props_per_class: 2, objects: 50, seed: 7 }
    }
}

/// A generated random schema inside a [`TseSystem`], with a view over all of
/// its classes.
pub struct RandomSchema {
    /// The system.
    pub tse: TseSystem,
    /// Global class names, in creation order (class `i` may only inherit
    /// from classes `< i`, guaranteeing a DAG).
    pub class_names: Vec<String>,
    /// Per class: locally defined property names.
    pub props: Vec<Vec<String>>,
    /// The all-classes view.
    pub view: ViewId,
    /// Created objects.
    pub oids: Vec<Oid>,
}

/// Generate a random schema + population.
pub fn random_schema(params: &RandomSchemaParams) -> ModelResult<RandomSchema> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut tse = TseSystem::new();
    let mut class_names: Vec<String> = Vec::with_capacity(params.classes);
    let mut props: Vec<Vec<String>> = Vec::with_capacity(params.classes);
    let mut prop_counter = 0usize;

    for i in 0..params.classes {
        let name = format!("C{i}");
        let n_supers = if i == 0 { 0 } else { rng.gen_range(1..=params.max_supers.min(i)) };
        let mut supers: Vec<usize> = Vec::new();
        while supers.len() < n_supers {
            let s = rng.gen_range(0..i);
            if !supers.contains(&s) {
                supers.push(s);
            }
        }
        let super_names: Vec<&str> = supers.iter().map(|s| class_names[*s].as_str()).collect();
        let mut local_props = Vec::new();
        let mut defs = Vec::new();
        for _ in 0..params.props_per_class {
            let pname = format!("p{prop_counter}");
            prop_counter += 1;
            let def = match rng.gen_range(0..3) {
                0 => PropertyDef::stored(&pname, ValueType::Int, Value::Int(0)),
                1 => PropertyDef::stored(&pname, ValueType::Str, Value::Null),
                _ => PropertyDef::stored(&pname, ValueType::Float, Value::Float(0.0)),
            };
            defs.push(def);
            local_props.push(pname);
        }
        tse.define_base_class(&name, &super_names, defs)?;
        class_names.push(name);
        props.push(local_props);
    }

    let view = tse.create_view_all("R")?;
    let mut oids = Vec::with_capacity(params.objects);
    for _ in 0..params.objects {
        let class = &class_names[rng.gen_range(0..class_names.len())];
        let oid = tse.create(view, class, &[])?;
        oids.push(oid);
    }
    Ok(RandomSchema { tse, class_names, props, view, oids })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible() {
        let a = random_schema(&RandomSchemaParams::default()).unwrap();
        let b = random_schema(&RandomSchemaParams::default()).unwrap();
        assert_eq!(a.class_names, b.class_names);
        assert_eq!(a.props, b.props);
        assert_eq!(a.oids.len(), b.oids.len());
        let ca = a.tse.db().schema().class_count();
        let cb = b.tse.db().schema().class_count();
        assert_eq!(ca, cb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_schema(&RandomSchemaParams::default()).unwrap();
        let b = random_schema(&RandomSchemaParams {
            seed: 8,
            ..RandomSchemaParams::default()
        })
        .unwrap();
        // Same class names (deterministic), but structure/extents differ in
        // general; check extent distribution differs.
        let ext_a = a.tse.db().extent(a.tse.db().schema().by_name("C0").unwrap()).unwrap().len();
        let ext_b = b.tse.db().extent(b.tse.db().schema().by_name("C0").unwrap()).unwrap().len();
        // (This could coincide; the class graph differing is the robust check.)
        let sup_a: Vec<_> = a
            .class_names
            .iter()
            .map(|n| {
                let id = a.tse.db().schema().by_name(n).unwrap();
                a.tse.db().schema().class(id).unwrap().direct_supers().to_vec()
            })
            .collect();
        let sup_b: Vec<_> = b
            .class_names
            .iter()
            .map(|n| {
                let id = b.tse.db().schema().by_name(n).unwrap();
                b.tse.db().schema().class(id).unwrap().direct_supers().to_vec()
            })
            .collect();
        assert!(sup_a != sup_b || ext_a != ext_b);
    }

    #[test]
    fn generated_schema_is_usable_for_evolution() {
        let mut r = random_schema(&RandomSchemaParams {
            classes: 6,
            objects: 10,
            ..RandomSchemaParams::default()
        })
        .unwrap();
        let report = r.tse.evolve_cmd("R", "add_attribute extra: int to C3").unwrap();
        assert!(report.classes_touched >= 1);
        assert!(r.tse.views_unaffected_except("R").unwrap());
    }
}
