//! # tse-workload — workloads for the TSE reproduction
//!
//! Builders for the paper's example schemas (the Figure 2 university
//! database, the Figure 5 car schema), synthetic shapes for the benchmark
//! sweeps (chains, fans, mixins), seeded random schemas, and schema-evolution
//! traces shaped after the field studies the paper cites (Sjøberg; Marche).

#![warn(missing_docs)]

pub mod random;
pub mod shapes;
pub mod trace;
pub mod university;

pub use random::{random_schema, RandomSchema, RandomSchemaParams};
pub use shapes::{build_chain, build_fan, build_mixins};
pub use trace::{generate_and_apply_trace, Trace, TraceMix};
pub use university::{build_cars, build_university, populate_university, University};
