//! Schema-evolution trace generation.
//!
//! The paper motivates TSE with two field studies: Sjøberg's 18-month health
//! management system observation (relations +139%, attributes +274%, every
//! relation changed) and Marche's seven-application study (~59% of attributes
//! changed on average). This module generates random-but-representative
//! change sequences with an operator mix skewed the same way: attribute
//! additions dominate, deletions and hierarchy surgery are rarer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tse_core::{SchemaChange, TseSystem};
use tse_object_model::{ModelResult, Value, ValueType};

/// Operator mix for trace generation (weights need not sum to anything).
#[derive(Debug, Clone)]
pub struct TraceMix {
    /// Weight of `add_attribute`.
    pub add_attribute: u32,
    /// Weight of `delete_attribute` (of a previously added attribute).
    pub delete_attribute: u32,
    /// Weight of `add_method`.
    pub add_method: u32,
    /// Weight of `add_class` (leaf, under a random class).
    pub add_class: u32,
    /// Weight of `delete_class` (drop a previously added leaf from view).
    pub delete_class: u32,
    /// Weight of `add_edge` (random non-ancestor pair).
    pub add_edge: u32,
    /// Weight of `delete_edge` (random direct view edge).
    pub delete_edge: u32,
}

impl Default for TraceMix {
    fn default() -> Self {
        // Shaped after Sjøberg's observation: attribute growth dominates
        // (274% attribute growth vs 139% relation growth), deletions exist
        // but are a minority of changes; hierarchy surgery is rare.
        TraceMix {
            add_attribute: 10,
            delete_attribute: 3,
            add_method: 2,
            add_class: 3,
            delete_class: 1,
            add_edge: 1,
            delete_edge: 1,
        }
    }
}

/// A generated schema-change trace (textual commands, replayable).
#[derive(Debug, Clone)]
pub struct Trace {
    /// The change sequence, in order.
    pub changes: Vec<SchemaChange>,
}

/// Generate a trace of `n` changes against the classes visible in view
/// family `family` of `tse`. The trace is *applied* as it is generated (each
/// change must be valid against the evolving view) — the returned trace
/// replays verbatim on an identical starting system.
pub fn generate_and_apply_trace(
    tse: &mut TseSystem,
    family: &str,
    n: usize,
    mix: &TraceMix,
    seed: u64,
) -> ModelResult<Trace> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut changes = Vec::with_capacity(n);
    // Attributes we added (eligible for deletion), classes we added.
    let mut added_attrs: Vec<(String, String)> = Vec::new();
    let mut added_classes: Vec<String> = Vec::new();
    let mut counter = 0usize;

    let total = mix.add_attribute
        + mix.delete_attribute
        + mix.add_method
        + mix.add_class
        + mix.delete_class
        + mix.add_edge
        + mix.delete_edge;
    while changes.len() < n {
        let view = tse.current_view(family)?.clone();
        let class_names: Vec<String> = view
            .classes
            .iter()
            .map(|c| view.local_name(tse.db(), *c))
            .collect::<ModelResult<_>>()?;
        let pick_class = |rng: &mut StdRng| class_names[rng.gen_range(0..class_names.len())].clone();

        let roll = rng.gen_range(0..total);
        let change = if roll < mix.add_attribute {
            counter += 1;
            let class = pick_class(&mut rng);
            let name = format!("attr_{counter}");
            added_attrs.push((class.clone(), name.clone()));
            SchemaChange::AddAttribute {
                class,
                name,
                vtype: ValueType::Int,
                default: Value::Int(0),
                required: false,
            }
        } else if roll < mix.add_attribute + mix.delete_attribute {
            match added_attrs.pop() {
                Some((class, name)) if class_names.contains(&class) => {
                    SchemaChange::DeleteAttribute { class, name }
                }
                _ => continue,
            }
        } else if roll < mix.add_attribute + mix.delete_attribute + mix.add_method {
            counter += 1;
            let class = pick_class(&mut rng);
            SchemaChange::AddMethod {
                class,
                name: format!("m_{counter}"),
                vtype: ValueType::Int,
                body: tse_object_model::MethodBody::Const(Value::Int(counter as i64)),
            }
        } else if roll < mix.add_attribute + mix.delete_attribute + mix.add_method + mix.add_class
        {
            counter += 1;
            let name = format!("K{counter}");
            added_classes.push(name.clone());
            SchemaChange::AddClass { name, connected_to: Some(pick_class(&mut rng)) }
        } else if roll
            < mix.add_attribute + mix.delete_attribute + mix.add_method + mix.add_class + mix.delete_class
        {
            match added_classes.pop() {
                Some(class) if class_names.contains(&class) => {
                    SchemaChange::DeleteClass { class }
                }
                _ => continue,
            }
        } else if roll
            < mix.add_attribute
                + mix.delete_attribute
                + mix.add_method
                + mix.add_class
                + mix.delete_class
                + mix.add_edge
        {
            let sup = pick_class(&mut rng);
            let sub = pick_class(&mut rng);
            SchemaChange::AddEdge { sup, sub }
        } else {
            if view.edges.is_empty() {
                continue;
            }
            let (sup, sub) = view.edges[rng.gen_range(0..view.edges.len())];
            SchemaChange::DeleteEdge {
                sup: view.local_name(tse.db(), sup)?,
                sub: view.local_name(tse.db(), sub)?,
                connected_to: None,
            }
        };
        match tse.evolve(family, &change) {
            Ok(_) => changes.push(change),
            // Occasional invalid drafts (duplicate attribute names after
            // deletes, etc.) are simply skipped — the trace only records
            // applied changes.
            Err(_) => continue,
        }
    }
    Ok(Trace { changes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::university::build_university;

    #[test]
    fn traces_apply_and_grow_the_schema() {
        let (mut tse, _) = build_university().unwrap();
        tse.create_view("U", &["Person", "Student", "Staff"]).unwrap();
        let before = tse.db().schema().live_class_count();
        let trace =
            generate_and_apply_trace(&mut tse, "U", 15, &TraceMix::default(), 42).unwrap();
        assert_eq!(trace.changes.len(), 15);
        assert!(tse.db().schema().live_class_count() > before);
        assert_eq!(tse.views().versions("U").unwrap().len(), 16, "one version per change");
    }

    #[test]
    fn traces_are_reproducible() {
        let (mut a, _) = build_university().unwrap();
        a.create_view("U", &["Person", "Student"]).unwrap();
        let ta = generate_and_apply_trace(&mut a, "U", 10, &TraceMix::default(), 5).unwrap();
        let (mut b, _) = build_university().unwrap();
        b.create_view("U", &["Person", "Student"]).unwrap();
        let tb = generate_and_apply_trace(&mut b, "U", 10, &TraceMix::default(), 5).unwrap();
        assert_eq!(ta.changes, tb.changes);
    }

    #[test]
    fn mix_shapes_the_trace() {
        let (mut tse, _) = build_university().unwrap();
        tse.create_view("U", &["Person", "Student"]).unwrap();
        let only_attrs = TraceMix {
            add_attribute: 1,
            delete_attribute: 0,
            add_method: 0,
            add_class: 0,
            delete_class: 0,
            add_edge: 0,
            delete_edge: 0,
        };
        let trace = generate_and_apply_trace(&mut tse, "U", 8, &only_attrs, 1).unwrap();
        assert!(trace
            .changes
            .iter()
            .all(|c| matches!(c, SchemaChange::AddAttribute { .. })));
    }

    #[test]
    fn other_views_survive_a_whole_trace() {
        let (mut tse, _) = build_university().unwrap();
        tse.create_view("U", &["Person", "Student", "Staff"]).unwrap();
        tse.create_view("Obs", &["Person", "TA", "Grad"]).unwrap();
        generate_and_apply_trace(&mut tse, "U", 20, &TraceMix::default(), 9).unwrap();
        assert!(tse.views_unaffected_except("U").unwrap());
    }
}
