//! Hierarchical spans with RAII timing guards — **per-thread** contexts.
//!
//! A [`SpanGuard`] opens on [`Telemetry::span`] and closes on drop (or
//! explicit [`SpanGuard::finish`]); closing appends a [`JournalRecord::Span`]
//! to the journal, records the duration into the `span.<name>` histogram,
//! and bumps the `span.<name>.count` counter.
//!
//! Spans nest per thread: the guard opened most recently *on the same
//! thread* (and not yet closed) is the parent of the next one — concurrent
//! threads never see each other's stacks, so parentage cannot be
//! misattributed and closing a span can never discard another thread's open
//! spans. Cross-thread causality is explicit: a span opened under an
//! adopted trace ([`Telemetry::adopt`]) with no same-thread parent carries a
//! `follows_from` link to the span captured at handoff.

use std::time::{Duration, Instant};

use crate::json::JsonValue;
use crate::Telemetry;

/// Clamp a duration to a nonzero nanosecond count (sub-nanosecond work
/// rounds up to 1 so "this phase ran" is always visible in the journal).
pub(crate) fn nonzero_ns(d: Duration) -> u64 {
    (d.as_nanos() as u64).max(1)
}

/// An open span on one thread's stack.
pub(crate) struct OpenSpan {
    pub(crate) id: u64,
    pub(crate) parent: Option<u64>,
    pub(crate) trace: Option<u64>,
    pub(crate) follows_from: Option<u64>,
    pub(crate) name: String,
    pub(crate) start_ns: u64,
    pub(crate) started: Instant,
    pub(crate) fields: Vec<(String, JsonValue)>,
}

/// One record of the event journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A closed span.
    Span {
        /// Span id (unique within the domain, 1-based).
        id: u64,
        /// Enclosing span id — always a span of the **same thread** and
        /// trace; cross-thread causality uses `follows_from` instead.
        parent: Option<u64>,
        /// Trace this span belongs to (the trace active on its thread when
        /// it opened), if any.
        trace: Option<u64>,
        /// Dense id of the thread that opened the span (1-based, stable for
        /// the thread's lifetime within the domain).
        tid: u64,
        /// Span (possibly on another thread) this span causally follows,
        /// set on root spans of an adopted trace context.
        follows_from: Option<u64>,
        /// Span name, e.g. `evolve.translate`.
        name: String,
        /// Nesting depth on its thread at open time (0 = root).
        depth: u32,
        /// Start offset from the telemetry epoch, nanoseconds.
        start_ns: u64,
        /// Wall-clock duration, nanoseconds (≥ 1).
        dur_ns: u64,
        /// Attached key/value fields.
        fields: Vec<(String, JsonValue)>,
    },
    /// A point event.
    Event {
        /// Event name.
        name: String,
        /// Offset from the telemetry epoch, nanoseconds.
        at_ns: u64,
        /// Enclosing span id on the emitting thread, if any.
        parent: Option<u64>,
        /// Trace active on the emitting thread, if any.
        trace: Option<u64>,
        /// Dense id of the emitting thread.
        tid: u64,
        /// Attached key/value fields.
        fields: Vec<(String, JsonValue)>,
    },
}

impl JournalRecord {
    /// Serialise to one JSON object.
    pub fn to_json(&self) -> JsonValue {
        match self {
            JournalRecord::Span {
                id,
                parent,
                trace,
                tid,
                follows_from,
                name,
                depth,
                start_ns,
                dur_ns,
                fields,
            } => {
                let mut pairs: Vec<(&str, JsonValue)> = vec![
                    ("kind", "span".into()),
                    ("id", (*id).into()),
                    (
                        "parent",
                        parent.map(JsonValue::U64).unwrap_or(JsonValue::Null),
                    ),
                    ("trace", trace.map(JsonValue::U64).unwrap_or(JsonValue::Null)),
                    ("tid", (*tid).into()),
                    ("name", name.as_str().into()),
                    ("depth", (*depth as u64).into()),
                    ("start_ns", (*start_ns).into()),
                    ("dur_ns", (*dur_ns).into()),
                ];
                if let Some(f) = follows_from {
                    pairs.push(("follows_from", (*f).into()));
                }
                if !fields.is_empty() {
                    pairs.push((
                        "fields",
                        JsonValue::Obj(fields.clone()),
                    ));
                }
                JsonValue::obj(pairs)
            }
            JournalRecord::Event { name, at_ns, parent, trace, tid, fields } => {
                let mut pairs: Vec<(&str, JsonValue)> = vec![
                    ("kind", "event".into()),
                    ("name", name.as_str().into()),
                    (
                        "parent",
                        parent.map(JsonValue::U64).unwrap_or(JsonValue::Null),
                    ),
                    ("trace", trace.map(JsonValue::U64).unwrap_or(JsonValue::Null)),
                    ("tid", (*tid).into()),
                    ("at_ns", (*at_ns).into()),
                ];
                if !fields.is_empty() {
                    pairs.push(("fields", JsonValue::Obj(fields.clone())));
                }
                JsonValue::obj(pairs)
            }
        }
    }

    /// The record's name (span or event).
    pub fn name(&self) -> &str {
        match self {
            JournalRecord::Span { name, .. } | JournalRecord::Event { name, .. } => name,
        }
    }

    /// The trace the record is stamped with, if any.
    pub fn trace(&self) -> Option<u64> {
        match self {
            JournalRecord::Span { trace, .. } | JournalRecord::Event { trace, .. } => *trace,
        }
    }

    /// The dense thread id the record was emitted from.
    pub fn tid(&self) -> u64 {
        match self {
            JournalRecord::Span { tid, .. } | JournalRecord::Event { tid, .. } => *tid,
        }
    }
}

/// RAII guard for one span; closes (journals + measures) on drop. The guard
/// may be finished from any thread — it always closes the span on the stack
/// of the thread that *opened* it.
#[must_use = "a span measures nothing unless held"]
pub struct SpanGuard {
    telemetry: Telemetry,
    id: u64,
    owner: std::thread::ThreadId,
    closed: bool,
}

impl Telemetry {
    /// Open a span nested under the calling thread's innermost open span.
    /// The returned guard closes it on drop.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_with(name, &[])
    }

    /// Open a nested span with initial fields.
    ///
    /// Parentage is per-thread and per-trace: the parent is the calling
    /// thread's innermost open span *when it belongs to the same trace
    /// scope*; otherwise the span is a root and — under an adopted trace —
    /// carries a `follows_from` link to the handed-off span.
    pub fn span_with(&self, name: &str, fields: &[(&str, JsonValue)]) -> SpanGuard {
        let start_ns = self.now_ns();
        let owner = std::thread::current().id();
        let mut st = self.inner.state.lock().unwrap();
        let id = st.next_span_id;
        st.next_span_id += 1;
        let ctx = st.ctx();
        let scope_trace = ctx.traces.last().map(|s| s.trace);
        let (parent, trace, follows_from) = match ctx.stack.last() {
            // Same-trace nesting (both None counts: untraced spans nest
            // under untraced spans, exactly the old behaviour per thread).
            Some(top) if top.trace == scope_trace => (Some(top.id), scope_trace, None),
            _ => (
                None,
                scope_trace,
                ctx.traces.last().and_then(|s| s.follows_span),
            ),
        };
        ctx.stack.push(OpenSpan {
            id,
            parent,
            trace,
            follows_from,
            name: name.to_string(),
            start_ns,
            started: Instant::now(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        });
        drop(st);
        SpanGuard { telemetry: self.clone(), id, owner, closed: false }
    }
}

impl SpanGuard {
    /// Attach a field to this span (visible in its journal record).
    pub fn record(&self, key: &str, value: impl Into<JsonValue>) {
        let mut st = self.telemetry.inner.state.lock().unwrap();
        if let Some(ctx) = st.threads.get_mut(&self.owner) {
            if let Some(frame) = ctx.stack.iter_mut().find(|f| f.id == self.id) {
                frame.fields.push((key.to_string(), value.into()));
            }
        }
    }

    /// Close the span now and return its duration in nanoseconds.
    pub fn finish(mut self) -> u64 {
        self.close()
    }

    fn close(&mut self) -> u64 {
        if self.closed {
            return 0;
        }
        self.closed = true;
        let mut st = self.telemetry.inner.state.lock().unwrap();
        // Pop this span — and any still-open children above it on the SAME
        // thread's stack (a child guard outliving its parent). Children are
        // force-closed so journal parent links stay consistent, but each
        // one is surfaced in the `span.leaked` counter instead of silently
        // vanishing. Other threads' stacks are untouched by construction.
        let mut frames = Vec::new();
        {
            let Some(ctx) = st.threads.get_mut(&self.owner) else {
                return 0;
            };
            let Some(pos) = ctx.stack.iter().position(|f| f.id == self.id) else {
                return 0; // already force-closed by its parent's guard
            };
            while ctx.stack.len() > pos {
                let frame = ctx.stack.pop().expect("stack nonempty by loop bound");
                let depth = ctx.stack.len() as u32;
                frames.push((frame, depth, ctx.tid));
            }
        }
        st.gc_ctx(self.owner);
        let mut dur_of_self = 0;
        for (frame, depth, tid) in frames {
            let dur_ns = nonzero_ns(frame.started.elapsed());
            if frame.id == self.id {
                dur_of_self = dur_ns;
            } else {
                *st.counters.entry("span.leaked".into()).or_insert(0) += 1;
            }
            let hist_name = format!("span.{}", frame.name);
            st.histograms.entry(hist_name).or_default().record(dur_ns);
            *st.counters.entry(format!("span.{}.count", frame.name)).or_insert(0) += 1;
            st.push_record(JournalRecord::Span {
                id: frame.id,
                parent: frame.parent,
                trace: frame.trace,
                tid,
                follows_from: frame.follows_from,
                name: frame.name,
                depth,
                start_ns: frame.start_ns,
                dur_ns,
                fields: frame.fields,
            });
        }
        dur_of_self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn spans_nest_and_order_in_journal() {
        let t = Telemetry::new();
        {
            let root = t.span("evolve");
            root.record("op", "add_attribute");
            {
                let _translate = t.span("evolve.translate");
            }
            {
                let classify = t.span("evolve.classify");
                classify.record("classes", 3u64);
            }
        }
        let journal = t.journal();
        let names: Vec<&str> = journal.iter().map(|r| r.name()).collect();
        // Children close before the root; order is close order.
        assert_eq!(names, vec!["evolve.translate", "evolve.classify", "evolve"]);
        // Parent links point at the root span.
        let root_id = match &journal[2] {
            JournalRecord::Span { id, parent, depth, fields, .. } => {
                assert_eq!(*parent, None);
                assert_eq!(*depth, 0);
                assert_eq!(fields[0].0, "op");
                *id
            }
            other => panic!("expected span, got {other:?}"),
        };
        for rec in &journal[..2] {
            match rec {
                JournalRecord::Span { parent, depth, dur_ns, .. } => {
                    assert_eq!(*parent, Some(root_id));
                    assert_eq!(*depth, 1);
                    assert!(*dur_ns > 0);
                }
                other => panic!("expected span, got {other:?}"),
            }
        }
        // Metrics side-channel fed too.
        assert_eq!(t.counter("span.evolve.count"), 1);
        assert_eq!(t.snapshot().histograms["span.evolve.classify"].count, 1);
    }

    #[test]
    fn out_of_order_close_closes_same_thread_children_and_counts_leaks() {
        let t = Telemetry::new();
        let outer = t.span("outer");
        let _inner = t.span("inner");
        // Closing the parent first force-closes the child — same thread, so
        // it genuinely is a child — but the leak is surfaced.
        outer.finish();
        let journal = t.journal();
        let names: Vec<&str> = journal.iter().map(|r| r.name()).collect();
        assert_eq!(names, vec!["inner", "outer"]);
        assert_eq!(t.counter("span.leaked"), 1, "force-closed child counted");
        // The leaked inner guard's drop is now a no-op.
        drop(_inner);
        assert_eq!(t.journal().len(), 2);
    }

    /// The PR-1 regression: two threads open concurrent spans on one
    /// domain. With the old single global stack, thread B's root span
    /// parented off whatever thread A had open, and finishing one thread's
    /// span force-closed the other's. Per-thread contexts must keep the
    /// threads fully independent.
    #[test]
    fn concurrent_threads_do_not_misattribute_or_cross_close() {
        let t = Telemetry::new();
        let a = t.span("thread_a.root");
        let (tx, rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel();
        let t2 = t.clone();
        let handle = std::thread::spawn(move || {
            // Opened while thread A's span is open on the shared domain.
            let b = t2.span("thread_b.root");
            let b_child = t2.span("thread_b.child");
            tx.send(()).unwrap();
            // Hold both open until the main thread has closed its span.
            done_rx.recv().unwrap();
            b_child.finish();
            b.finish();
        });
        rx.recv().unwrap();
        // Thread A closes its span while B's spans are still open. The old
        // stack force-closed B's spans here.
        let _a_child = t.span("thread_a.child");
        drop(_a_child);
        a.finish();
        assert_eq!(
            t.journal().iter().filter(|r| r.name().starts_with("thread_b")).count(),
            0,
            "closing thread A's spans must not close thread B's"
        );
        done_tx.send(()).unwrap();
        handle.join().unwrap();

        let journal = t.journal();
        let find = |name: &str| {
            journal
                .iter()
                .find_map(|r| match r {
                    JournalRecord::Span { id, parent, tid, name: n, .. } if n == name => {
                        Some((*id, *parent, *tid))
                    }
                    _ => None,
                })
                .unwrap_or_else(|| panic!("span {name} missing"))
        };
        let (a_id, a_parent, a_tid) = find("thread_a.root");
        let (_, a_child_parent, _) = find("thread_a.child");
        let (b_id, b_parent, b_tid) = find("thread_b.root");
        let (_, b_child_parent, b_child_tid) = find("thread_b.child");
        // Roots are roots — B's root must NOT parent off A's open span.
        assert_eq!(a_parent, None);
        assert_eq!(b_parent, None, "cross-thread parent misattribution");
        // Children parent within their own thread.
        assert_eq!(a_child_parent, Some(a_id));
        assert_eq!(b_child_parent, Some(b_id));
        assert_eq!(b_child_tid, b_tid);
        assert_ne!(a_tid, b_tid, "threads get distinct tids");
        assert_eq!(t.counter("span.leaked"), 0, "nothing was force-closed");
    }

    #[test]
    fn journal_lines_are_valid_json() {
        let t = Telemetry::new();
        {
            let s = t.span("weird \"name\"\n");
            s.record("k", "v\\");
        }
        t.event("note", &[("detail", "x".into())]);
        let lines = t.journal_lines();
        assert_eq!(crate::json::validate_lines(&lines).unwrap(), 2);
    }

    #[test]
    fn finish_returns_duration() {
        let t = Telemetry::new();
        let s = t.span("timed");
        std::hint::black_box((0..100).sum::<u64>());
        assert!(s.finish() > 0);
    }

    #[test]
    fn spans_inherit_the_thread_trace() {
        let t = Telemetry::new();
        let tr = t.mint_trace("op");
        let g = t.enter_trace(tr);
        {
            let _root = t.span("outer");
            let _child = t.span("inner");
        }
        drop(g);
        // A span opened after the trace scope ends is untraced.
        drop(t.span("later"));
        let journal = t.journal();
        for name in ["outer", "inner"] {
            let rec = journal.iter().find(|r| r.name() == name).unwrap();
            assert_eq!(rec.trace(), Some(tr), "{name} stamped with the trace");
        }
        let later = journal.iter().find(|r| r.name() == "later").unwrap();
        assert_eq!(later.trace(), None);
    }

    #[test]
    fn new_trace_breaks_parentage_across_traces() {
        let t = Telemetry::new();
        let _outer_trace = t.ensure_trace("write");
        let outer_span = t.span("write.op");
        // A causally-linked but distinct unit starts under the open span.
        let inner_trace = t.new_trace("autocheckpoint");
        let inner_span = t.span("checkpoint.work");
        inner_span.finish();
        drop(inner_trace);
        let outer_id = {
            let mut st = t.inner.state.lock().unwrap();
            st.ctx().stack.last().unwrap().id
        };
        outer_span.finish();
        let journal = t.journal();
        let work = journal.iter().find(|r| r.name() == "checkpoint.work").unwrap();
        match work {
            JournalRecord::Span { parent, follows_from, .. } => {
                assert_eq!(*parent, None, "cross-trace spans must not parent-link");
                assert_eq!(*follows_from, Some(outer_id), "causality kept via follows_from");
            }
            other => panic!("expected span, got {other:?}"),
        }
    }
}
