//! Hierarchical spans with RAII timing guards.
//!
//! A [`SpanGuard`] opens on [`Telemetry::span`] and closes on drop (or
//! explicit [`SpanGuard::finish`]); closing appends a [`JournalRecord::Span`]
//! to the journal, records the duration into the `span.<name>` histogram,
//! and bumps the `span.<name>.count` counter. Spans nest: the guard opened
//! most recently (and not yet closed) is the parent of the next one.

use std::time::{Duration, Instant};

use crate::json::JsonValue;
use crate::Telemetry;

/// Clamp a duration to a nonzero nanosecond count (sub-nanosecond work
/// rounds up to 1 so "this phase ran" is always visible in the journal).
pub(crate) fn nonzero_ns(d: Duration) -> u64 {
    (d.as_nanos() as u64).max(1)
}

/// An open span on the stack.
pub(crate) struct OpenSpan {
    pub(crate) id: u64,
    pub(crate) parent: Option<u64>,
    pub(crate) name: String,
    pub(crate) start_ns: u64,
    pub(crate) started: Instant,
    pub(crate) fields: Vec<(String, JsonValue)>,
}

/// One record of the event journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A closed span.
    Span {
        /// Span id (unique within the domain, 1-based).
        id: u64,
        /// Enclosing span id, if nested.
        parent: Option<u64>,
        /// Span name, e.g. `evolve.translate`.
        name: String,
        /// Nesting depth at open time (0 = root).
        depth: u32,
        /// Start offset from the telemetry epoch, nanoseconds.
        start_ns: u64,
        /// Wall-clock duration, nanoseconds (≥ 1).
        dur_ns: u64,
        /// Attached key/value fields.
        fields: Vec<(String, JsonValue)>,
    },
    /// A point event.
    Event {
        /// Event name.
        name: String,
        /// Offset from the telemetry epoch, nanoseconds.
        at_ns: u64,
        /// Enclosing span id, if any.
        parent: Option<u64>,
        /// Attached key/value fields.
        fields: Vec<(String, JsonValue)>,
    },
}

impl JournalRecord {
    /// Serialise to one JSON object.
    pub fn to_json(&self) -> JsonValue {
        match self {
            JournalRecord::Span { id, parent, name, depth, start_ns, dur_ns, fields } => {
                let mut pairs: Vec<(&str, JsonValue)> = vec![
                    ("kind", "span".into()),
                    ("id", (*id).into()),
                    (
                        "parent",
                        parent.map(JsonValue::U64).unwrap_or(JsonValue::Null),
                    ),
                    ("name", name.as_str().into()),
                    ("depth", (*depth as u64).into()),
                    ("start_ns", (*start_ns).into()),
                    ("dur_ns", (*dur_ns).into()),
                ];
                if !fields.is_empty() {
                    pairs.push((
                        "fields",
                        JsonValue::Obj(fields.clone()),
                    ));
                }
                JsonValue::obj(pairs)
            }
            JournalRecord::Event { name, at_ns, parent, fields } => {
                let mut pairs: Vec<(&str, JsonValue)> = vec![
                    ("kind", "event".into()),
                    ("name", name.as_str().into()),
                    (
                        "parent",
                        parent.map(JsonValue::U64).unwrap_or(JsonValue::Null),
                    ),
                    ("at_ns", (*at_ns).into()),
                ];
                if !fields.is_empty() {
                    pairs.push(("fields", JsonValue::Obj(fields.clone())));
                }
                JsonValue::obj(pairs)
            }
        }
    }

    /// The record's name (span or event).
    pub fn name(&self) -> &str {
        match self {
            JournalRecord::Span { name, .. } | JournalRecord::Event { name, .. } => name,
        }
    }
}

/// RAII guard for one span; closes (journals + measures) on drop.
#[must_use = "a span measures nothing unless held"]
pub struct SpanGuard {
    telemetry: Telemetry,
    id: u64,
    closed: bool,
}

impl Telemetry {
    /// Open a nested span. The returned guard closes it on drop.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_with(name, &[])
    }

    /// Open a nested span with initial fields.
    pub fn span_with(&self, name: &str, fields: &[(&str, JsonValue)]) -> SpanGuard {
        let start_ns = self.now_ns();
        let mut st = self.inner.state.lock().unwrap();
        let id = st.next_span_id;
        st.next_span_id += 1;
        let parent = st.stack.last().map(|s| s.id);
        st.stack.push(OpenSpan {
            id,
            parent,
            name: name.to_string(),
            start_ns,
            started: Instant::now(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        });
        SpanGuard { telemetry: self.clone(), id, closed: false }
    }
}

impl SpanGuard {
    /// Attach a field to this span (visible in its journal record).
    pub fn record(&self, key: &str, value: impl Into<JsonValue>) {
        let mut st = self.telemetry.inner.state.lock().unwrap();
        if let Some(frame) = st.stack.iter_mut().find(|f| f.id == self.id) {
            frame.fields.push((key.to_string(), value.into()));
        }
    }

    /// Close the span now and return its duration in nanoseconds.
    pub fn finish(mut self) -> u64 {
        self.close()
    }

    fn close(&mut self) -> u64 {
        if self.closed {
            return 0;
        }
        self.closed = true;
        let mut st = self.telemetry.inner.state.lock().unwrap();
        // Out-of-order closes (a child guard outliving its parent) are
        // tolerated: close every span above ours on the stack first, so
        // parent links in the journal stay consistent.
        let Some(pos) = st.stack.iter().position(|f| f.id == self.id) else {
            return 0;
        };
        let mut dur_of_self = 0;
        while st.stack.len() > pos {
            let frame = st.stack.pop().expect("stack nonempty by loop bound");
            let depth = st.stack.len() as u32;
            let dur_ns = nonzero_ns(frame.started.elapsed());
            if frame.id == self.id {
                dur_of_self = dur_ns;
            }
            let hist_name = format!("span.{}", frame.name);
            st.histograms.entry(hist_name).or_default().record(dur_ns);
            *st.counters.entry(format!("span.{}.count", frame.name)).or_insert(0) += 1;
            st.journal.push(JournalRecord::Span {
                id: frame.id,
                parent: frame.parent,
                name: frame.name,
                depth,
                start_ns: frame.start_ns,
                dur_ns,
                fields: frame.fields,
            });
        }
        dur_of_self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_order_in_journal() {
        let t = Telemetry::new();
        {
            let root = t.span("evolve");
            root.record("op", "add_attribute");
            {
                let _translate = t.span("evolve.translate");
            }
            {
                let classify = t.span("evolve.classify");
                classify.record("classes", 3u64);
            }
        }
        let journal = t.journal();
        let names: Vec<&str> = journal.iter().map(|r| r.name()).collect();
        // Children close before the root; order is close order.
        assert_eq!(names, vec!["evolve.translate", "evolve.classify", "evolve"]);
        // Parent links point at the root span.
        let root_id = match &journal[2] {
            JournalRecord::Span { id, parent, depth, fields, .. } => {
                assert_eq!(*parent, None);
                assert_eq!(*depth, 0);
                assert_eq!(fields[0].0, "op");
                *id
            }
            other => panic!("expected span, got {other:?}"),
        };
        for rec in &journal[..2] {
            match rec {
                JournalRecord::Span { parent, depth, dur_ns, .. } => {
                    assert_eq!(*parent, Some(root_id));
                    assert_eq!(*depth, 1);
                    assert!(*dur_ns > 0);
                }
                other => panic!("expected span, got {other:?}"),
            }
        }
        // Metrics side-channel fed too.
        assert_eq!(t.counter("span.evolve.count"), 1);
        assert_eq!(t.snapshot().histograms["span.evolve.classify"].count, 1);
    }

    #[test]
    fn out_of_order_close_closes_children_first() {
        let t = Telemetry::new();
        let outer = t.span("outer");
        let _inner = t.span("inner");
        // Closing the parent first force-closes the child.
        outer.finish();
        let journal = t.journal();
        let names: Vec<&str> = journal.iter().map(|r| r.name()).collect();
        assert_eq!(names, vec!["inner", "outer"]);
        // The leaked inner guard's drop is now a no-op.
        drop(_inner);
        assert_eq!(t.journal().len(), 2);
    }

    #[test]
    fn journal_lines_are_valid_json() {
        let t = Telemetry::new();
        {
            let s = t.span("weird \"name\"\n");
            s.record("k", "v\\");
        }
        t.event("note", &[("detail", "x".into())]);
        let lines = t.journal_lines();
        assert_eq!(crate::json::validate_lines(&lines).unwrap(), 2);
    }

    #[test]
    fn finish_returns_duration() {
        let t = Telemetry::new();
        let s = t.span("timed");
        std::hint::black_box((0..100).sum::<u64>());
        assert!(s.finish() > 0);
    }
}
