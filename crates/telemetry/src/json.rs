//! Minimal JSON writer + validating parser (no external dependencies).
//!
//! The writer backs the event journal and the benchmark JSON artifacts; the
//! parser exists so the CI smoke test and the integration tests can verify
//! that emitted JSON-lines are well formed without a registry dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value with insertion-ordered objects.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (the common case for counters).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point. Non-finite values render as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object, order-preserving.
    Obj(Vec<(String, JsonValue)>),
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::I64(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}
impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

/// Escape a string for embedding in JSON (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl JsonValue {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                    // Keep it a JSON number but distinguishable as float.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            JsonValue::I64(v) if *v >= 0 => Some(*v as u64),
            JsonValue::F64(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Build a [`JsonValue::Obj`] from a `BTreeMap` of counters.
pub fn counters_obj(counters: &BTreeMap<String, u64>) -> JsonValue {
    JsonValue::Obj(counters.iter().map(|(k, v)| (k.clone(), JsonValue::U64(*v))).collect())
}

// ----- validating parser -----------------------------------------------------

/// Maximum object/array nesting the parser accepts. Journal records are a
/// few levels deep; anything past this is hostile or corrupt input and gets
/// rejected instead of risking a stack overflow in the recursive descent.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4_at(self.pos + 1)?;
                            self.pos += 4;
                            if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: combine with an
                                // immediately following \uDC00–\uDFFF into
                                // one supplementary-plane scalar. A lone or
                                // mispaired surrogate degrades to U+FFFD.
                                let paired = self.bytes.get(self.pos + 1)
                                    == Some(&b'\\')
                                    && self.bytes.get(self.pos + 2) == Some(&b'u');
                                let low =
                                    if paired { Some(self.hex4_at(self.pos + 3)?) } else { None };
                                match low {
                                    Some(lo) if (0xDC00..=0xDFFF).contains(&lo) => {
                                        let c =
                                            0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                        out.push(char::from_u32(c).unwrap_or('\u{fffd}'));
                                        self.pos += 6;
                                    }
                                    _ => out.push('\u{fffd}'),
                                }
                            } else {
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Read four hex digits starting at byte `at` (does not move `pos`).
    fn hex4_at(&self, at: usize) -> Result<u32, String> {
        if at + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[at..at + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>().map(JsonValue::F64).map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(JsonValue::I64).map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>().map(JsonValue::U64).map_err(|_| self.err("invalid number"))
        }
    }
}

/// Parse a complete JSON document.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Validate a JSON-lines document; returns the number of records, or the
/// first offending line's error. Empty input is an error — an empty journal
/// almost always means instrumentation was never wired up.
pub fn validate_lines(input: &str) -> Result<usize, String> {
    let mut n = 0usize;
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        n += 1;
    }
    if n == 0 {
        return Err("no JSON records found".to_string());
    }
    Ok(n)
}

/// Like [`validate_lines`] but tolerates a single torn **final** line — the
/// normal state of a streaming flight-recorder sink cut off mid-record by a
/// crash or kill. Returns `(records, torn)` where `torn` reports whether the
/// last line failed to parse and was skipped. A malformed line anywhere
/// else is still an error, as is an input with no complete record at all.
pub fn validate_lines_tolerant(input: &str) -> Result<(usize, bool), String> {
    let lines: Vec<(usize, &str)> =
        input.lines().enumerate().filter(|(_, l)| !l.trim().is_empty()).collect();
    let mut n = 0usize;
    let mut torn = false;
    for (k, (i, line)) in lines.iter().enumerate() {
        match parse(line) {
            Ok(_) => n += 1,
            Err(_) if k + 1 == lines.len() => torn = true,
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    if n == 0 {
        return Err("no JSON records found".to_string());
    }
    Ok((n, torn))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_roundtrip() {
        let v = JsonValue::obj(vec![
            ("name", "evolve.translate".into()),
            ("dur_ns", 1234u64.into()),
            ("neg", JsonValue::I64(-5)),
            ("ratio", 0.75.into()),
            ("ok", true.into()),
            ("none", JsonValue::Null),
            ("tags", JsonValue::Arr(vec!["a\"b".into(), "c\nd".into()])),
        ]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(back.get("dur_ns").unwrap().as_u64(), Some(1234));
        assert_eq!(back.get("name").unwrap().as_str(), Some("evolve.translate"));
        assert_eq!(back.get("tags").unwrap(), &JsonValue::Arr(vec!["a\"b".into(), "c\nd".into()]));
    }

    #[test]
    fn escapes_control_chars() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(parse("\"a\\u0041b\"").unwrap().as_str(), Some("aAb"));
    }

    #[test]
    fn surrogate_pairs_combine_and_lone_surrogates_degrade() {
        // A paired 😀 is one supplementary-plane char (😀).
        assert_eq!(parse("\"\\uD83D\\uDE00\"").unwrap().as_str(), Some("😀"));
        // U+10FFFF, the last scalar, via its surrogate pair.
        assert_eq!(parse("\"\\uDBFF\\uDFFF\"").unwrap().as_str(), Some("\u{10FFFF}"));
        // Lone high, lone low, and a mispaired high each degrade to U+FFFD
        // without corrupting the rest of the string.
        assert_eq!(parse("\"a\\uD83Db\"").unwrap().as_str(), Some("a\u{fffd}b"));
        assert_eq!(parse("\"a\\uDE00b\"").unwrap().as_str(), Some("a\u{fffd}b"));
        assert_eq!(parse("\"\\uD83D\\u0041\"").unwrap().as_str(), Some("\u{fffd}A"));
        // Truncated escape after a high surrogate is still a hard error.
        assert!(parse("\"\\uD83D\\uDE\"").is_err());
    }

    #[test]
    fn u64_max_counters_roundtrip_exactly() {
        let v = JsonValue::obj(vec![("c", u64::MAX.into())]);
        let text = v.render();
        assert!(text.contains("18446744073709551615"));
        let back = parse(&text).unwrap();
        assert_eq!(back.get("c").unwrap().as_u64(), Some(u64::MAX));
        // One past u64::MAX no longer fits an integer and is rejected
        // rather than silently rounded through f64.
        assert!(parse("18446744073709551616").is_err());
        assert_eq!(parse("-9223372036854775808").unwrap(), JsonValue::I64(i64::MIN));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok(), "100 levels must parse");
        let deep = format!("{}0{}", "[".repeat(300), "]".repeat(300));
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting too deep"), "got: {err}");
        // Deeply nested *fields* (objects) hit the same bound.
        let mut obj = String::new();
        for _ in 0..300 {
            obj.push_str("{\"f\":");
        }
        obj.push('1');
        obj.push_str(&"}".repeat(300));
        assert!(parse(&obj).unwrap_err().contains("nesting too deep"));
    }

    #[test]
    fn tolerant_validation_accepts_one_torn_final_line() {
        let torn = "{\"a\":1}\n{\"b\":2}\n{\"c\":tru";
        // Strict validation rejects the torn tail...
        assert!(validate_lines(torn).is_err());
        // ...tolerant validation counts the complete records and flags it.
        assert_eq!(validate_lines_tolerant(torn).unwrap(), (2, true));
        // An intact file reports torn = false.
        assert_eq!(validate_lines_tolerant("{\"a\":1}\n").unwrap(), (1, false));
        // Garbage in the middle is never tolerated.
        assert!(validate_lines_tolerant("{\"a\":1}\nnope\n{\"b\":2}\n").is_err());
        // A file that is nothing but a torn line has no records to count.
        assert!(validate_lines_tolerant("{\"a\":").is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} extra").is_err());
        assert!(validate_lines("").is_err());
        assert!(validate_lines("{\"a\":1}\nnot json\n").is_err());
        assert_eq!(validate_lines("{\"a\":1}\n{\"b\":[]}\n").unwrap(), 2);
    }
}
