//! # tse-telemetry — workspace-wide observability, std-only.
//!
//! The paper's evaluation is entirely *measured* behaviour — page touches,
//! classification cost, view-regeneration overhead — so every layer of the
//! workspace reports into this crate:
//!
//! * **Spans** ([`Telemetry::span`]): hierarchical RAII timing guards over
//!   the schema-evolution pipeline (`evolve` → `evolve.translate` →
//!   `evolve.classify` → `evolve.view_regen` → `evolve.swap_in`). Closing a
//!   span appends a record to the journal and feeds the
//!   `span.<name>` histogram.
//! * **Metrics registry** ([`Telemetry::incr`], [`Telemetry::observe_ns`],
//!   [`Telemetry::set_gauge`]): named `u64` counters/gauges and log₂-bucket
//!   histograms, snapshotted deterministically with
//!   [`Telemetry::snapshot`].
//! * **Event journal** ([`Telemetry::journal_lines`]): every closed span and
//!   explicit event serialised as JSON-lines for offline analysis; the
//!   [`json`] module carries the writer and a validating parser.
//!
//! A [`Telemetry`] is a cheap cloneable handle (`Arc` inside); the
//! object-model `Database` owns one and every layer above reaches it through
//! the database, so one evolution produces one coherent journal.

#![warn(missing_docs)]

pub mod hist;
pub mod json;

mod registry;
mod span;

pub use hist::{Histogram, HistogramSnapshot};
pub use json::JsonValue;
pub use registry::MetricsSnapshot;
pub use span::{JournalRecord, SpanGuard};

use std::sync::{Arc, Mutex};
use std::time::Instant;

pub(crate) struct State {
    pub(crate) counters: std::collections::BTreeMap<String, u64>,
    pub(crate) histograms: std::collections::BTreeMap<String, Histogram>,
    pub(crate) stack: Vec<span::OpenSpan>,
    pub(crate) journal: Vec<JournalRecord>,
    pub(crate) next_span_id: u64,
}

pub(crate) struct Inner {
    pub(crate) epoch: Instant,
    pub(crate) state: Mutex<State>,
}

/// A cloneable handle to one telemetry domain (registry + journal + span
/// stack). All methods take `&self` and are internally synchronised.
#[derive(Clone)]
pub struct Telemetry {
    pub(crate) inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock().unwrap();
        f.debug_struct("Telemetry")
            .field("counters", &st.counters.len())
            .field("histograms", &st.histograms.len())
            .field("journal_records", &st.journal.len())
            .field("open_spans", &st.stack.len())
            .finish()
    }
}

impl Telemetry {
    /// A fresh, empty telemetry domain.
    pub fn new() -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State {
                    counters: Default::default(),
                    histograms: Default::default(),
                    stack: Vec::new(),
                    journal: Vec::new(),
                    next_span_id: 1,
                }),
            }),
        }
    }

    /// Nanoseconds since this domain's epoch (monotonic).
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    // ----- counters / gauges -------------------------------------------------

    /// Add `by` to the named counter (creating it at zero).
    pub fn incr(&self, name: &str, by: u64) {
        let mut st = self.inner.state.lock().unwrap();
        *st.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set the named counter to an absolute value (gauge semantics).
    pub fn set_gauge(&self, name: &str, value: u64) {
        let mut st = self.inner.state.lock().unwrap();
        st.counters.insert(name.to_string(), value);
    }

    /// Current value of a counter/gauge (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.state.lock().unwrap().counters.get(name).copied().unwrap_or(0)
    }

    // ----- histograms --------------------------------------------------------

    /// Record one observation (e.g. nanoseconds) into the named log₂
    /// histogram.
    pub fn observe_ns(&self, name: &str, value: u64) {
        let mut st = self.inner.state.lock().unwrap();
        st.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// Time a closure into the named histogram; returns its result.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.observe_ns(name, span::nonzero_ns(start.elapsed()));
        out
    }

    // ----- events ------------------------------------------------------------

    /// Append a free-form event record to the journal.
    pub fn event(&self, name: &str, fields: &[(&str, JsonValue)]) {
        let at_ns = self.now_ns();
        let mut st = self.inner.state.lock().unwrap();
        let parent = st.stack.last().map(|s| s.id);
        st.journal.push(JournalRecord::Event {
            name: name.to_string(),
            at_ns,
            parent,
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        });
    }

    // ----- snapshot / journal ------------------------------------------------

    /// A deterministic point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let st = self.inner.state.lock().unwrap();
        MetricsSnapshot {
            counters: st.counters.clone(),
            histograms: st.histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        }
    }

    /// All journal records so far (oldest first).
    pub fn journal(&self) -> Vec<JournalRecord> {
        self.inner.state.lock().unwrap().journal.clone()
    }

    /// The journal serialised as JSON-lines (one object per line).
    pub fn journal_lines(&self) -> String {
        let st = self.inner.state.lock().unwrap();
        let mut out = String::new();
        for rec in &st.journal {
            out.push_str(&rec.to_json().render());
            out.push('\n');
        }
        out
    }

    /// Drop all recorded state (counters, histograms, journal). Open span
    /// guards keep working; their records land in the fresh journal.
    pub fn reset(&self) {
        let mut st = self.inner.state.lock().unwrap();
        st.counters.clear();
        st.histograms.clear();
        st.journal.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let t = Telemetry::new();
        t.incr("op.create", 1);
        t.incr("op.create", 2);
        t.set_gauge("store.pages", 7);
        assert_eq!(t.counter("op.create"), 3);
        assert_eq!(t.counter("store.pages"), 7);
        assert_eq!(t.counter("missing"), 0);
        let snap = t.snapshot();
        assert_eq!(snap.counters["op.create"], 3);
    }

    #[test]
    fn time_feeds_histogram() {
        let t = Telemetry::new();
        let v = t.time("h", || 41 + 1);
        assert_eq!(v, 42);
        let snap = t.snapshot();
        assert_eq!(snap.histograms["h"].count, 1);
        assert!(snap.histograms["h"].sum > 0);
    }

    #[test]
    fn reset_clears_everything() {
        let t = Telemetry::new();
        t.incr("c", 1);
        t.observe_ns("h", 5);
        t.event("e", &[]);
        t.reset();
        let snap = t.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
        assert!(t.journal().is_empty());
    }
}
