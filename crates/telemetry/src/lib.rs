//! # tse-telemetry — workspace-wide observability, std-only.
//!
//! The paper's evaluation is entirely *measured* behaviour — page touches,
//! classification cost, view-regeneration overhead — so every layer of the
//! workspace reports into this crate:
//!
//! * **Spans** ([`Telemetry::span`]): hierarchical RAII timing guards over
//!   the schema-evolution pipeline (`evolve` → `evolve.translate` →
//!   `evolve.classify` → `evolve.view_regen` → `evolve.swap_in`). Closing a
//!   span appends a record to the journal and feeds the
//!   `span.<name>` histogram. Span nesting is **per thread**: each thread
//!   owns its own span stack inside the shared domain, so concurrent
//!   sessions can never misattribute parentage or close one another's
//!   spans.
//! * **Traces** ([`Telemetry::ensure_trace`], [`Telemetry::enter_trace`]):
//!   every journal record is stamped with the trace id active on its
//!   thread, and cross-thread causality is linked explicitly via
//!   [`Telemetry::handoff`]/[`Telemetry::adopt`] (`follows_from` on the
//!   adopted thread's root spans) rather than implied by a global stack.
//! * **Metrics registry** ([`Telemetry::incr`], [`Telemetry::observe_ns`],
//!   [`Telemetry::set_gauge`]): named `u64` counters/gauges and log₂-bucket
//!   histograms, snapshotted deterministically with
//!   [`Telemetry::snapshot`].
//! * **Flight recorder** ([`Telemetry::journal_lines`]): every closed span
//!   and explicit event lands in a **bounded ring buffer** (default
//!   [`DEFAULT_JOURNAL_CAPACITY`] records; overflow evicts the oldest
//!   record and bumps `journal.dropped`) and, when a sink is attached
//!   ([`Telemetry::attach_sink`]), is also streamed to a JSON-lines file so
//!   long runs keep full history on disk with bounded memory. The [`json`]
//!   module carries the writer and a validating parser.
//! * **Slow-op log** ([`Telemetry::set_slow_op_threshold_ns`]): operations
//!   measured through [`Telemetry::observe_op`] that exceed the threshold
//!   emit a `slow_op` journal event enriched with the lock/WAL waits the
//!   thread accumulated during the operation, so tail latency is
//!   attributable offline.
//!
//! A [`Telemetry`] is a cheap cloneable handle (`Arc` inside); the
//! object-model `Database` owns one and every layer above reaches it through
//! the database, so one evolution produces one coherent journal.

#![warn(missing_docs)]

pub mod hist;
pub mod json;

mod registry;
mod span;

pub use hist::{Histogram, HistogramSnapshot};
pub use json::JsonValue;
pub use registry::MetricsSnapshot;
pub use span::{JournalRecord, SpanGuard};

use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// Default capacity of the in-memory journal ring buffer (~64Ki records).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 64 * 1024;

/// Wait histograms that also accumulate into the observing thread's
/// operation context, so a `slow_op` event can attribute where a slow
/// operation spent its time. Every name here is observed *on the thread
/// performing the operation* (lock acquisition and group-commit waits run
/// inline), which is what makes the attribution causally correct.
const TRACKED_WAITS: &[&str] = &[
    "lock.stripe_wait_ns",
    "lock.read_wait_ns",
    "lock.write_wait_ns",
    "lock.control_wait_ns",
    "wal.fsync_ns",
    "wal.commit_wait_ns",
];

/// One trace scope entered on a thread (innermost last on the stack).
pub(crate) struct TraceScope {
    pub(crate) trace: u64,
    /// Span id (possibly from another thread) the first root span opened
    /// under this scope should link to with `follows_from`.
    pub(crate) follows_span: Option<u64>,
}

/// Per-thread span/trace context, registered with the shared domain the
/// first time a thread opens a span, enters a trace, or emits an event.
pub(crate) struct ThreadCtx {
    /// Dense per-domain thread index (1-based), stamped on journal records
    /// as `tid`.
    pub(crate) tid: u64,
    pub(crate) stack: Vec<span::OpenSpan>,
    pub(crate) traces: Vec<TraceScope>,
    /// Tracked waits accumulated since the last [`Telemetry::observe_op`]
    /// on this thread (name → summed ns).
    pub(crate) waits: Vec<(&'static str, u64)>,
}

pub(crate) struct State {
    pub(crate) counters: std::collections::BTreeMap<String, u64>,
    pub(crate) histograms: std::collections::BTreeMap<String, Histogram>,
    pub(crate) threads: HashMap<ThreadId, ThreadCtx>,
    /// Dense 1-based thread numbering, assigned on first touch and **kept
    /// for the domain's lifetime** even when the heavy [`ThreadCtx`] is
    /// GC'd — a thread's `tid` in the journal never changes.
    pub(crate) tids: HashMap<ThreadId, u64>,
    pub(crate) next_tid: u64,
    pub(crate) journal: VecDeque<JournalRecord>,
    pub(crate) journal_capacity: usize,
    pub(crate) sink: Option<std::io::BufWriter<std::fs::File>>,
    pub(crate) sink_records: u64,
    pub(crate) next_span_id: u64,
    pub(crate) next_trace_id: u64,
    pub(crate) slow_op_threshold_ns: u64,
}

impl State {
    /// The calling thread's context, creating (and numbering) it on first
    /// touch.
    pub(crate) fn ctx(&mut self) -> &mut ThreadCtx {
        let key = std::thread::current().id();
        let next_tid = &mut self.next_tid;
        let tid = *self.tids.entry(key).or_insert_with(|| {
            let tid = *next_tid;
            *next_tid += 1;
            tid
        });
        self.threads.entry(key).or_insert_with(|| ThreadCtx {
            tid,
            stack: Vec::new(),
            traces: Vec::new(),
            waits: Vec::new(),
        })
    }

    /// Drop a thread context that holds nothing, so thread churn cannot
    /// grow the map without bound.
    pub(crate) fn gc_ctx(&mut self, key: ThreadId) {
        if let Some(ctx) = self.threads.get(&key) {
            if ctx.stack.is_empty() && ctx.traces.is_empty() && ctx.waits.is_empty() {
                self.threads.remove(&key);
            }
        }
    }

    /// Append one record: stream it to the sink (if any), then push it into
    /// the bounded ring, evicting (and counting) the oldest on overflow.
    ///
    /// A sink write failure is retried once (a transient stall — a signal,
    /// a momentarily full pipe — usually clears immediately); a second
    /// failure detaches the sink cleanly so journaling never turns a
    /// telemetry fault into a mutation fault. The detachment itself is
    /// recorded: `journal.sink_errors` + `journal.sink_detached` counters
    /// and a synthetic `journal.sink_detached` event in the ring, so an
    /// offline `tse-inspect` run can tell "quiet system" from "sink died".
    pub(crate) fn push_record(&mut self, rec: JournalRecord) {
        if let Some(sink) = &mut self.sink {
            let mut line = rec.to_json().render();
            line.push('\n');
            let wrote = sink.write_all(line.as_bytes()).or_else(|_| {
                *self.counters.entry("journal.sink_errors".into()).or_insert(0) += 1;
                sink.write_all(line.as_bytes())
            });
            if wrote.is_ok() {
                self.sink_records += 1;
            } else {
                *self.counters.entry("journal.sink_errors".into()).or_insert(0) += 1;
                *self.counters.entry("journal.sink_detached".into()).or_insert(0) += 1;
                self.sink = None;
                self.sink_records = 0;
                let tid = self.ctx().tid;
                let at_ns = match &rec {
                    JournalRecord::Event { at_ns, .. } => *at_ns,
                    JournalRecord::Span { start_ns, dur_ns, .. } => start_ns + dur_ns,
                };
                let detached = JournalRecord::Event {
                    name: "journal.sink_detached".into(),
                    at_ns,
                    parent: None,
                    trace: None,
                    tid,
                    fields: vec![(
                        "hint".to_string(),
                        "sink write failed twice; detached".into(),
                    )],
                };
                while self.journal.len() >= self.journal_capacity.max(1) {
                    self.journal.pop_front();
                    *self.counters.entry("journal.dropped".into()).or_insert(0) += 1;
                }
                self.journal.push_back(detached);
            }
        }
        while self.journal.len() >= self.journal_capacity.max(1) {
            self.journal.pop_front();
            *self.counters.entry("journal.dropped".into()).or_insert(0) += 1;
        }
        self.journal.push_back(rec);
    }
}

pub(crate) struct Inner {
    pub(crate) epoch: Instant,
    pub(crate) state: Mutex<State>,
}

/// A cloneable handle to one telemetry domain (registry + journal + the
/// per-thread span/trace contexts). All methods take `&self` and are
/// internally synchronised.
#[derive(Clone)]
pub struct Telemetry {
    pub(crate) inner: Arc<Inner>,
}

/// Captured cross-thread causality: the trace active on the capturing
/// thread plus its innermost open span. Pass it to another thread and
/// [`Telemetry::adopt`] it there — root spans on the adopting thread carry
/// `follows_from` links back to the captured span instead of corrupting the
/// capturing thread's stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHandoff {
    /// The trace the capturing thread was in.
    pub trace: u64,
    /// The innermost span open on the capturing thread, if any.
    pub span: Option<u64>,
}

/// RAII guard for one trace scope on the current thread; leaving the scope
/// (drop) pops it. The guard must be dropped on the thread that entered it
/// (debug-asserted); traces themselves move across threads via
/// [`Telemetry::handoff`] / [`Telemetry::adopt`].
#[must_use = "a trace scope ends as soon as the guard drops"]
pub struct TraceGuard {
    telemetry: Telemetry,
    owner: ThreadId,
    trace: u64,
}

impl TraceGuard {
    /// The trace id this guard keeps active.
    pub fn trace(&self) -> u64 {
        self.trace
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        debug_assert_eq!(
            self.owner,
            std::thread::current().id(),
            "TraceGuard dropped on a different thread than it was entered on"
        );
        let mut st = self.telemetry.inner.state.lock().unwrap();
        if let Some(ctx) = st.threads.get_mut(&self.owner) {
            if let Some(pos) = ctx.traces.iter().rposition(|s| s.trace == self.trace) {
                ctx.traces.remove(pos);
            }
        }
        st.gc_ctx(self.owner);
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock().unwrap();
        f.debug_struct("Telemetry")
            .field("counters", &st.counters.len())
            .field("histograms", &st.histograms.len())
            .field("journal_records", &st.journal.len())
            .field("threads", &st.threads.len())
            .field("open_spans", &st.threads.values().map(|c| c.stack.len()).sum::<usize>())
            .finish()
    }
}

impl Telemetry {
    /// A fresh, empty telemetry domain with the default journal capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A fresh domain whose journal ring holds at most `capacity` records
    /// (clamped to ≥ 1). Overflow evicts the oldest record and bumps the
    /// `journal.dropped` counter.
    pub fn with_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State {
                    counters: Default::default(),
                    histograms: Default::default(),
                    threads: HashMap::new(),
                    tids: HashMap::new(),
                    next_tid: 1,
                    journal: VecDeque::new(),
                    journal_capacity: capacity.max(1),
                    sink: None,
                    sink_records: 0,
                    next_span_id: 1,
                    next_trace_id: 1,
                    slow_op_threshold_ns: 0,
                }),
            }),
        }
    }

    /// Nanoseconds since this domain's epoch (monotonic).
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    // ----- counters / gauges -------------------------------------------------

    /// Add `by` to the named counter (creating it at zero).
    pub fn incr(&self, name: &str, by: u64) {
        let mut st = self.inner.state.lock().unwrap();
        *st.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set the named counter to an absolute value (gauge semantics).
    pub fn set_gauge(&self, name: &str, value: u64) {
        let mut st = self.inner.state.lock().unwrap();
        st.counters.insert(name.to_string(), value);
    }

    /// Current value of a counter/gauge (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.state.lock().unwrap().counters.get(name).copied().unwrap_or(0)
    }

    // ----- histograms --------------------------------------------------------

    /// Record one observation (e.g. nanoseconds) into the named log₂
    /// histogram. Tracked wait names (`lock.*_wait_ns`, `wal.fsync_ns`,
    /// `wal.commit_wait_ns`) additionally accumulate into the calling
    /// thread's operation context for slow-op attribution.
    pub fn observe_ns(&self, name: &str, value: u64) {
        let mut st = self.inner.state.lock().unwrap();
        st.histograms.entry(name.to_string()).or_default().record(value);
        if let Some(tracked) = TRACKED_WAITS.iter().find(|w| **w == name) {
            let ctx = st.ctx();
            match ctx.waits.iter_mut().find(|(n, _)| n == tracked) {
                Some((_, sum)) => *sum += value,
                None => ctx.waits.push((tracked, value)),
            }
        }
    }

    /// Time a closure into the named histogram; returns its result.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.observe_ns(name, span::nonzero_ns(start.elapsed()));
        out
    }

    // ----- operations / slow-op log -----------------------------------------

    /// Operations measured through [`Telemetry::observe_op`] that take at
    /// least `ns` nanoseconds emit a `slow_op` journal event enriched with
    /// the thread's tracked waits. `0` (the default) disables the log.
    pub fn set_slow_op_threshold_ns(&self, ns: u64) {
        self.inner.state.lock().unwrap().slow_op_threshold_ns = ns;
    }

    /// Count one data-plane operation (`op.<name>`), record its latency
    /// into `latency.<name>`, and — when a slow-op threshold is configured
    /// and exceeded — emit a `slow_op` event carrying the operation name,
    /// duration, and every tracked wait the calling thread accumulated
    /// since its previous measured operation (stripe/lock waits, WAL fsync
    /// and group-commit waits). The wait accumulators reset either way.
    pub fn observe_op(&self, op: &str, dur_ns: u64) {
        let dur_ns = dur_ns.max(1);
        let at_ns = self.now_ns();
        let mut st = self.inner.state.lock().unwrap();
        *st.counters.entry(format!("op.{op}")).or_insert(0) += 1;
        st.histograms.entry(format!("latency.{op}")).or_default().record(dur_ns);
        let threshold = st.slow_op_threshold_ns;
        let waits = std::mem::take(&mut st.ctx().waits);
        if threshold > 0 && dur_ns >= threshold {
            *st.counters.entry("slow_op.count".into()).or_insert(0) += 1;
            let mut fields: Vec<(String, JsonValue)> = vec![
                ("op".into(), op.into()),
                ("dur_ns".into(), dur_ns.into()),
                ("threshold_ns".into(), threshold.into()),
            ];
            for (name, sum) in waits {
                fields.push((name.to_string(), sum.into()));
            }
            let (tid, trace, parent) = stamp(&mut st);
            let rec = JournalRecord::Event { name: "slow_op".into(), at_ns, parent, trace, tid, fields };
            st.push_record(rec);
        }
    }

    // ----- traces ------------------------------------------------------------

    /// Mint a fresh trace id and journal a `trace.begin` event stamped with
    /// it (without entering the trace on this thread). Use this to give a
    /// long-lived session its identity once, then [`Telemetry::enter_trace`]
    /// per operation.
    pub fn mint_trace(&self, kind: &str) -> u64 {
        let at_ns = self.now_ns();
        let mut st = self.inner.state.lock().unwrap();
        let trace = st.next_trace_id;
        st.next_trace_id += 1;
        let tid = st.ctx().tid;
        let rec = JournalRecord::Event {
            name: "trace.begin".into(),
            at_ns,
            parent: None,
            trace: Some(trace),
            tid,
            fields: vec![("kind".into(), kind.into())],
        };
        st.push_record(rec);
        trace
    }

    /// Enter an existing trace on the current thread; spans and events
    /// opened while the guard lives are stamped with it.
    pub fn enter_trace(&self, trace: u64) -> TraceGuard {
        let mut st = self.inner.state.lock().unwrap();
        st.ctx().traces.push(TraceScope { trace, follows_span: None });
        drop(st);
        TraceGuard { telemetry: self.clone(), owner: std::thread::current().id(), trace }
    }

    /// Enter the trace already active on this thread, or mint a new one
    /// (journaling `trace.begin` with `kind`) when there is none. This is
    /// how `evolve` gets a trace from every entry point without double-
    /// minting inside composite macros.
    pub fn ensure_trace(&self, kind: &str) -> TraceGuard {
        if let Some(trace) = self.current_trace() {
            return self.enter_trace(trace);
        }
        let trace = self.mint_trace(kind);
        self.enter_trace(trace)
    }

    /// Mint and enter a **new** trace even when one is active — for work
    /// that is causally triggered by the current operation but is its own
    /// unit (e.g. an opportunistic auto-checkpoint riding a write). The
    /// `trace.begin` event carries a `follows_from_trace` link to the
    /// enclosing trace when there is one.
    pub fn new_trace(&self, kind: &str) -> TraceGuard {
        let at_ns = self.now_ns();
        let mut st = self.inner.state.lock().unwrap();
        let trace = st.next_trace_id;
        st.next_trace_id += 1;
        let ctx = st.ctx();
        let prev = ctx.traces.last().map(|s| s.trace);
        let follows_span = ctx.stack.last().map(|s| s.id);
        let tid = ctx.tid;
        ctx.traces.push(TraceScope { trace, follows_span });
        let mut fields: Vec<(String, JsonValue)> = vec![("kind".into(), kind.into())];
        if let Some(p) = prev {
            fields.push(("follows_from_trace".into(), p.into()));
        }
        let rec = JournalRecord::Event {
            name: "trace.begin".into(),
            at_ns,
            parent: None,
            trace: Some(trace),
            tid,
            fields,
        };
        st.push_record(rec);
        drop(st);
        TraceGuard { telemetry: self.clone(), owner: std::thread::current().id(), trace }
    }

    /// The trace active on the calling thread, if any.
    pub fn current_trace(&self) -> Option<u64> {
        let mut st = self.inner.state.lock().unwrap();
        st.ctx().traces.last().map(|s| s.trace)
    }

    /// Capture the calling thread's trace context for handoff to another
    /// thread. `None` when no trace is active.
    pub fn handoff(&self) -> Option<TraceHandoff> {
        let mut st = self.inner.state.lock().unwrap();
        let ctx = st.ctx();
        let trace = ctx.traces.last().map(|s| s.trace)?;
        let span = ctx.stack.last().map(|s| s.id);
        Some(TraceHandoff { trace, span })
    }

    /// Adopt a handed-off trace context on the current thread: the same
    /// trace continues here, and root spans opened under the guard carry a
    /// `follows_from` link back to the captured span — explicit cross-
    /// thread causality instead of a corrupted global stack.
    pub fn adopt(&self, h: TraceHandoff) -> TraceGuard {
        let mut st = self.inner.state.lock().unwrap();
        st.ctx().traces.push(TraceScope { trace: h.trace, follows_span: h.span });
        drop(st);
        TraceGuard { telemetry: self.clone(), owner: std::thread::current().id(), trace: h.trace }
    }

    // ----- events ------------------------------------------------------------

    /// Append a free-form event record to the journal, stamped with the
    /// calling thread's id and active trace.
    pub fn event(&self, name: &str, fields: &[(&str, JsonValue)]) {
        let at_ns = self.now_ns();
        let mut st = self.inner.state.lock().unwrap();
        let (tid, trace, parent) = stamp(&mut st);
        let rec = JournalRecord::Event {
            name: name.to_string(),
            at_ns,
            parent,
            trace,
            tid,
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        };
        st.push_record(rec);
    }

    // ----- flight recorder ---------------------------------------------------

    /// Resize the journal ring buffer. Shrinking evicts the oldest records
    /// (counted in `journal.dropped`).
    pub fn set_journal_capacity(&self, capacity: usize) {
        let mut st = self.inner.state.lock().unwrap();
        st.journal_capacity = capacity.max(1);
        while st.journal.len() > st.journal_capacity {
            st.journal.pop_front();
            *st.counters.entry("journal.dropped".into()).or_insert(0) += 1;
        }
    }

    /// The journal ring's current capacity in records.
    pub fn journal_capacity(&self) -> usize {
        self.inner.state.lock().unwrap().journal_capacity
    }

    /// Records evicted from the ring so far (the `journal.dropped`
    /// counter). A sink, if attached early, still holds them on disk.
    pub fn journal_dropped(&self) -> u64 {
        self.counter("journal.dropped")
    }

    /// Stream every subsequent journal record to a JSON-lines file as it is
    /// appended, so the in-memory ring can stay bounded while long runs
    /// keep full history on disk. Replaces any previous sink (flushing it
    /// first). Write failures bump `journal.sink_errors` and do not fail
    /// the instrumented operation.
    pub fn attach_sink(&self, path: &Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut st = self.inner.state.lock().unwrap();
        if let Some(mut old) = st.sink.take() {
            let _ = old.flush();
        }
        st.sink = Some(std::io::BufWriter::new(file));
        st.sink_records = 0;
        Ok(())
    }

    /// Flush the attached sink (no-op without one) and return how many
    /// records it has received since it was attached.
    pub fn flush_sink(&self) -> std::io::Result<u64> {
        let mut st = self.inner.state.lock().unwrap();
        if let Some(sink) = &mut st.sink {
            sink.flush()?;
        }
        Ok(st.sink_records)
    }

    /// Detach the sink, flushing it; returns the record count it received.
    pub fn detach_sink(&self) -> std::io::Result<u64> {
        let mut st = self.inner.state.lock().unwrap();
        let n = st.sink_records;
        if let Some(mut sink) = st.sink.take() {
            sink.flush()?;
        }
        st.sink_records = 0;
        Ok(n)
    }

    // ----- snapshot / journal ------------------------------------------------

    /// A deterministic point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let st = self.inner.state.lock().unwrap();
        MetricsSnapshot {
            counters: st.counters.clone(),
            histograms: st.histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        }
    }

    /// Embed the current metrics snapshot in the journal as a
    /// `metrics.snapshot` event, so an offline reader (`tse-inspect`) can
    /// report counters and histograms alongside the trace timeline.
    pub fn journal_metrics_snapshot(&self) {
        let snap = self.snapshot().to_json();
        self.event("metrics.snapshot", &[("snapshot", snap)]);
    }

    /// The journal records currently in the ring (oldest first). Under
    /// sustained load with a full ring this is the *tail* of history; the
    /// sink keeps the rest.
    pub fn journal(&self) -> Vec<JournalRecord> {
        self.inner.state.lock().unwrap().journal.iter().cloned().collect()
    }

    /// The in-ring journal serialised as JSON-lines (one object per line).
    pub fn journal_lines(&self) -> String {
        let st = self.inner.state.lock().unwrap();
        let mut out = String::new();
        for rec in &st.journal {
            out.push_str(&rec.to_json().render());
            out.push('\n');
        }
        out
    }

    /// Drop all recorded state (counters, histograms, journal ring). Open
    /// span guards and entered traces keep working; their records land in
    /// the fresh journal. An attached sink is left in place.
    pub fn reset(&self) {
        let mut st = self.inner.state.lock().unwrap();
        st.counters.clear();
        st.histograms.clear();
        st.journal.clear();
    }
}

/// Current thread's journal stamp: `(tid, active trace, innermost open span)`.
/// Falls back to the innermost open span's trace when no trace scope is
/// entered (a span guard held across a scope exit keeps attributing).
pub(crate) fn stamp(st: &mut State) -> (u64, Option<u64>, Option<u64>) {
    let ctx = st.ctx();
    let trace = ctx.traces.last().map(|s| s.trace).or_else(|| ctx.stack.last().and_then(|s| s.trace));
    (ctx.tid, trace, ctx.stack.last().map(|s| s.id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let t = Telemetry::new();
        t.incr("op.create", 1);
        t.incr("op.create", 2);
        t.set_gauge("store.pages", 7);
        assert_eq!(t.counter("op.create"), 3);
        assert_eq!(t.counter("store.pages"), 7);
        assert_eq!(t.counter("missing"), 0);
        let snap = t.snapshot();
        assert_eq!(snap.counters["op.create"], 3);
    }

    #[test]
    fn time_feeds_histogram() {
        let t = Telemetry::new();
        let v = t.time("h", || 41 + 1);
        assert_eq!(v, 42);
        let snap = t.snapshot();
        assert_eq!(snap.histograms["h"].count, 1);
        assert!(snap.histograms["h"].sum > 0);
    }

    #[test]
    fn reset_clears_everything() {
        let t = Telemetry::new();
        t.incr("c", 1);
        t.observe_ns("h", 5);
        t.event("e", &[]);
        t.reset();
        let snap = t.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
        assert!(t.journal().is_empty());
    }

    #[test]
    fn ring_buffer_bounds_memory_and_counts_drops() {
        let t = Telemetry::with_capacity(8);
        for i in 0..20u64 {
            t.event("e", &[("i", i.into())]);
        }
        let journal = t.journal();
        assert_eq!(journal.len(), 8, "ring bounded at capacity");
        assert_eq!(t.journal_dropped(), 12, "evictions counted");
        // The ring holds the *newest* records.
        match &journal[0] {
            JournalRecord::Event { fields, .. } => {
                assert_eq!(fields[0].1, JsonValue::U64(12));
            }
            other => panic!("expected event, got {other:?}"),
        }
    }

    #[test]
    fn shrinking_capacity_evicts_and_counts() {
        let t = Telemetry::with_capacity(16);
        for _ in 0..10 {
            t.event("e", &[]);
        }
        t.set_journal_capacity(4);
        assert_eq!(t.journal().len(), 4);
        assert_eq!(t.journal_dropped(), 6);
        assert_eq!(t.journal_capacity(), 4);
    }

    #[test]
    fn sink_receives_all_records_past_ring_capacity() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tse_sink_test_{}.jsonl", std::process::id()));
        let t = Telemetry::with_capacity(4);
        t.attach_sink(&path).unwrap();
        for i in 0..33u64 {
            t.event("e", &[("i", i.into())]);
        }
        let sunk = t.detach_sink().unwrap();
        assert_eq!(sunk, 33, "sink saw every record");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::json::validate_lines(&text).unwrap(), 33);
        assert_eq!(t.journal().len(), 4);
        assert_eq!(t.journal_dropped() + t.journal().len() as u64, 33);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failing_sink_detaches_after_one_retry_and_journaling_survives() {
        // /dev/full fails every flushed write with ENOSPC (Linux); skip
        // elsewhere.
        let full = std::path::Path::new("/dev/full");
        if !full.exists() {
            return;
        }
        let t = Telemetry::new();
        t.attach_sink(full).unwrap();
        // Enough bytes to force the BufWriter to hit the device.
        let pad = "x".repeat(512);
        for _ in 0..64 {
            t.event("spam", &[("pad", pad.as_str().into())]);
        }
        assert_eq!(t.counter("journal.sink_detached"), 1, "sink detaches exactly once");
        assert!(t.counter("journal.sink_errors") >= 2, "first failure retried before detach");
        assert!(t.journal_lines().contains("journal.sink_detached"));
        // Ring-only journaling keeps working after the detach.
        t.event("after_detach", &[]);
        assert!(t.journal_lines().contains("after_detach"));
    }

    #[test]
    fn tid_is_stable_across_context_gc() {
        let t = Telemetry::new();
        // Each enter/exit cycle empties and GCs the thread's heavy context;
        // the dense tid must survive the churn.
        let tid_of = |t: &Telemetry| {
            let tr = t.mint_trace("probe");
            let g = t.enter_trace(tr);
            t.event("probe", &[]);
            drop(g);
            t.journal().last().unwrap().tid()
        };
        let first = tid_of(&t);
        let again = tid_of(&t);
        assert_eq!(first, again, "tid changed after context GC");
        // A different thread still gets its own distinct tid.
        let t2 = t.clone();
        let other = std::thread::spawn(move || tid_of(&t2)).join().unwrap();
        assert_ne!(first, other);
    }

    #[test]
    fn trace_mint_enter_and_stamping() {
        let t = Telemetry::new();
        assert_eq!(t.current_trace(), None);
        let tr = t.mint_trace("session");
        {
            let guard = t.enter_trace(tr);
            assert_eq!(guard.trace(), tr);
            assert_eq!(t.current_trace(), Some(tr));
            t.event("inside", &[]);
        }
        assert_eq!(t.current_trace(), None);
        t.event("outside", &[]);
        let journal = t.journal();
        // trace.begin, inside, outside.
        assert_eq!(journal.len(), 3);
        match &journal[1] {
            JournalRecord::Event { name, trace, .. } => {
                assert_eq!(name, "inside");
                assert_eq!(*trace, Some(tr));
            }
            other => panic!("expected event, got {other:?}"),
        }
        match &journal[2] {
            JournalRecord::Event { trace, .. } => assert_eq!(*trace, None),
            other => panic!("expected event, got {other:?}"),
        }
    }

    #[test]
    fn ensure_trace_reuses_and_new_trace_links() {
        let t = Telemetry::new();
        let outer = t.ensure_trace("evolve");
        let inner = t.ensure_trace("evolve");
        assert_eq!(outer.trace(), inner.trace(), "ensure_trace reuses the active trace");
        let fresh = t.new_trace("autocheckpoint");
        assert_ne!(fresh.trace(), outer.trace());
        let journal = t.journal();
        // One trace.begin from ensure_trace's mint, one from new_trace.
        let begins: Vec<_> = journal
            .iter()
            .filter(|r| r.name() == "trace.begin")
            .collect();
        assert_eq!(begins.len(), 2);
        match begins[1] {
            JournalRecord::Event { fields, .. } => {
                assert!(fields.iter().any(|(k, v)| {
                    k == "follows_from_trace" && *v == JsonValue::U64(outer.trace())
                }));
            }
            other => panic!("expected event, got {other:?}"),
        }
    }

    #[test]
    fn slow_op_log_fires_over_threshold_with_waits() {
        let t = Telemetry::new();
        t.set_slow_op_threshold_ns(1000);
        t.observe_ns("lock.stripe_wait_ns", 77);
        t.observe_op("fast", 999);
        assert_eq!(t.counter("slow_op.count"), 0, "below threshold: no event");
        t.observe_ns("lock.stripe_wait_ns", 500);
        t.observe_ns("lock.stripe_wait_ns", 11);
        t.observe_op("slow", 5000);
        assert_eq!(t.counter("slow_op.count"), 1);
        let journal = t.journal();
        let slow = journal.iter().find(|r| r.name() == "slow_op").expect("slow_op event");
        match slow {
            JournalRecord::Event { fields, .. } => {
                assert!(fields.iter().any(|(k, v)| k == "op" && *v == JsonValue::Str("slow".into())));
                assert!(fields.iter().any(|(k, v)| k == "dur_ns" && *v == JsonValue::U64(5000)));
                // Waits drained by the earlier fast op do not leak in; only
                // the 500+11 accumulated since then are attributed.
                assert!(fields
                    .iter()
                    .any(|(k, v)| k == "lock.stripe_wait_ns" && *v == JsonValue::U64(511)));
            }
            other => panic!("expected event, got {other:?}"),
        }
        // op counter and latency histogram still fed.
        assert_eq!(t.counter("op.slow"), 1);
        assert_eq!(t.snapshot().histograms["latency.slow"].count, 1);
    }

    #[test]
    fn handoff_and_adopt_cross_threads() {
        let t = Telemetry::new();
        let tr = t.mint_trace("pipeline");
        let _guard = t.enter_trace(tr);
        let root = t.span("stage1");
        let h = t.handoff().expect("trace active");
        assert_eq!(h.trace, tr);
        let t2 = t.clone();
        std::thread::spawn(move || {
            let _g = t2.adopt(h);
            let _s = t2.span("stage2");
        })
        .join()
        .unwrap();
        root.finish();
        let journal = t.journal();
        let stage2 = journal
            .iter()
            .find(|r| r.name() == "stage2")
            .expect("adopted thread's span journaled");
        match stage2 {
            JournalRecord::Span { trace, parent, follows_from, .. } => {
                assert_eq!(*trace, Some(tr), "same trace continues on the adopting thread");
                assert_eq!(*parent, None, "no fake same-thread parent");
                assert!(follows_from.is_some(), "explicit follows_from link");
            }
            other => panic!("expected span, got {other:?}"),
        }
    }
}
