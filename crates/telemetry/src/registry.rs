//! Point-in-time snapshots of the metrics registry.

use std::collections::BTreeMap;

use crate::hist::HistogramSnapshot;
use crate::json::JsonValue;

/// Deterministic copy of every counter/gauge and histogram, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter/gauge values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Serialise to one JSON object:
    /// `{"counters": {...}, "histograms": {name: {count, sum, min, max,
    /// mean, buckets: [[le, n], ...]}}}`.
    pub fn to_json(&self) -> JsonValue {
        let counters = crate::json::counters_obj(&self.counters);
        let histograms = JsonValue::Obj(
            self.histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        JsonValue::obj(vec![
                            ("count", h.count.into()),
                            ("sum", h.sum.into()),
                            ("min", h.min.into()),
                            ("max", h.max.into()),
                            ("mean", h.mean().into()),
                            (
                                "buckets",
                                JsonValue::Arr(
                                    h.buckets
                                        .iter()
                                        .map(|(le, n)| {
                                            JsonValue::Arr(vec![(*le).into(), (*n).into()])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        JsonValue::obj(vec![("counters", counters), ("histograms", histograms)])
    }

    /// The counters another snapshot gained relative to this one
    /// (saturating; disappeared counters report 0).
    pub fn counter_delta(&self, later: &MetricsSnapshot) -> BTreeMap<String, u64> {
        later
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.saturating_sub(self.counter(k))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn snapshot_is_deterministic_and_json_valid() {
        let build = || {
            let t = Telemetry::new();
            t.incr("b", 2);
            t.incr("a", 1);
            t.observe_ns("h", 100);
            t.observe_ns("h", 5);
            t.snapshot()
        };
        let (s1, s2) = (build(), build());
        assert_eq!(s1, s2, "identical runs produce identical snapshots");
        let text = s1.to_json().render();
        let parsed = crate::json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("counters").unwrap().get("a").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            parsed.get("histograms").unwrap().get("h").unwrap().get("count").unwrap().as_u64(),
            Some(2)
        );
    }

    #[test]
    fn counter_delta_saturates() {
        let t = Telemetry::new();
        t.incr("x", 5);
        let before = t.snapshot();
        t.incr("x", 3);
        t.incr("y", 1);
        let after = t.snapshot();
        let delta = before.counter_delta(&after);
        assert_eq!(delta["x"], 3);
        assert_eq!(delta["y"], 1);
        // Reversed order saturates to zero rather than underflowing.
        assert_eq!(after.counter_delta(&before)["x"], 0);
    }
}
