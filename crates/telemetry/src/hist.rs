//! Log₂-bucket histograms.
//!
//! Bucket `i` holds observations `v` with `floor(log2(v)) + 1 == i`, i.e.
//! bucket 0 holds only `v == 0`, bucket 1 holds `v == 1`, bucket 2 holds
//! `2..=3`, bucket 3 holds `4..=7`, … — 65 buckets cover the whole `u64`
//! domain. Cheap enough for per-operation latency recording on the data
//! plane, and deterministic (no sampling).

/// One log₂ histogram: counts per bucket plus running aggregates.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// Which bucket a value lands in.
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`None` for the last, unbounded-ish
/// bucket whose bound is `u64::MAX`).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Point-in-time copy with only the populated buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| (bucket_upper_bound(i), *c))
                .collect(),
        }
    }
}

/// Immutable view of a [`Histogram`]: `(inclusive upper bound, count)` per
/// populated bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (saturating).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// `(inclusive upper bound, count)` for each populated bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // v == 0 is its own bucket.
        assert_eq!(bucket_index(0), 0);
        // Exact powers of two open a new bucket; one less closes the prior.
        for shift in 0..63u32 {
            let p = 1u64 << shift;
            assert_eq!(bucket_index(p), shift as usize + 1, "2^{shift}");
            if p > 1 {
                assert_eq!(bucket_index(p - 1), shift as usize, "2^{shift}-1");
            }
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        // Upper bounds match the index function.
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn record_and_snapshot() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        // 0 -> b0; 1 -> b1; 2,3 -> b2; 4 -> b3; 1000 -> b10 (513..=1023).
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1)]);
        assert!((s.mean() - 1010.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = Histogram::default().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }
}
