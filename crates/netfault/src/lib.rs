//! # tse-netfault — a deterministic fault-injecting TCP proxy
//!
//! A std-only, wire-level chaos proxy: it listens on an ephemeral local
//! port, forwards every connection to an upstream address, and injects
//! faults *between* the peers — per-chunk delay, byte-at-a-time
//! fragmentation, hard severs, and black holes (the connection stays open
//! but bytes stop flowing). Both transfer directions pass through the
//! same fault plan, so a lost server ack and a lost client request are
//! equally likely.
//!
//! Faults follow the `FailpointRegistry` determinism discipline from
//! `tse-storage`: every connection's [`FaultPlan`] is a pure function of
//! `(seed, connection index)` via SplitMix64, so a failing chaos run
//! replays bit-identically from its seed — no wall-clock or OS entropy in
//! the schedule. (The *timing* of delivery still depends on the scheduler;
//! what is deterministic is which connection gets which fault, where the
//! sever/black-hole trigger points sit, and how chunks are fragmented.)
//!
//! ```no_run
//! use tse_netfault::{ChaosConfig, NetFault};
//!
//! let proxy = NetFault::start("127.0.0.1:7421", ChaosConfig::seeded(9)).unwrap();
//! let addr = proxy.addr(); // point clients here instead of the server
//! // ... drive load through `addr` ...
//! let stats = proxy.stop();
//! assert!(stats.connections > 0);
//! ```

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Which faults the proxy injects, and how often. All rates are
/// "1-in-N connections" (0 disables the fault class entirely).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the per-connection fault plans.
    pub seed: u64,
    /// 1-in-N connections are severed (both sockets shut down) once their
    /// total forwarded bytes pass a seeded trigger point.
    pub sever_one_in: u32,
    /// 1-in-N connections are black-holed: past the trigger point the
    /// connection stays open but bytes are silently swallowed, so the
    /// peer's only escape is its own deadline.
    pub black_hole_one_in: u32,
    /// 1-in-N connections forward byte-at-a-time (worst-case
    /// fragmentation for the peer's frame reassembly).
    pub fragment_one_in: u32,
    /// Every connection delays each forwarded chunk by a seeded amount in
    /// `0..=max_delay_ms` milliseconds.
    pub max_delay_ms: u64,
    /// Sever/black-hole trigger points fall within the first
    /// `64..64 + trigger_window_bytes` forwarded bytes.
    pub trigger_window_bytes: u64,
}

impl ChaosConfig {
    /// The standard chaos mix at `seed`: frequent severs, occasional
    /// black holes, heavy fragmentation, small delays.
    pub fn seeded(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            sever_one_in: 3,
            black_hole_one_in: 7,
            fragment_one_in: 4,
            max_delay_ms: 2,
            trigger_window_bytes: 4096,
        }
    }

    /// A fault-free passthrough (plumbing tests).
    pub fn quiet() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            sever_one_in: 0,
            black_hole_one_in: 0,
            fragment_one_in: 0,
            max_delay_ms: 0,
            trigger_window_bytes: 4096,
        }
    }
}

/// The faults one proxied connection will experience, derived
/// deterministically from `(config.seed, connection index)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Delay applied to every forwarded chunk, milliseconds.
    pub delay_ms: u64,
    /// Forward one byte per write call.
    pub fragment: bool,
    /// Shut the connection down hard after this many total bytes.
    pub sever_after_bytes: Option<u64>,
    /// Swallow bytes (connection stays open) after this many total bytes.
    pub black_hole_after_bytes: Option<u64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The plan for the `index`-th accepted connection under `config`.
    /// Pure: same seed and index, same plan — a chaos run replays from
    /// its seed.
    pub fn derive(config: &ChaosConfig, index: u64) -> FaultPlan {
        let mut state = config.seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
        let roll = |state: &mut u64, one_in: u32| -> bool {
            one_in > 0 && splitmix64(state).is_multiple_of(one_in as u64)
        };
        let trigger = |state: &mut u64, window: u64| -> u64 {
            64 + splitmix64(state) % window.max(1)
        };
        let delay_ms = if config.max_delay_ms > 0 {
            splitmix64(&mut state) % (config.max_delay_ms + 1)
        } else {
            0
        };
        let fragment = roll(&mut state, config.fragment_one_in);
        let sever = roll(&mut state, config.sever_one_in)
            .then(|| trigger(&mut state, config.trigger_window_bytes));
        let black_hole = roll(&mut state, config.black_hole_one_in)
            .then(|| trigger(&mut state, config.trigger_window_bytes));
        FaultPlan {
            delay_ms,
            fragment,
            sever_after_bytes: sever,
            black_hole_after_bytes: black_hole,
        }
    }
}

/// Counters for a finished (or running) proxy.
#[derive(Debug, Default, Clone)]
pub struct NetFaultStats {
    /// Connections accepted and proxied.
    pub connections: u64,
    /// Connections severed by their fault plan.
    pub severed: u64,
    /// Connections that hit their black-hole trigger.
    pub black_holed: u64,
    /// Connections forwarded byte-at-a-time.
    pub fragmented: u64,
    /// Total bytes forwarded (both directions, pre-fault).
    pub forwarded_bytes: u64,
}

#[derive(Default)]
struct StatsCells {
    connections: AtomicU64,
    severed: AtomicU64,
    black_holed: AtomicU64,
    fragmented: AtomicU64,
    forwarded_bytes: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> NetFaultStats {
        NetFaultStats {
            connections: self.connections.load(Ordering::SeqCst),
            severed: self.severed.load(Ordering::SeqCst),
            black_holed: self.black_holed.load(Ordering::SeqCst),
            fragmented: self.fragmented.load(Ordering::SeqCst),
            forwarded_bytes: self.forwarded_bytes.load(Ordering::SeqCst),
        }
    }
}

/// Both sockets of one proxied connection, so either pump direction (or
/// the fault plan) can sever the whole pair.
struct ConnPair {
    down: TcpStream,
    up: TcpStream,
    severed: AtomicBool,
}

impl ConnPair {
    fn sever(&self) {
        if !self.severed.swap(true, Ordering::SeqCst) {
            let _ = self.down.shutdown(Shutdown::Both);
            let _ = self.up.shutdown(Shutdown::Both);
        }
    }
}

struct ProxyShared {
    upstream: String,
    config: ChaosConfig,
    stopping: AtomicBool,
    next_conn: AtomicU64,
    stats: StatsCells,
    conns: Mutex<Vec<Arc<ConnPair>>>,
    pumps: Mutex<Vec<JoinHandle<()>>>,
}

/// A running fault-injecting proxy. Point clients at [`NetFault::addr`];
/// call [`NetFault::stop`] to tear everything down and collect stats.
pub struct NetFault {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept: Option<JoinHandle<()>>,
}

impl NetFault {
    /// Bind an ephemeral local port and proxy every connection to
    /// `upstream` under `config`'s fault schedule.
    pub fn start(upstream: impl Into<String>, config: ChaosConfig) -> std::io::Result<NetFault> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            upstream: upstream.into(),
            config,
            stopping: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            stats: StatsCells::default(),
            conns: Mutex::new(Vec::new()),
            pumps: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("netfault-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(NetFault { addr, shared, accept: Some(accept) })
    }

    /// The proxy's listen address — where clients should connect.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time view of the counters while the proxy runs.
    pub fn stats(&self) -> NetFaultStats {
        self.shared.stats.snapshot()
    }

    /// Stop accepting, sever every live connection, join all threads, and
    /// return the final counters.
    pub fn stop(mut self) -> NetFaultStats {
        self.shutdown();
        self.shared.stats.snapshot()
    }

    fn shutdown(&mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway self-connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for conn in self.shared.conns.lock().unwrap().drain(..) {
            conn.sever();
        }
        let pumps = std::mem::take(&mut *self.shared.pumps.lock().unwrap());
        for pump in pumps {
            let _ = pump.join();
        }
    }
}

impl Drop for NetFault {
    fn drop(&mut self) {
        if !self.shared.stopping.load(Ordering::SeqCst) {
            self.shutdown();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ProxyShared>) {
    loop {
        let down = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let index = shared.next_conn.fetch_add(1, Ordering::SeqCst);
        let plan = FaultPlan::derive(&shared.config, index);
        let up = match TcpStream::connect(&shared.upstream) {
            Ok(up) => up,
            Err(_) => continue, // upstream down: the client sees a drop
        };
        let _ = down.set_nodelay(true);
        let _ = up.set_nodelay(true);
        shared.stats.connections.fetch_add(1, Ordering::SeqCst);
        if plan.fragment {
            shared.stats.fragmented.fetch_add(1, Ordering::SeqCst);
        }
        let pair = match (down.try_clone(), up.try_clone()) {
            (Ok(d), Ok(u)) => {
                Arc::new(ConnPair { down: d, up: u, severed: AtomicBool::new(false) })
            }
            _ => continue,
        };
        shared.conns.lock().unwrap().push(Arc::clone(&pair));
        // Sever/black-hole trigger on *combined* bytes across directions,
        // so a fault can land between a request and its ack — the
        // lost-ack case idempotent retries exist for.
        let transferred = Arc::new(AtomicU64::new(0));
        let spawn_pump = |src: TcpStream, dst: TcpStream, name: String| {
            let shared = Arc::clone(&shared);
            let pair = Arc::clone(&pair);
            let plan = plan.clone();
            let transferred = Arc::clone(&transferred);
            std::thread::Builder::new()
                .name(name)
                .spawn(move || pump(src, dst, plan, pair, transferred, shared))
        };
        let c2s = spawn_pump(down, up.try_clone().expect("cloned above"), format!("nf-c2s-{index}"));
        let s2c = spawn_pump(up, pair.down.try_clone().expect("cloned above"), format!("nf-s2c-{index}"));
        let mut pumps = shared.pumps.lock().unwrap();
        for handle in [c2s, s2c].into_iter().flatten() {
            pumps.push(handle);
        }
    }
}

/// Forward `src` → `dst` through the fault plan until EOF, error, or
/// sever. Black-holed connections keep reading (so the peer never sees
/// backpressure) but stop forwarding.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    plan: FaultPlan,
    pair: Arc<ConnPair>,
    transferred: Arc<AtomicU64>,
    shared: Arc<ProxyShared>,
) {
    let mut buf = [0u8; 4096];
    let mut black_holed = false;
    loop {
        if pair.severed.load(Ordering::SeqCst) {
            break;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let total = transferred.fetch_add(n as u64, Ordering::SeqCst) + n as u64;
        shared.stats.forwarded_bytes.fetch_add(n as u64, Ordering::SeqCst);
        if let Some(limit) = plan.sever_after_bytes {
            if total >= limit {
                shared.stats.severed.fetch_add(1, Ordering::SeqCst);
                pair.sever();
                break;
            }
        }
        if let Some(limit) = plan.black_hole_after_bytes {
            if total >= limit && !black_holed {
                black_holed = true;
                shared.stats.black_holed.fetch_add(1, Ordering::SeqCst);
            }
        }
        if black_holed {
            continue; // swallow silently; the peer's deadline is its way out
        }
        if plan.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(plan.delay_ms));
        }
        let write_result = if plan.fragment {
            buf[..n].iter().try_for_each(|b| dst.write_all(std::slice::from_ref(b)))
        } else {
            dst.write_all(&buf[..n])
        };
        if write_result.and_then(|()| dst.flush()).is_err() {
            break;
        }
    }
    // Half-close the destination so the peer sees EOF once this
    // direction is done (unless black-holed: the hole stays silent).
    if !black_holed {
        let _ = dst.shutdown(Shutdown::Write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An upstream that echoes every byte back, one thread per connection.
    fn echo_upstream() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            while let Ok((mut conn, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    loop {
                        match conn.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                if conn.write_all(&buf[..n]).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn quiet_proxy_is_a_transparent_passthrough() {
        let (upstream, _echo) = echo_upstream();
        let proxy = NetFault::start(upstream.to_string(), ChaosConfig::quiet()).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        let payload: Vec<u8> = (0..512u32).map(|i| (i % 251) as u8).collect();
        conn.write_all(&payload).unwrap();
        let mut back = vec![0u8; payload.len()];
        conn.read_exact(&mut back).unwrap();
        assert_eq!(back, payload);
        drop(conn);
        let stats = proxy.stop();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.severed, 0);
        assert!(stats.forwarded_bytes >= 2 * payload.len() as u64);
    }

    #[test]
    fn fault_plans_are_deterministic_in_the_seed() {
        let config = ChaosConfig::seeded(9);
        for index in 0..64 {
            assert_eq!(
                FaultPlan::derive(&config, index),
                FaultPlan::derive(&config, index),
                "plan for connection {index} must be stable"
            );
        }
        // A different seed produces a different schedule somewhere.
        let other = ChaosConfig::seeded(10);
        assert!(
            (0..64).any(|i| FaultPlan::derive(&config, i) != FaultPlan::derive(&other, i)),
            "seeds 9 and 10 produced identical 64-connection schedules"
        );
        // The standard mix actually exercises every fault class.
        let plans: Vec<FaultPlan> =
            (0..64).map(|i| FaultPlan::derive(&config, i)).collect();
        assert!(plans.iter().any(|p| p.sever_after_bytes.is_some()));
        assert!(plans.iter().any(|p| p.black_hole_after_bytes.is_some()));
        assert!(plans.iter().any(|p| p.fragment));
    }

    #[test]
    fn fragmented_forwarding_preserves_every_byte_in_order() {
        let (upstream, _echo) = echo_upstream();
        let mut config = ChaosConfig::quiet();
        config.fragment_one_in = 1; // fragment every connection
        let proxy = NetFault::start(upstream.to_string(), config).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        let payload: Vec<u8> = (0..2000u32).map(|i| (i % 241) as u8).collect();
        conn.write_all(&payload).unwrap();
        let mut back = vec![0u8; payload.len()];
        conn.read_exact(&mut back).unwrap();
        assert_eq!(back, payload);
        drop(conn);
        assert_eq!(proxy.stop().fragmented, 1);
    }

    #[test]
    fn severed_connections_die_and_are_counted() {
        let (upstream, _echo) = echo_upstream();
        let mut config = ChaosConfig::quiet();
        config.sever_one_in = 1; // sever every connection...
        config.trigger_window_bytes = 1; // ...almost immediately (≥ 64 bytes)
        let proxy = NetFault::start(upstream.to_string(), config).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        let chunk = [7u8; 64];
        // Keep writing until the sever surfaces; reads must never hand
        // back data after the cut.
        let mut died = false;
        for _ in 0..1000 {
            if conn.write_all(&chunk).is_err() {
                died = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        if !died {
            // The write side may outlive the cut in the OS buffer; the
            // read side must still observe the sever.
            let mut byte = [0u8; 1];
            died = matches!(conn.read(&mut byte), Ok(0) | Err(_));
        }
        assert!(died, "connection survived a mandatory sever");
        let stats = proxy.stop();
        assert_eq!(stats.severed, 1);
    }
}
