//! End-to-end service-layer tests: multi-user tenancy over the wire,
//! pinned reads across a live evolution, graceful drain with in-flight
//! requests, admission control, and error-code parity between the
//! in-process and remote transports.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tse_core::{
    SharedSystem, TseClient, TseCode, TseReader, TseSystem, TseWriter,
};
use tse_netfault::{ChaosConfig, NetFault};
use tse_object_model::{PropertyDef, Value, ValueType};
use tse_server::proto::{
    decode_response, encode_request, read_frame, write_frame, Request, Response,
};
use tse_server::{ClientConfig, RemoteClient, ServerConfig, TseServer};
use tse_storage::{FailAction, RetryPolicy};

/// A unique, empty scratch directory per test.
fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tse_server_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(sys: SharedSystem, config: ServerConfig) -> TseServer {
    TseServer::start(sys, "127.0.0.1:0", config).unwrap()
}

/// Define the Person schema and the admin's "VS" view through the wire.
fn seed_remote(admin: &RemoteClient) {
    admin
        .define_class(
            "Person",
            &[],
            vec![
                PropertyDef::stored("name", ValueType::Str, Value::Null),
                PropertyDef::stored("age", ValueType::Int, Value::Int(0)),
            ],
        )
        .unwrap();
    assert_eq!(admin.create_view(&["Person"]).unwrap(), 1);
}

#[test]
fn users_are_tenants_bound_to_their_view_families() {
    let mut server = start(SharedSystem::new(), ServerConfig::default());
    let addr = server.addr().to_string();

    // "VS" is both a user identity and the view family it owns.
    let admin = RemoteClient::open(addr.clone(), "VS").unwrap();
    seed_remote(&admin);
    let w = admin.writer().unwrap();
    let ann = w.create("Person", &[("name", "ann".into()), ("age", Value::Int(30))]).unwrap();

    // A second user starts in their own (empty) family and re-binds.
    let mut legacy = RemoteClient::open(addr.clone(), "legacy").unwrap();
    assert_eq!(legacy.versions().unwrap(), 0);
    assert_eq!(legacy.bind("VS").unwrap(), 1);
    let r = legacy.session().unwrap();
    assert_eq!(r.get(ann, "Person", "name").unwrap(), Value::Str("ann".into()));
    assert_eq!(r.select_where("Person", "age == 30").unwrap(), vec![ann]);
    assert!(admin.describe().unwrap().contains("version 1"));

    // The admin evolves; only the admin's binding moves to v2.
    let summary = admin.evolve("add_attribute rank: int = 5 to Person").unwrap();
    assert_eq!(summary.version, 2);
    let modern = admin.session().unwrap();
    assert_eq!(modern.view_version(), 2);
    assert_eq!(modern.get(ann, "Person", "rank").unwrap(), Value::Int(5));

    let still_v1 = legacy.session().unwrap();
    assert_eq!(still_v1.view_version(), 1);
    let err = still_v1.get(ann, "Person", "rank").unwrap_err();
    assert_eq!(err.code(), TseCode::NotFound);

    drop((r, modern, still_v1, w, admin, legacy));
    server.drain();
}

#[test]
fn pinned_reader_survives_evolution_until_it_completes() {
    let mut server = start(SharedSystem::new(), ServerConfig::default());
    let addr = server.addr().to_string();
    let admin = RemoteClient::open(addr.clone(), "VS").unwrap();
    seed_remote(&admin);
    let w = admin.writer().unwrap();
    for i in 0..5 {
        w.create("Person", &[("name", format!("p{i}").into()), ("age", Value::Int(i))])
            .unwrap();
    }

    // Reader opened (and epoch-pinned) before the evolution.
    let mut legacy = RemoteClient::open(addr, "reader").unwrap();
    legacy.bind("VS").unwrap();
    let mut pinned = legacy.session().unwrap();
    assert_eq!(pinned.extent("Person").unwrap().len(), 5);

    admin.evolve("add_attribute rank: int = 1 to Person").unwrap();
    w.create("Person", &[("name", "post".into()), ("age", Value::Int(99))]).unwrap();

    // The evolution did not sever the connection, and the pinned handle
    // keeps its pre-swap view and data epoch: the post-evolve object and
    // the new attribute are both invisible.
    assert_eq!(pinned.extent("Person").unwrap().len(), 5, "pinned reader must not see churn");
    let some = pinned.extent("Person").unwrap()[0];
    assert_eq!(pinned.get(some, "Person", "rank").unwrap_err().code(), TseCode::NotFound);

    // refresh() advances the data epoch, never the bound view version.
    pinned.refresh().unwrap();
    assert_eq!(pinned.extent("Person").unwrap().len(), 6);
    assert_eq!(pinned.view_version(), 1);

    drop((pinned, w, admin, legacy));
    server.drain();
}

#[test]
fn drain_finishes_in_flight_requests_and_refuses_new_connections() {
    let mut server = start(SharedSystem::new(), ServerConfig::default());
    let addr = server.addr().to_string();
    let admin = RemoteClient::open(addr.clone(), "VS").unwrap();
    seed_remote(&admin);
    let w = admin.writer().unwrap();
    for i in 0..50 {
        w.create("Person", &[("name", format!("p{i}").into())]).unwrap();
    }

    // A loop of sequential extents races the drain. Every call must either
    // return the complete, correct extent or a clean connection error —
    // a short or corrupt response would decode as Protocol garbage.
    let stop = Arc::new(AtomicBool::new(false));
    let stop_reader = Arc::clone(&stop);
    let reader_addr = addr.clone();
    let reads = std::thread::spawn(move || {
        let mut rc = RemoteClient::open(reader_addr, "looper").unwrap();
        rc.bind("VS").unwrap();
        let session = rc.session().unwrap();
        let mut complete = 0u32;
        while !stop_reader.load(Ordering::SeqCst) {
            match session.extent("Person") {
                Ok(oids) => {
                    assert_eq!(oids.len(), 50, "drained mid-response: torn extent");
                    complete += 1;
                }
                Err(e) => {
                    // Connection closed by drain — must be a transport
                    // error, never a mis-framed payload.
                    assert_eq!(e.code(), TseCode::Io, "unexpected failure: {e}");
                    break;
                }
            }
        }
        complete
    });
    // Let the loop get going, then drain underneath it.
    while server.active_connections() < 2 {
        std::thread::yield_now();
    }
    std::thread::sleep(std::time::Duration::from_millis(30));
    server.drain();
    stop.store(true, Ordering::SeqCst);
    let complete = reads.join().unwrap();
    assert!(complete > 0, "no request completed before the drain");

    // Post-drain connections are refused outright.
    assert!(RemoteClient::open(addr, "late").is_err());
}

#[test]
fn admission_cap_returns_typed_retry() {
    let config =
        ServerConfig { max_connections: 1, retry_after_ms: 42, ..ServerConfig::default() };
    let mut server = start(SharedSystem::new(), config);
    let addr = server.addr().to_string();

    let held = RemoteClient::open(addr.clone(), "one").unwrap();
    held.ping().unwrap();

    let err = RemoteClient::open(addr.clone(), "two").err().expect("cap must refuse");
    assert_eq!(err.code(), TseCode::Unavailable);
    assert_eq!(err.retry_after_ms(), 42);

    // The slot frees once the first client leaves.
    drop(held);
    while server.active_connections() > 0 {
        std::thread::yield_now();
    }
    let ok = RemoteClient::open(addr, "two").unwrap();
    ok.ping().unwrap();
    drop(ok);
    server.drain();
}

#[test]
fn requests_before_hello_are_rejected() {
    let mut server = start(SharedSystem::new(), ServerConfig::default());
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut raw, &encode_request(&Request::OpenReader)).unwrap();
    let frame = read_frame(&mut raw).unwrap().unwrap();
    match decode_response(&frame).unwrap() {
        Response::Err { code, .. } => {
            assert_eq!(TseCode::from_u16(code), TseCode::FailedPrecondition)
        }
        other => panic!("expected Err, got {other:?}"),
    }
    drop(raw);
    server.drain();
}

#[test]
fn client_rides_out_repeated_severs_with_exactly_once_writes() {
    let mut server = start(SharedSystem::new(), ServerConfig::default());
    let addr = server.addr().to_string();
    let admin = RemoteClient::open(addr.clone(), "VS").unwrap();
    seed_remote(&admin);

    // Every proxied connection is severed shortly after it starts talking,
    // so the client must redial, re-Hello, re-bind, and re-open its
    // handles over and over — while each acked write applies exactly once.
    let chaos = ChaosConfig {
        seed: 7,
        sever_one_in: 1,
        black_hole_one_in: 0,
        fragment_one_in: 0,
        max_delay_ms: 0,
        trigger_window_bytes: 512,
    };
    let proxy = NetFault::start(addr.clone(), chaos).unwrap();
    let telemetry = tse_telemetry::Telemetry::new();
    let config = ClientConfig {
        retry: RetryPolicy {
            max_retries: 16,
            base_backoff_ns: 1_000_000,
            max_backoff_ns: 10_000_000,
        },
        read_timeout_ms: 2_000,
        connect_timeout_ms: 1_000,
        telemetry: Some(telemetry.clone()),
        ..ClientConfig::default()
    };
    let mut hammer =
        RemoteClient::open_with(proxy.addr().to_string(), "hammer", config).unwrap();
    hammer.bind("VS").unwrap();
    let writer = hammer.writer().unwrap();
    let mut reader = hammer.session().unwrap();
    for i in 0..15 {
        writer.create("Person", &[("name", format!("h{i}").into())]).unwrap();
        // Interleave reads so handle re-establishment is exercised on
        // both the reader and the writer slot. A refresh advances the
        // pinned data epoch, so every acked create so far must be
        // visible — exactly once each, even when the ack was retried.
        reader.refresh().unwrap();
        assert_eq!(reader.extent("Person").unwrap().len(), i + 1);
    }
    drop((reader, writer, hammer));
    let stats = proxy.stop();
    assert!(stats.severed > 0, "the proxy never severed: test proved nothing");
    assert!(telemetry.counter("client.reconnects") > 0, "no reconnect happened");

    // Audit through a clean direct connection: 15 objects, each exactly once.
    let names: Vec<String> = {
        let audit = admin.session().unwrap();
        audit
            .extent("Person")
            .unwrap()
            .iter()
            .map(|&oid| match audit.get(oid, "Person", "name").unwrap() {
                Value::Str(s) => s,
                other => panic!("non-string name {other:?}"),
            })
            .collect()
    };
    assert_eq!(names.len(), 15, "acked-write loss or duplication: {names:?}");
    for i in 0..15 {
        let expected = format!("h{i}");
        assert_eq!(
            names.iter().filter(|n| **n == expected).count(),
            1,
            "{expected} must appear exactly once in {names:?}"
        );
    }

    drop(admin);
    server.drain();
}

#[test]
fn duplicate_idempotency_ids_replay_the_cached_response() {
    let mut server = start(SharedSystem::new(), ServerConfig::default());
    let admin = RemoteClient::open(server.addr().to_string(), "VS").unwrap();
    seed_remote(&admin);

    // Raw wire session as the same user: Hello hands out the nonce
    // idempotency ids must be minted from.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut raw, &encode_request(&Request::Hello { user: "VS".into() })).unwrap();
    let nonce = match decode_response(&read_frame(&mut raw).unwrap().unwrap()).unwrap() {
        Response::Welcome { nonce, .. } => nonce,
        other => panic!("expected Welcome, got {other:?}"),
    };
    assert!(nonce > 0);
    write_frame(&mut raw, &encode_request(&Request::OpenWriter)).unwrap();
    let wid = match decode_response(&read_frame(&mut raw).unwrap().unwrap()).unwrap() {
        Response::WriterOpened { wid } => wid,
        other => panic!("expected WriterOpened, got {other:?}"),
    };

    // The same logical write sent twice — a retry after a lost ack.
    let create = Request::Create {
        wid,
        idem: (nonce << 32) | 1,
        class: "Person".into(),
        values: vec![("name".into(), Value::Str("dup".into()))],
    };
    write_frame(&mut raw, &encode_request(&create)).unwrap();
    let first = read_frame(&mut raw).unwrap().unwrap();
    write_frame(&mut raw, &encode_request(&create)).unwrap();
    let second = read_frame(&mut raw).unwrap().unwrap();
    assert_eq!(first, second, "the dedup window must replay the identical response");
    assert!(!matches!(decode_response(&first).unwrap(), Response::Err { .. }));

    // Exactly one object exists, despite two acknowledged sends.
    let audit = admin.session().unwrap();
    assert_eq!(audit.extent("Person").unwrap().len(), 1);

    drop((audit, raw, admin));
    server.drain();
}

#[test]
fn idle_connections_are_reaped_after_the_deadline() {
    let config = ServerConfig { idle_timeout_ms: 60, ..ServerConfig::default() };
    let mut server = start(SharedSystem::new(), config);
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut raw, &encode_request(&Request::Hello { user: "quiet".into() })).unwrap();
    let frame = read_frame(&mut raw).unwrap().unwrap();
    assert!(matches!(decode_response(&frame).unwrap(), Response::Welcome { .. }));

    // Go silent past the idle budget: the server must hang up cleanly.
    std::thread::sleep(std::time::Duration::from_millis(400));
    assert!(
        read_frame(&mut raw).unwrap().is_none(),
        "idle connection survived its deadline"
    );
    while server.active_connections() > 0 {
        std::thread::yield_now();
    }
    drop(raw);
    server.drain();
}

#[test]
fn retry_policy_none_restores_fail_fast_connects() {
    // A dead address: bind a port, then drop the listener so nothing
    // answers there.
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let config = ClientConfig { retry: RetryPolicy::none(), ..ClientConfig::default() };
    let started = std::time::Instant::now();
    let err = RemoteClient::open_with(dead, "nobody", config).err().expect("dead addr");
    assert_eq!(err.code(), TseCode::Io);
    // One attempt, no backoff: failure is immediate, not a retry storm.
    assert!(started.elapsed() < std::time::Duration::from_secs(2));

    // Under an admission cap the typed Retry hint also surfaces verbatim
    // instead of being retried into a different error.
    let cap = ServerConfig { max_connections: 1, retry_after_ms: 7, ..ServerConfig::default() };
    let mut server = start(SharedSystem::new(), cap);
    let held = RemoteClient::open(server.addr().to_string(), "one").unwrap();
    let fast = ClientConfig { retry: RetryPolicy::none(), ..ClientConfig::default() };
    let err = RemoteClient::open_with(server.addr().to_string(), "two", fast)
        .err()
        .expect("cap must refuse");
    assert_eq!(err.code(), TseCode::Unavailable);
    assert_eq!(err.retry_after_ms(), 7);
    drop(held);
    while server.active_connections() > 0 {
        std::thread::yield_now();
    }
    server.drain();
}

#[test]
fn degraded_writes_surface_the_same_code_locally_and_remotely() {
    let dir = tmpdir("degraded_parity");
    let sys = TseSystem::builder(&dir).open().unwrap();
    let mut server = start(sys.clone(), ServerConfig::default());
    let addr = server.addr().to_string();

    let admin = RemoteClient::open(addr, "VS").unwrap();
    seed_remote(&admin);
    let remote_writer = admin.writer().unwrap();
    remote_writer.create("Person", &[("name", "pre".into())]).unwrap();

    // Fill the disk: the next durable write fails once and the system
    // degrades to read-only.
    let fp = sys.failpoints();
    fp.set_virtual_clock(true);
    fp.arm("durable.wal_append", 1, FailAction::DiskFull);
    let tripped = remote_writer.create("Person", &[("name", "trip".into())]).unwrap_err();
    assert_eq!(tripped.code(), TseCode::Io);

    // In-process rejection through the same client API…
    let mut local = sys.client("local");
    local.bind("VS").unwrap();
    let local_err =
        local.writer().unwrap().create("Person", &[("name", "l".into())]).unwrap_err();
    assert_eq!(local_err.code(), TseCode::Unavailable);
    assert!(local_err.retry_after_ms() >= 1);

    // …and over the wire: the identical numeric code and backoff hint.
    let remote_err =
        remote_writer.create("Person", &[("name", "r".into())]).unwrap_err();
    assert_eq!(remote_err.code(), local_err.code());
    assert_eq!(remote_err.retry_after_ms(), local_err.retry_after_ms());

    // Health is visible through both transports too.
    let remote_health = admin.health().unwrap();
    let local_health = local.health().unwrap();
    assert_eq!(remote_health, local_health);
    assert_eq!(remote_health.name(), "degraded");

    drop((remote_writer, admin, local));
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
