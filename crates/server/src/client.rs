//! [`RemoteClient`]: the wire-protocol implementation of [`TseClient`].
//!
//! One TCP connection per client; requests serialize through a mutex
//! (write frame, read matching response), so a client plus its readers and
//! writers can be shared across threads the same way a [`tse_core::LocalClient`]
//! can. Error frames decode back into [`TseError`] verbatim — the numeric
//! code a remote caller matches on is the one the server's in-process call
//! produced — and `Retry` frames (admission control, degraded-system
//! backpressure) surface as [`TseCode::Unavailable`] with the server's
//! backoff hint.

use std::net::TcpStream;

use parking_lot::Mutex;
use std::sync::Arc;
use tse_core::{
    EvolveSummary, HealthStatus, TseClient, TseCode, TseError, TseReader, TseResult, TseWriter,
};
use tse_object_model::{Oid, PendingProp, Value};

use crate::proto::{
    decode_response, encode_request, read_frame, write_frame, Request, Response,
};

struct Conn {
    stream: TcpStream,
}

impl Conn {
    /// One request/response exchange. Protocol-level failures come back as
    /// [`TseCode::Protocol`]/[`TseCode::Io`]; `Err` and `Retry` frames are
    /// converted to the [`TseError`] they carry.
    fn call(&mut self, req: &Request) -> TseResult<Response> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
            TseError::new(TseCode::Io, "server closed the connection mid-request")
        })?;
        match decode_response(&frame)? {
            Response::Err { code, retry_after_ms, message } => {
                Err(Response::to_error(code, retry_after_ms, &message))
            }
            Response::Retry { retry_after_ms } => Err(TseError::new(
                TseCode::Unavailable,
                "server backpressure: retry later",
            )
            .with_retry_after_ms(retry_after_ms)),
            other => Ok(other),
        }
    }
}

fn unexpected(what: &str, got: &Response) -> TseError {
    TseError::protocol(format!("expected {what} response, got {got:?}"))
}

/// A [`TseClient`] over the TSE wire protocol. `Target` is the server
/// address (`"host:port"`).
pub struct RemoteClient {
    conn: Arc<Mutex<Conn>>,
    user: String,
    family: Mutex<String>,
}

impl RemoteClient {
    fn rpc(&self, req: &Request) -> TseResult<Response> {
        self.conn.lock().call(req)
    }

    /// Liveness probe.
    pub fn ping(&self) -> TseResult<()> {
        match self.rpc(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Ask the server to drain and exit (in-flight requests on all
    /// connections finish first). The connection is closed afterwards.
    pub fn shutdown_server(&self) -> TseResult<()> {
        match self.rpc(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected("Bye", &other)),
        }
    }
}

impl TseClient for RemoteClient {
    type Reader = RemoteReader;
    type Writer = RemoteWriter;
    type Target = String;

    fn open(target: String, user: &str) -> TseResult<RemoteClient> {
        let stream = TcpStream::connect(&target)
            .map_err(|e| TseError::new(TseCode::Io, format!("connect {target} failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        let mut conn = Conn { stream };
        match conn.call(&Request::Hello { user: user.to_string() })? {
            Response::Welcome { .. } => {}
            other => return Err(unexpected("Welcome", &other)),
        }
        Ok(RemoteClient {
            conn: Arc::new(Mutex::new(conn)),
            user: user.to_string(),
            family: Mutex::new(user.to_string()),
        })
    }

    fn user(&self) -> &str {
        &self.user
    }

    fn family(&self) -> String {
        self.family.lock().clone()
    }

    fn bind(&mut self, family: &str) -> TseResult<u32> {
        match self.rpc(&Request::Bind { family: family.to_string() })? {
            Response::Bound { version } => {
                *self.family.lock() = family.to_string();
                Ok(version)
            }
            other => Err(unexpected("Bound", &other)),
        }
    }

    fn session(&self) -> TseResult<RemoteReader> {
        match self.rpc(&Request::OpenReader)? {
            Response::ReaderOpened { sid, version } => {
                Ok(RemoteReader { conn: Arc::clone(&self.conn), sid, version })
            }
            other => Err(unexpected("ReaderOpened", &other)),
        }
    }

    fn writer(&self) -> TseResult<RemoteWriter> {
        match self.rpc(&Request::OpenWriter)? {
            Response::WriterOpened { wid } => {
                Ok(RemoteWriter { conn: Arc::clone(&self.conn), wid })
            }
            other => Err(unexpected("WriterOpened", &other)),
        }
    }

    fn define_class(
        &self,
        name: &str,
        supers: &[&str],
        props: Vec<PendingProp>,
    ) -> TseResult<()> {
        let req = Request::DefineClass {
            name: name.to_string(),
            supers: supers.iter().map(|s| s.to_string()).collect(),
            props,
        };
        match self.rpc(&req)? {
            Response::Unit => Ok(()),
            other => Err(unexpected("Unit", &other)),
        }
    }

    fn create_view(&self, classes: &[&str]) -> TseResult<u32> {
        let req =
            Request::CreateView { classes: classes.iter().map(|s| s.to_string()).collect() };
        match self.rpc(&req)? {
            Response::ViewVersion(version) => Ok(version),
            other => Err(unexpected("ViewVersion", &other)),
        }
    }

    fn evolve(&self, command: &str) -> TseResult<EvolveSummary> {
        match self.rpc(&Request::Evolve { command: command.to_string() })? {
            Response::Evolved { version, classes_touched, duplicates_folded, script } => {
                Ok(EvolveSummary { version, classes_touched, duplicates_folded, script })
            }
            other => Err(unexpected("Evolved", &other)),
        }
    }

    fn describe(&self) -> TseResult<String> {
        match self.rpc(&Request::Describe)? {
            Response::Described(text) => Ok(text),
            other => Err(unexpected("Described", &other)),
        }
    }

    fn versions(&self) -> TseResult<u32> {
        match self.rpc(&Request::Versions)? {
            Response::ViewVersion(n) => Ok(n),
            other => Err(unexpected("ViewVersion", &other)),
        }
    }

    fn health(&self) -> TseResult<HealthStatus> {
        match self.rpc(&Request::Health)? {
            Response::HealthIs { status: 0, .. } => Ok(HealthStatus::Healthy),
            Response::HealthIs { status: 1, reason, retry_after_ms } => {
                Ok(HealthStatus::Degraded { reason, retry_after_ms })
            }
            Response::HealthIs { status: 2, .. } => Ok(HealthStatus::Poisoned),
            other => Err(unexpected("HealthIs", &other)),
        }
    }
}

impl Drop for RemoteClient {
    fn drop(&mut self) {
        let _ = self.conn.lock().call(&Request::Bye);
    }
}

/// A pinned remote read handle ([`TseReader`] over the wire).
pub struct RemoteReader {
    conn: Arc<Mutex<Conn>>,
    sid: u64,
    version: u32,
}

impl RemoteReader {
    fn rpc(&self, req: &Request) -> TseResult<Response> {
        self.conn.lock().call(req)
    }
}

impl TseReader for RemoteReader {
    fn view_version(&self) -> u32 {
        self.version
    }

    fn get(&self, oid: Oid, class: &str, attr: &str) -> TseResult<Value> {
        let req = Request::Get {
            sid: self.sid,
            oid,
            class: class.to_string(),
            attr: attr.to_string(),
        };
        match self.rpc(&req)? {
            Response::Val(v) => Ok(v),
            other => Err(unexpected("Val", &other)),
        }
    }

    fn extent(&self, class: &str) -> TseResult<Vec<Oid>> {
        match self.rpc(&Request::Extent { sid: self.sid, class: class.to_string() })? {
            Response::Oids(oids) => Ok(oids),
            other => Err(unexpected("Oids", &other)),
        }
    }

    fn select_where(&self, class: &str, expr: &str) -> TseResult<Vec<Oid>> {
        let req = Request::SelectWhere {
            sid: self.sid,
            class: class.to_string(),
            expr: expr.to_string(),
        };
        match self.rpc(&req)? {
            Response::Oids(oids) => Ok(oids),
            other => Err(unexpected("Oids", &other)),
        }
    }

    fn invoke(&self, oid: Oid, class: &str, name: &str) -> TseResult<Value> {
        let req = Request::Invoke {
            sid: self.sid,
            oid,
            class: class.to_string(),
            name: name.to_string(),
        };
        match self.rpc(&req)? {
            Response::Val(v) => Ok(v),
            other => Err(unexpected("Val", &other)),
        }
    }

    fn refresh(&mut self) -> TseResult<()> {
        match self.rpc(&Request::RefreshReader { sid: self.sid })? {
            Response::Refreshed => Ok(()),
            other => Err(unexpected("Refreshed", &other)),
        }
    }
}

impl Drop for RemoteReader {
    fn drop(&mut self) {
        let _ = self.rpc(&Request::CloseReader { sid: self.sid });
    }
}

/// A pinned remote write handle ([`TseWriter`] over the wire).
pub struct RemoteWriter {
    conn: Arc<Mutex<Conn>>,
    wid: u64,
}

impl RemoteWriter {
    fn rpc(&self, req: &Request) -> TseResult<Response> {
        self.conn.lock().call(req)
    }
}

impl TseWriter for RemoteWriter {
    fn create(&self, class: &str, values: &[(&str, Value)]) -> TseResult<Oid> {
        let req = Request::Create {
            wid: self.wid,
            class: class.to_string(),
            values: values.iter().map(|(n, v)| (n.to_string(), v.clone())).collect(),
        };
        match self.rpc(&req)? {
            Response::OidIs(oid) => Ok(oid),
            other => Err(unexpected("OidIs", &other)),
        }
    }

    fn set(&self, oid: Oid, class: &str, assignments: &[(&str, Value)]) -> TseResult<()> {
        let req = Request::SetAttrs {
            wid: self.wid,
            oid,
            class: class.to_string(),
            assignments: assignments.iter().map(|(n, v)| (n.to_string(), v.clone())).collect(),
        };
        match self.rpc(&req)? {
            Response::Unit => Ok(()),
            other => Err(unexpected("Unit", &other)),
        }
    }

    fn update_where(
        &self,
        class: &str,
        expr: &str,
        assignments: &[(&str, Value)],
    ) -> TseResult<usize> {
        let req = Request::UpdateWhere {
            wid: self.wid,
            class: class.to_string(),
            expr: expr.to_string(),
            assignments: assignments.iter().map(|(n, v)| (n.to_string(), v.clone())).collect(),
        };
        match self.rpc(&req)? {
            Response::Count(n) => Ok(n as usize),
            other => Err(unexpected("Count", &other)),
        }
    }

    fn add_to(&self, oids: &[Oid], class: &str) -> TseResult<()> {
        let req = Request::AddTo {
            wid: self.wid,
            class: class.to_string(),
            oids: oids.to_vec(),
        };
        match self.rpc(&req)? {
            Response::Unit => Ok(()),
            other => Err(unexpected("Unit", &other)),
        }
    }

    fn remove_from(&self, oids: &[Oid], class: &str) -> TseResult<()> {
        let req = Request::RemoveFrom {
            wid: self.wid,
            class: class.to_string(),
            oids: oids.to_vec(),
        };
        match self.rpc(&req)? {
            Response::Unit => Ok(()),
            other => Err(unexpected("Unit", &other)),
        }
    }

    fn delete_objects(&self, oids: &[Oid]) -> TseResult<()> {
        match self.rpc(&Request::Delete { wid: self.wid, oids: oids.to_vec() })? {
            Response::Unit => Ok(()),
            other => Err(unexpected("Unit", &other)),
        }
    }

    fn refresh(&mut self) -> TseResult<()> {
        match self.rpc(&Request::RefreshWriter { wid: self.wid })? {
            Response::Refreshed => Ok(()),
            other => Err(unexpected("Refreshed", &other)),
        }
    }
}

impl Drop for RemoteWriter {
    fn drop(&mut self) {
        let _ = self.rpc(&Request::CloseWriter { wid: self.wid });
    }
}
