//! [`RemoteClient`]: the wire-protocol implementation of [`TseClient`],
//! with transparent network fault tolerance.
//!
//! One TCP connection per client; requests serialize through a mutex
//! (write frame, read matching response), so a client plus its readers and
//! writers can be shared across threads the same way a
//! [`tse_core::LocalClient`] can. Error frames decode back into
//! [`TseError`] verbatim — the numeric code a remote caller matches on is
//! the one the server's in-process call produced.
//!
//! **Reconnect-with-rebind**: on connection loss (or a server `Retry`
//! frame), the client backs off per its [`RetryPolicy`] — honoring the
//! server's `retry_after_ms` hint — redials, re-sends `Hello { user }`,
//! re-binds the view family, and lazily re-opens reader/writer handles
//! before their next request. A re-opened reader is pinned to the family's
//! *current* view version and data epoch, exactly as if
//! [`TseReader::refresh`] had run — drains and failovers surface as the
//! documented refresh semantics, never as torn reads.
//!
//! **Idempotent retries**: reads retry freely. Data writes are stamped
//! with a client-minted idempotency id (`session nonce << 32 | counter`,
//! stable across retries of one logical write), and the server's per-user
//! dedup window turns a retried acked write into a cache hit — it applies
//! exactly once. Schema DDL (`define_class`, `create_view`, `evolve`) and
//! `Shutdown` are **not** retried once the request may have reached the
//! server: re-executing them is observable (an extra view version).
//!
//! **Deadlines**: every operation gets a wall-clock budget across all its
//! attempts ([`ClientConfig::op_timeout_ms`]), and the socket carries
//! read/write timeouts so a stalled server surfaces as
//! [`TseCode::DeadlineExceeded`] instead of blocking forever.

use std::cell::Cell;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tse_core::{
    EvolveSummary, HealthStatus, TseClient, TseCode, TseError, TseReader, TseResult, TseWriter,
};
use tse_object_model::{Oid, PendingProp, Value};
use tse_storage::RetryPolicy;
use tse_telemetry::Telemetry;

use crate::proto::{
    decode_response, encode_request, read_frame, write_frame, Request, Response,
};

/// Client-side fault-tolerance knobs.
#[derive(Clone)]
pub struct ClientConfig {
    /// Retry budget and backoff curve shared by reconnects, server
    /// `Retry` frames, and idempotent-op retries. [`RetryPolicy::none`]
    /// restores fail-fast behaviour (one attempt, no redial).
    pub retry: RetryPolicy,
    /// Wall-clock budget for one operation across all of its attempts,
    /// milliseconds (0 = unbounded).
    pub op_timeout_ms: u64,
    /// Socket read timeout, milliseconds (0 = none). A response that
    /// takes longer surfaces as [`TseCode::DeadlineExceeded`].
    pub read_timeout_ms: u64,
    /// Socket write timeout, milliseconds (0 = none).
    pub write_timeout_ms: u64,
    /// TCP dial timeout, milliseconds (0 = the OS default).
    pub connect_timeout_ms: u64,
    /// Telemetry domain for `client.{reconnects,retries,dedup_hits}`;
    /// `None` drops the counters.
    pub telemetry: Option<Telemetry>,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            retry: RetryPolicy::default(),
            op_timeout_ms: 30_000,
            read_timeout_ms: 10_000,
            write_timeout_ms: 5_000,
            connect_timeout_ms: 5_000,
            telemetry: None,
        }
    }
}

/// How a failed attempt of an operation may be retried.
#[derive(Clone, Copy, PartialEq)]
enum OpKind {
    /// Free to retry after any failure — re-execution is invisible.
    Read,
    /// Data write carrying an idempotency id: safe to retry, the server's
    /// dedup window makes re-application a cache hit.
    IdemWrite,
    /// Schema DDL / shutdown: once the request may have reached the
    /// server, a transport failure is terminal — re-execution would be
    /// observable (an extra view version, a second drain).
    Once,
}

struct Conn {
    stream: TcpStream,
}

impl Conn {
    /// One raw request/response exchange. `Retry` and `Err` frames come
    /// back as `Ok(Response::...)` — classification is the retry loop's
    /// job, not the transport's.
    fn exchange(&mut self, req: &Request) -> TseResult<Response> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
            TseError::new(TseCode::Io, "server closed the connection mid-request")
        })?;
        decode_response(&frame)
    }
}

/// Collapse `Retry`/`Err` frames into the [`TseError`] they carry; every
/// other response passes through. A `Retry`-derived error is recognizable
/// downstream as `Unavailable` with a non-zero hint — the server's promise
/// that the request was **not** executed.
fn typed(resp: Response) -> TseResult<Response> {
    match resp {
        Response::Err { code, retry_after_ms, message } => {
            Err(Response::to_error(code, retry_after_ms, &message))
        }
        Response::Retry { retry_after_ms } => Err(TseError::new(
            TseCode::Unavailable,
            "server backpressure: retry later",
        )
        .with_retry_after_ms(retry_after_ms)),
        other => Ok(other),
    }
}

/// True for errors born from a `Retry` frame: the server refused without
/// executing, so the attempt is retryable regardless of idempotency.
fn is_backpressure(e: &TseError) -> bool {
    e.code() == TseCode::Unavailable && e.retry_after_ms() > 0
}

fn unexpected(what: &str, got: &Response) -> TseError {
    TseError::protocol(format!("expected {what} response, got {got:?}"))
}

/// Mutable connection state, all guarded by one mutex: the live socket
/// (if any), the generation stamp handles compare against, the session
/// nonce, and the family to re-bind after a reconnect.
struct ConnInner {
    conn: Option<Conn>,
    /// Bumped on every successful (re)connect. A handle slot stamped with
    /// an older generation re-opens itself before its next request.
    generation: u64,
    /// Server-minted session nonce from the latest `Welcome`.
    nonce: u64,
    /// Idempotency counter within the current nonce.
    next_op: u64,
    /// The family this client is bound to (re-bound on reconnect).
    family: String,
}

impl ConnInner {
    /// Mint an idempotency id: unique across this user's concurrent and
    /// successive connections because the nonce prefix is server-unique.
    /// Never zero (nonces start at 1), so it always engages the dedup
    /// window.
    fn mint_idem(&mut self) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        (self.nonce << 32) | (op & 0xFFFF_FFFF)
    }
}

/// The shared heart of a [`RemoteClient`] and its handles: target, user,
/// config, and the guarded connection state, plus the reconnect/retry
/// machinery every operation funnels through.
struct ConnCore {
    target: String,
    user: String,
    config: ClientConfig,
    inner: Mutex<ConnInner>,
}

impl ConnCore {
    fn note(&self, name: &str) {
        if let Some(t) = &self.config.telemetry {
            t.incr(name, 1);
        }
    }

    fn dial(&self) -> TseResult<Conn> {
        let io = |e: std::io::Error| {
            TseError::new(TseCode::Io, format!("connect {} failed: {e}", self.target))
        };
        let stream = if self.config.connect_timeout_ms > 0 {
            let timeout = Duration::from_millis(self.config.connect_timeout_ms);
            let mut last: Option<TseError> = None;
            let mut stream = None;
            for addr in self.target.to_socket_addrs().map_err(io)? {
                match TcpStream::connect_timeout(&addr, timeout) {
                    Ok(s) => {
                        stream = Some(s);
                        break;
                    }
                    Err(e) => last = Some(io(e)),
                }
            }
            stream.ok_or_else(|| {
                last.unwrap_or_else(|| {
                    TseError::new(
                        TseCode::Io,
                        format!("connect {} failed: no addresses resolved", self.target),
                    )
                })
            })?
        } else {
            TcpStream::connect(&self.target).map_err(io)?
        };
        let _ = stream.set_nodelay(true);
        if self.config.read_timeout_ms > 0 {
            let _ = stream
                .set_read_timeout(Some(Duration::from_millis(self.config.read_timeout_ms)));
        }
        if self.config.write_timeout_ms > 0 {
            let _ = stream
                .set_write_timeout(Some(Duration::from_millis(self.config.write_timeout_ms)));
        }
        Ok(Conn { stream })
    }

    /// Dial + `Hello` + re-bind if the connection is down. On success the
    /// generation advances, which invalidates every handle slot minted on
    /// the previous connection (they re-open lazily).
    fn ensure_connected(&self, inner: &mut ConnInner) -> TseResult<()> {
        if inner.conn.is_some() {
            return Ok(());
        }
        let reconnect = inner.generation > 0;
        let mut conn = self.dial()?;
        match typed(conn.exchange(&Request::Hello { user: self.user.clone() })?)? {
            Response::Welcome { nonce, .. } => inner.nonce = nonce,
            other => return Err(unexpected("Welcome", &other)),
        }
        if inner.family != self.user {
            match typed(conn.exchange(&Request::Bind { family: inner.family.clone() })?)? {
                Response::Bound { .. } => {}
                other => return Err(unexpected("Bound", &other)),
            }
        }
        inner.conn = Some(conn);
        inner.generation += 1;
        if reconnect {
            self.note("client.reconnects");
        }
        Ok(())
    }

    /// Re-open a read handle whose slot predates the current connection
    /// generation. The re-opened handle is pinned to the family's current
    /// view version and data epoch — the documented `refresh()` semantics.
    fn ensure_reader(
        &self,
        inner: &mut ConnInner,
        slot: &Mutex<(u64, u64)>,
        version: &AtomicU32,
    ) -> TseResult<u64> {
        let mut s = slot.lock();
        if s.1 == inner.generation {
            return Ok(s.0);
        }
        let conn = inner.conn.as_mut().expect("connected before handle use");
        match typed(conn.exchange(&Request::OpenReader)?)? {
            Response::ReaderOpened { sid, version: v } => {
                *s = (sid, inner.generation);
                version.store(v, Ordering::SeqCst);
                Ok(sid)
            }
            other => Err(unexpected("ReaderOpened", &other)),
        }
    }

    /// Re-open a write handle whose slot predates the current connection
    /// generation.
    fn ensure_writer(&self, inner: &mut ConnInner, slot: &Mutex<(u64, u64)>) -> TseResult<u64> {
        let mut s = slot.lock();
        if s.1 == inner.generation {
            return Ok(s.0);
        }
        let conn = inner.conn.as_mut().expect("connected before handle use");
        match typed(conn.exchange(&Request::OpenWriter)?)? {
            Response::WriterOpened { wid } => {
                *s = (wid, inner.generation);
                Ok(wid)
            }
            other => Err(unexpected("WriterOpened", &other)),
        }
    }

    /// The reconnect/retry loop every operation funnels through.
    ///
    /// Each attempt: (re)connect, rebuild the request (`build` re-opens
    /// handles and keeps idempotency ids stable), exchange, classify.
    /// Failures before the request is sent are always retryable; `Retry`
    /// frames are retryable because the server did not execute; transport
    /// failures mid-exchange retry only if `kind` permits re-execution.
    /// Backoff is the larger of the policy curve and the server's hint,
    /// bounded by both the retry budget and the op deadline. `on_success`
    /// runs under the connection lock so callers can stamp handle slots
    /// against the exact generation that served the response.
    fn call_with(
        &self,
        kind: OpKind,
        build: &mut dyn FnMut(&ConnCore, &mut ConnInner) -> TseResult<Request>,
        on_success: &mut dyn FnMut(&mut ConnInner, &Response),
    ) -> TseResult<Response> {
        let deadline = (self.config.op_timeout_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(self.config.op_timeout_ms));
        let mut attempt: u32 = 0;
        loop {
            let mut inner = self.inner.lock();
            let prep = self.ensure_connected(&mut inner).and_then(|()| build(self, &mut inner));
            let (err, sent) = match prep {
                Ok(req) => {
                    let conn = inner.conn.as_mut().expect("connected");
                    match conn.exchange(&req) {
                        Ok(resp) => match typed(resp) {
                            Ok(resp) => {
                                on_success(&mut inner, &resp);
                                drop(inner);
                                if attempt > 0 && kind == OpKind::IdemWrite {
                                    // The ack may have come from the
                                    // server's dedup window; the counter
                                    // tracks retried-then-acked writes.
                                    self.note("client.dedup_hits");
                                }
                                return Ok(resp);
                            }
                            // Backpressure: refused, not executed.
                            Err(e) if is_backpressure(&e) => (e, false),
                            // Typed failure: deterministic, terminal.
                            Err(e) => return Err(e),
                        },
                        Err(e) => {
                            // Transport failure mid-exchange: the stream
                            // position (and whether the server executed
                            // the request) is unknown — drop the socket.
                            inner.conn = None;
                            (e, true)
                        }
                    }
                }
                Err(e) => {
                    // Connection/handle establishment failed; nothing
                    // user-visible was sent. A transport error here also
                    // invalidates the socket.
                    if matches!(
                        e.code(),
                        TseCode::Io | TseCode::DeadlineExceeded | TseCode::Protocol
                    ) {
                        inner.conn = None;
                    }
                    (e, false)
                }
            };
            drop(inner);
            if err.code() == TseCode::Protocol {
                return Err(err); // framing desync is never retryable
            }
            if sent && kind == OpKind::Once {
                return Err(err);
            }
            if attempt >= self.config.retry.max_retries {
                return Err(err);
            }
            let hint_ns = err.retry_after_ms().saturating_mul(1_000_000);
            let backoff =
                Duration::from_nanos(self.config.retry.backoff_ns(attempt).max(hint_ns));
            if let Some(deadline) = deadline {
                if Instant::now() + backoff >= deadline {
                    return Err(TseError::new(
                        TseCode::DeadlineExceeded,
                        format!(
                            "op deadline exhausted after {} attempt(s); last error: {err}",
                            attempt + 1
                        ),
                    ));
                }
            }
            std::thread::sleep(backoff);
            attempt += 1;
            self.note("client.retries");
        }
    }

    fn call(
        &self,
        kind: OpKind,
        build: &mut dyn FnMut(&ConnCore, &mut ConnInner) -> TseResult<Request>,
    ) -> TseResult<Response> {
        self.call_with(kind, build, &mut |_, _| {})
    }

    /// Fixed-request op (no handles, no idempotency id).
    fn rpc(&self, kind: OpKind, req: Request) -> TseResult<Response> {
        self.call(kind, &mut |_, _| Ok(req.clone()))
    }
}

/// A [`TseClient`] over the TSE wire protocol, with transparent
/// reconnect-with-rebind, idempotent retries, and per-op deadlines (see
/// the module docs). `Target` is the server address (`"host:port"`).
pub struct RemoteClient {
    core: Arc<ConnCore>,
    user: String,
}

impl RemoteClient {
    /// Connect with explicit [`ClientConfig`] knobs (the [`TseClient::open`]
    /// trait constructor uses the defaults).
    pub fn open_with(target: String, user: &str, config: ClientConfig) -> TseResult<RemoteClient> {
        let core = Arc::new(ConnCore {
            target,
            user: user.to_string(),
            config,
            inner: Mutex::new(ConnInner {
                conn: None,
                generation: 0,
                nonce: 0,
                next_op: 1,
                family: user.to_string(),
            }),
        });
        // Establish (and verify) the connection through the same retry
        // loop every other op uses: admission `Retry` frames honor the
        // server's hint instead of surfacing as instant failures.
        match core.rpc(OpKind::Read, Request::Ping)? {
            Response::Pong => {}
            other => return Err(unexpected("Pong", &other)),
        }
        Ok(RemoteClient { user: user.to_string(), core })
    }

    /// Liveness probe.
    pub fn ping(&self) -> TseResult<()> {
        match self.core.rpc(OpKind::Read, Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Ask the server to drain and exit (in-flight requests on all
    /// connections finish first). The connection is closed afterwards.
    pub fn shutdown_server(&self) -> TseResult<()> {
        match self.core.rpc(OpKind::Once, Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected("Bye", &other)),
        }
    }
}

impl TseClient for RemoteClient {
    type Reader = RemoteReader;
    type Writer = RemoteWriter;
    type Target = String;

    fn open(target: String, user: &str) -> TseResult<RemoteClient> {
        RemoteClient::open_with(target, user, ClientConfig::default())
    }

    fn user(&self) -> &str {
        &self.user
    }

    fn family(&self) -> String {
        self.core.inner.lock().family.clone()
    }

    fn bind(&mut self, family: &str) -> TseResult<u32> {
        let req = Request::Bind { family: family.to_string() };
        match self.core.call_with(
            OpKind::Read,
            &mut |_, _| Ok(req.clone()),
            // Record the family under the lock so a reconnect racing this
            // op re-binds to what the server last acknowledged.
            &mut |inner, resp| {
                if matches!(resp, Response::Bound { .. }) {
                    inner.family = family.to_string();
                }
            },
        )? {
            Response::Bound { version } => Ok(version),
            other => Err(unexpected("Bound", &other)),
        }
    }

    fn session(&self) -> TseResult<RemoteReader> {
        let mut opened = (0u64, 0u64, 0u32);
        match self.core.call_with(
            OpKind::Read,
            &mut |_, _| Ok(Request::OpenReader),
            &mut |inner, resp| {
                if let Response::ReaderOpened { sid, version } = resp {
                    opened = (*sid, inner.generation, *version);
                }
            },
        )? {
            Response::ReaderOpened { .. } => Ok(RemoteReader {
                core: Arc::clone(&self.core),
                slot: Mutex::new((opened.0, opened.1)),
                version: AtomicU32::new(opened.2),
            }),
            other => Err(unexpected("ReaderOpened", &other)),
        }
    }

    fn writer(&self) -> TseResult<RemoteWriter> {
        let mut opened = (0u64, 0u64);
        match self.core.call_with(
            OpKind::Read,
            &mut |_, _| Ok(Request::OpenWriter),
            &mut |inner, resp| {
                if let Response::WriterOpened { wid } = resp {
                    opened = (*wid, inner.generation);
                }
            },
        )? {
            Response::WriterOpened { .. } => Ok(RemoteWriter {
                core: Arc::clone(&self.core),
                slot: Mutex::new((opened.0, opened.1)),
            }),
            other => Err(unexpected("WriterOpened", &other)),
        }
    }

    fn define_class(
        &self,
        name: &str,
        supers: &[&str],
        props: Vec<PendingProp>,
    ) -> TseResult<()> {
        let req = Request::DefineClass {
            name: name.to_string(),
            supers: supers.iter().map(|s| s.to_string()).collect(),
            props,
        };
        match self.core.rpc(OpKind::Once, req)? {
            Response::Unit => Ok(()),
            other => Err(unexpected("Unit", &other)),
        }
    }

    fn create_view(&self, classes: &[&str]) -> TseResult<u32> {
        let req =
            Request::CreateView { classes: classes.iter().map(|s| s.to_string()).collect() };
        match self.core.rpc(OpKind::Once, req)? {
            Response::ViewVersion(version) => Ok(version),
            other => Err(unexpected("ViewVersion", &other)),
        }
    }

    fn evolve(&self, command: &str) -> TseResult<EvolveSummary> {
        match self.core.rpc(OpKind::Once, Request::Evolve { command: command.to_string() })? {
            Response::Evolved { version, classes_touched, duplicates_folded, script } => {
                Ok(EvolveSummary { version, classes_touched, duplicates_folded, script })
            }
            other => Err(unexpected("Evolved", &other)),
        }
    }

    fn describe(&self) -> TseResult<String> {
        match self.core.rpc(OpKind::Read, Request::Describe)? {
            Response::Described(text) => Ok(text),
            other => Err(unexpected("Described", &other)),
        }
    }

    fn versions(&self) -> TseResult<u32> {
        match self.core.rpc(OpKind::Read, Request::Versions)? {
            Response::ViewVersion(n) => Ok(n),
            other => Err(unexpected("ViewVersion", &other)),
        }
    }

    fn health(&self) -> TseResult<HealthStatus> {
        match self.core.rpc(OpKind::Read, Request::Health)? {
            Response::HealthIs { status: 0, .. } => Ok(HealthStatus::Healthy),
            Response::HealthIs { status: 1, reason, retry_after_ms } => {
                Ok(HealthStatus::Degraded { reason, retry_after_ms })
            }
            Response::HealthIs { status: 2, .. } => Ok(HealthStatus::Poisoned),
            other => Err(unexpected("HealthIs", &other)),
        }
    }
}

impl Drop for RemoteClient {
    fn drop(&mut self) {
        // Best-effort courtesy close; never redial just to say goodbye.
        let mut inner = self.core.inner.lock();
        if let Some(conn) = inner.conn.as_mut() {
            let _ = conn.exchange(&Request::Bye);
        }
    }
}

/// A pinned remote read handle ([`TseReader`] over the wire). After a
/// reconnect it transparently re-opens on the new connection, re-pinned to
/// the family's current view version and data epoch (the documented
/// `refresh()` semantics); [`TseReader::view_version`] reflects the
/// re-pinned version.
pub struct RemoteReader {
    core: Arc<ConnCore>,
    /// `(sid, generation)` — stale once the core's generation moves on.
    slot: Mutex<(u64, u64)>,
    version: AtomicU32,
}

impl RemoteReader {
    fn rpc(&self, make: impl Fn(u64) -> Request) -> TseResult<Response> {
        self.core.call(OpKind::Read, &mut |core, inner| {
            let sid = core.ensure_reader(inner, &self.slot, &self.version)?;
            Ok(make(sid))
        })
    }
}

impl TseReader for RemoteReader {
    fn view_version(&self) -> u32 {
        self.version.load(Ordering::SeqCst)
    }

    fn get(&self, oid: Oid, class: &str, attr: &str) -> TseResult<Value> {
        match self.rpc(|sid| Request::Get {
            sid,
            oid,
            class: class.to_string(),
            attr: attr.to_string(),
        })? {
            Response::Val(v) => Ok(v),
            other => Err(unexpected("Val", &other)),
        }
    }

    fn extent(&self, class: &str) -> TseResult<Vec<Oid>> {
        match self.rpc(|sid| Request::Extent { sid, class: class.to_string() })? {
            Response::Oids(oids) => Ok(oids),
            other => Err(unexpected("Oids", &other)),
        }
    }

    fn select_where(&self, class: &str, expr: &str) -> TseResult<Vec<Oid>> {
        match self.rpc(|sid| Request::SelectWhere {
            sid,
            class: class.to_string(),
            expr: expr.to_string(),
        })? {
            Response::Oids(oids) => Ok(oids),
            other => Err(unexpected("Oids", &other)),
        }
    }

    fn invoke(&self, oid: Oid, class: &str, name: &str) -> TseResult<Value> {
        match self.rpc(|sid| Request::Invoke {
            sid,
            oid,
            class: class.to_string(),
            name: name.to_string(),
        })? {
            Response::Val(v) => Ok(v),
            other => Err(unexpected("Val", &other)),
        }
    }

    fn refresh(&mut self) -> TseResult<()> {
        match self.rpc(|sid| Request::RefreshReader { sid })? {
            Response::Refreshed => Ok(()),
            other => Err(unexpected("Refreshed", &other)),
        }
    }
}

impl Drop for RemoteReader {
    fn drop(&mut self) {
        // Best-effort close, only if the handle is live on the current
        // connection — a stale slot died with its connection server-side.
        let mut inner = self.core.inner.lock();
        let (sid, generation) = *self.slot.lock();
        if generation == inner.generation {
            if let Some(conn) = inner.conn.as_mut() {
                let _ = conn.exchange(&Request::CloseReader { sid });
            }
        }
    }
}

/// A pinned remote write handle ([`TseWriter`] over the wire). Every data
/// write carries an idempotency id minted once per logical operation, so
/// a retry after a lost ack is deduplicated server-side; after a
/// reconnect the handle re-opens transparently at the family's current
/// version.
pub struct RemoteWriter {
    core: Arc<ConnCore>,
    /// `(wid, generation)` — stale once the core's generation moves on.
    slot: Mutex<(u64, u64)>,
}

impl RemoteWriter {
    /// A deduplicated data write: `make` receives the (possibly re-opened)
    /// handle id and the operation's idempotency id, which stays stable
    /// across every retry of this one logical write.
    fn write_rpc(&self, make: impl Fn(u64, u64) -> Request) -> TseResult<Response> {
        let minted = Cell::new(0u64);
        self.core.call(OpKind::IdemWrite, &mut |core, inner| {
            let wid = core.ensure_writer(inner, &self.slot)?;
            if minted.get() == 0 {
                minted.set(inner.mint_idem());
            }
            Ok(make(wid, minted.get()))
        })
    }

    /// A non-deduplicated writer op (refresh/close are idempotent by
    /// nature and carry no id).
    fn rpc(&self, make: impl Fn(u64) -> Request) -> TseResult<Response> {
        self.core.call(OpKind::Read, &mut |core, inner| {
            let wid = core.ensure_writer(inner, &self.slot)?;
            Ok(make(wid))
        })
    }
}

impl TseWriter for RemoteWriter {
    fn create(&self, class: &str, values: &[(&str, Value)]) -> TseResult<Oid> {
        match self.write_rpc(|wid, idem| Request::Create {
            wid,
            idem,
            class: class.to_string(),
            values: values.iter().map(|(n, v)| (n.to_string(), v.clone())).collect(),
        })? {
            Response::OidIs(oid) => Ok(oid),
            other => Err(unexpected("OidIs", &other)),
        }
    }

    fn set(&self, oid: Oid, class: &str, assignments: &[(&str, Value)]) -> TseResult<()> {
        match self.write_rpc(|wid, idem| Request::SetAttrs {
            wid,
            idem,
            oid,
            class: class.to_string(),
            assignments: assignments.iter().map(|(n, v)| (n.to_string(), v.clone())).collect(),
        })? {
            Response::Unit => Ok(()),
            other => Err(unexpected("Unit", &other)),
        }
    }

    fn update_where(
        &self,
        class: &str,
        expr: &str,
        assignments: &[(&str, Value)],
    ) -> TseResult<usize> {
        match self.write_rpc(|wid, idem| Request::UpdateWhere {
            wid,
            idem,
            class: class.to_string(),
            expr: expr.to_string(),
            assignments: assignments.iter().map(|(n, v)| (n.to_string(), v.clone())).collect(),
        })? {
            Response::Count(n) => Ok(n as usize),
            other => Err(unexpected("Count", &other)),
        }
    }

    fn add_to(&self, oids: &[Oid], class: &str) -> TseResult<()> {
        match self.write_rpc(|wid, idem| Request::AddTo {
            wid,
            idem,
            class: class.to_string(),
            oids: oids.to_vec(),
        })? {
            Response::Unit => Ok(()),
            other => Err(unexpected("Unit", &other)),
        }
    }

    fn remove_from(&self, oids: &[Oid], class: &str) -> TseResult<()> {
        match self.write_rpc(|wid, idem| Request::RemoveFrom {
            wid,
            idem,
            class: class.to_string(),
            oids: oids.to_vec(),
        })? {
            Response::Unit => Ok(()),
            other => Err(unexpected("Unit", &other)),
        }
    }

    fn delete_objects(&self, oids: &[Oid]) -> TseResult<()> {
        match self.write_rpc(|wid, idem| Request::Delete { wid, idem, oids: oids.to_vec() })? {
            Response::Unit => Ok(()),
            other => Err(unexpected("Unit", &other)),
        }
    }

    fn refresh(&mut self) -> TseResult<()> {
        match self.rpc(|wid| Request::RefreshWriter { wid })? {
            Response::Refreshed => Ok(()),
            other => Err(unexpected("Refreshed", &other)),
        }
    }
}

impl Drop for RemoteWriter {
    fn drop(&mut self) {
        let mut inner = self.core.inner.lock();
        let (wid, generation) = *self.slot.lock();
        if generation == inner.generation {
            if let Some(conn) = inner.conn.as_mut() {
                let _ = conn.exchange(&Request::CloseWriter { wid });
            }
        }
    }
}
