//! The `tse-server` daemon: serve a (durable or in-memory) TSE system over
//! the wire protocol.
//!
//! ```text
//! tse-server [--dir PATH] [--addr HOST:PORT] [--max-conns N]
//!            [--journal PATH] [--run-secs N]
//! ```
//!
//! - `--dir`: back the system with this directory (recovering it if it
//!   exists); in-memory without it.
//! - `--addr`: listen address, default `127.0.0.1:7421` (`:0` picks an
//!   ephemeral port, printed on stdout).
//! - `--max-conns`: admission-control cap (default 64).
//! - `--journal`: stream the telemetry journal to this JSONL file and
//!   embed a final metrics snapshot on exit — `tse-inspect --check` ready.
//! - `--run-secs`: exit (with a graceful drain) after N seconds; without
//!   it the server runs until a client sends `Shutdown` or the process is
//!   killed. Exit is always a drain: in-flight requests finish and flush.
//!
//! The bound address is printed as `listening on <addr>` once the server
//! accepts connections, so wrappers can scrape the ephemeral port.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use tse_core::TseSystem;
use tse_server::{ServerConfig, TseServer};

struct Args {
    dir: Option<PathBuf>,
    addr: String,
    max_conns: usize,
    journal: Option<PathBuf>,
    run_secs: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dir: None,
        addr: "127.0.0.1:7421".to_string(),
        max_conns: 64,
        journal: None,
        run_secs: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--dir" => args.dir = Some(PathBuf::from(value("--dir")?)),
            "--addr" => args.addr = value("--addr")?,
            "--max-conns" => {
                args.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|_| "--max-conns must be a number".to_string())?
            }
            "--journal" => args.journal = Some(PathBuf::from(value("--journal")?)),
            "--run-secs" => {
                args.run_secs = Some(
                    value("--run-secs")?
                        .parse()
                        .map_err(|_| "--run-secs must be a number".to_string())?,
                )
            }
            "--help" | "-h" => {
                println!(
                    "usage: tse-server [--dir PATH] [--addr HOST:PORT] [--max-conns N] \
                     [--journal PATH] [--run-secs N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("tse-server: {msg}");
            std::process::exit(2);
        }
    };

    let sys = match &args.dir {
        Some(dir) => TseSystem::builder(dir).open().unwrap_or_else(|e| {
            eprintln!("tse-server: open {} failed: {e}", dir.display());
            std::process::exit(1);
        }),
        None => tse_core::SharedSystem::new(),
    };
    if let Some(journal) = &args.journal {
        if let Err(e) = sys.telemetry().attach_sink(journal) {
            eprintln!("tse-server: journal sink {} failed: {e}", journal.display());
            std::process::exit(1);
        }
    }

    let config = ServerConfig { max_connections: args.max_conns, ..ServerConfig::default() };
    let mut server = TseServer::start(sys.clone(), &args.addr, config).unwrap_or_else(|e| {
        eprintln!("tse-server: {e}");
        std::process::exit(1);
    });
    println!("listening on {}", server.addr());

    let started = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(100));
        if server.shutdown_requested() {
            eprintln!("tse-server: shutdown requested by client, draining");
            break;
        }
        if let Some(secs) = args.run_secs {
            if started.elapsed() >= Duration::from_secs(secs) {
                eprintln!("tse-server: --run-secs elapsed, draining");
                break;
            }
        }
    }
    server.drain();
    // Embed the final metrics snapshot so the journal passes the
    // `tse-inspect --check` forensics gate on its own.
    sys.telemetry().journal_metrics_snapshot();
}
