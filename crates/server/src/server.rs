//! The TSE service: a std-only thread-per-connection TCP server over a
//! [`SharedSystem`].
//!
//! **Authentication is identity is tenancy**: the first frame on every
//! connection is `Hello { user }`, and the user name binds the connection
//! to that user's view family — the paper's per-user views *are* the
//! tenancy model, so there is no separate namespace machinery. Every
//! subsequent request executes through an in-process [`LocalClient`] owned
//! by the connection's handler thread, which means the wire surface cannot
//! drift from the in-process API: same code paths, same [`TseError`]
//! codes, by construction.
//!
//! **Admission control**: past `max_connections`, a new connection gets a
//! single `Retry { retry_after_ms }` frame and is closed without a handler
//! thread — bounded threads, typed backpressure. The same `Retry` shape
//! carries request-level `Unavailable` backpressure while the system is
//! degraded.
//!
//! **Graceful drain**: [`TseServer::drain`] stops the accept loop, then
//! half-closes (read side only) every live connection. A handler blocked
//! waiting for its peer's next request wakes with EOF and exits; a handler
//! mid-request keeps its write side and finishes — the response is
//! computed against the reader's pinned epoch and flushed before the
//! connection closes. Evolutions never drain anything: an epoch swap is
//! invisible to the server, and pinned handles keep their pre-swap view
//! (see the drain-across-evolve test).

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tse_core::{
    HealthStatus, LocalClient, LocalReader, LocalWriter, SharedSystem, TseClient, TseCode,
    TseError, TseReader, TseResult, TseWriter,
};
use tse_object_model::Value;

use crate::proto::{
    decode_request, encode_response, read_frame_idle, write_frame, FrameRead, Request,
    Response,
};

/// Server runtime knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission-control cap on concurrently served connections; the
    /// `max_connections + 1`-th connection gets a `Retry` frame.
    pub max_connections: usize,
    /// Backoff hint (milliseconds) carried in admission-control `Retry`
    /// frames.
    pub retry_after_ms: u64,
    /// Reap a connection that sends no frame for this long (0 disables).
    /// Doubles as the slow-client *read* budget: once a frame has started,
    /// stalling mid-frame past this window drops the connection.
    pub idle_timeout_ms: u64,
    /// Slow-client write budget: a response write blocked for this long
    /// drops the connection instead of pinning its handler thread forever
    /// (0 disables).
    pub write_timeout_ms: u64,
    /// Per-user idempotency dedup window: successful data-write responses
    /// remembered per user, so a retried acked write is answered from the
    /// cache instead of applied twice. Evicting past this bound is an
    /// overflow (`server.dedup_overflow`) — size it above the largest
    /// write burst a client could still be retrying.
    pub dedup_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: 64,
            retry_after_ms: 100,
            idle_timeout_ms: 60_000,
            write_timeout_ms: 5_000,
            dedup_capacity: 1024,
        }
    }
}

/// One user's bounded dedup window: insertion order + cached responses.
#[derive(Default)]
struct DedupWindow {
    order: VecDeque<u64>,
    cached: HashMap<u64, Response>,
}

struct Shared {
    sys: SharedSystem,
    config: ServerConfig,
    draining: AtomicBool,
    shutdown_requested: AtomicBool,
    active: AtomicUsize,
    next_conn: AtomicU64,
    /// Session-nonce mint for `Welcome` frames (idempotency-id prefixes).
    next_nonce: AtomicU64,
    /// Per-user idempotency windows. Keyed by user, not connection: a
    /// retried write arrives on a *new* connection after a reconnect.
    dedup: Mutex<HashMap<String, DedupWindow>>,
    /// Read-half clones of live connections, so drain can wake handlers
    /// blocked in `read_frame` without severing their write side.
    conns: Mutex<HashMap<u64, TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn dedup_lookup(&self, user: &str, idem: u64) -> Option<Response> {
        self.dedup.lock().get(user).and_then(|w| w.cached.get(&idem).cloned())
    }

    fn dedup_record(&self, user: &str, idem: u64, response: &Response) {
        let mut windows = self.dedup.lock();
        let window = windows.entry(user.to_string()).or_default();
        if window.cached.insert(idem, response.clone()).is_none() {
            window.order.push_back(idem);
        }
        let mut overflowed = 0u64;
        while window.order.len() > self.config.dedup_capacity.max(1) {
            if let Some(evicted) = window.order.pop_front() {
                window.cached.remove(&evicted);
                overflowed += 1;
            }
        }
        let total: u64 = windows.values().map(|w| w.order.len() as u64).sum();
        drop(windows);
        let telemetry = self.sys.telemetry();
        if overflowed > 0 {
            // An evicted id could in principle still be retried — the
            // exactly-once guarantee is weakened. CI treats this as fatal.
            telemetry.incr("server.dedup_overflow", overflowed);
        }
        telemetry.set_gauge("server.dedup_window", total);
    }
}

/// A running TSE server. Dropping the handle does **not** stop the server;
/// call [`TseServer::drain`] for a graceful shutdown.
pub struct TseServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl TseServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting connections on a background thread.
    pub fn start(sys: SharedSystem, addr: &str, config: ServerConfig) -> TseResult<TseServer> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| TseError::new(TseCode::Io, format!("bind {addr} failed: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| TseError::new(TseCode::Io, format!("local_addr failed: {e}")))?;
        let shared = Arc::new(Shared {
            sys,
            config,
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            next_conn: AtomicU64::new(1),
            next_nonce: AtomicU64::new(1),
            dedup: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("tse-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| TseError::new(TseCode::Io, format!("spawn accept thread: {e}")))?;
        Ok(TseServer { addr: local, shared, accept: Some(accept) })
    }

    /// The bound address (resolves the ephemeral port of `":0"` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// True once a client has asked the server to shut down
    /// ([`Request::Shutdown`]); the embedding process should then call
    /// [`TseServer::drain`].
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Gracefully drain: stop accepting, let every in-flight request
    /// finish and flush its response, then close all connections and join
    /// all threads. Idempotent.
    pub fn drain(&mut self) {
        let start = Instant::now();
        self.shared.draining.store(true, Ordering::SeqCst);
        // Unblock the accept loop: it re-checks the flag per connection,
        // so one throwaway self-connect gets it past the blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Wake handlers blocked on an idle read; write sides stay open so
        // in-flight responses still flush.
        for (_, conn) in self.shared.conns.lock().drain() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let handlers = std::mem::take(&mut *self.shared.handlers.lock());
        for h in handlers {
            let _ = h.join();
        }
        let telemetry = self.shared.sys.telemetry();
        telemetry.observe_ns("server.drain_ns", start.elapsed().as_nanos() as u64);
        telemetry.set_gauge("server.connections", 0);
        telemetry.event("server.drained", &[]);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let telemetry = shared.sys.telemetry();
        let _ = stream.set_nodelay(true);
        // Admission control: refuse beyond the cap with typed backpressure
        // instead of queueing unbounded handler threads.
        if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
            telemetry.incr("server.rejected", 1);
            let retry = Response::Retry { retry_after_ms: shared.config.retry_after_ms };
            let mut stream = stream;
            let _ = write_frame(&mut stream, &encode_response(&retry));
            continue;
        }
        // One trace per connection, minted here and adopted by the handler
        // thread so every journal record of the connection's requests
        // carries the same trace id.
        let trace = telemetry.mint_trace("server.conn");
        let guard = telemetry.enter_trace(trace);
        let handoff = telemetry.handoff();
        drop(guard);
        let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
        if let Ok(read_half) = stream.try_clone() {
            shared.conns.lock().insert(conn_id, read_half);
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        telemetry.incr("server.accepted", 1);
        telemetry.set_gauge("server.connections", shared.active.load(Ordering::SeqCst) as u64);
        let handler_shared = Arc::clone(&shared);
        let handler = std::thread::Builder::new()
            .name(format!("tse-conn-{conn_id}"))
            .spawn(move || {
                let telemetry = handler_shared.sys.telemetry().clone();
                let _trace = handoff.map(|h| telemetry.adopt(h));
                serve_connection(stream, &handler_shared);
                handler_shared.conns.lock().remove(&conn_id);
                handler_shared.active.fetch_sub(1, Ordering::SeqCst);
                telemetry.set_gauge(
                    "server.connections",
                    handler_shared.active.load(Ordering::SeqCst) as u64,
                );
            });
        match handler {
            Ok(h) => shared.handlers.lock().push(h),
            Err(_) => {
                shared.conns.lock().remove(&conn_id);
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Per-connection state: the authenticated client plus its open handles.
struct ConnState {
    client: Option<LocalClient>,
    /// The authenticated user — the dedup-window key.
    user: Option<String>,
    readers: HashMap<u64, LocalReader>,
    writers: HashMap<u64, LocalWriter>,
    next_handle: u64,
}

impl ConnState {
    fn client(&self) -> TseResult<&LocalClient> {
        self.client.as_ref().ok_or_else(|| {
            TseError::new(TseCode::FailedPrecondition, "authenticate first (Hello frame)")
        })
    }

    fn reader(&self, sid: u64) -> TseResult<&LocalReader> {
        self.readers.get(&sid).ok_or_else(|| {
            TseError::new(TseCode::FailedPrecondition, format!("no open reader {sid}"))
        })
    }

    fn reader_mut(&mut self, sid: u64) -> TseResult<&mut LocalReader> {
        self.readers.get_mut(&sid).ok_or_else(|| {
            TseError::new(TseCode::FailedPrecondition, format!("no open reader {sid}"))
        })
    }

    fn writer(&self, wid: u64) -> TseResult<&LocalWriter> {
        self.writers.get(&wid).ok_or_else(|| {
            TseError::new(TseCode::FailedPrecondition, format!("no open writer {wid}"))
        })
    }

    fn writer_mut(&mut self, wid: u64) -> TseResult<&mut LocalWriter> {
        self.writers.get_mut(&wid).ok_or_else(|| {
            TseError::new(TseCode::FailedPrecondition, format!("no open writer {wid}"))
        })
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let telemetry = shared.sys.telemetry().clone();
    // Deadlines: the read timeout is both the idle-reaping tick (no frame
    // started) and the slow-client read budget (frame started, then
    // stalled); the write timeout bounds how long one hung peer can pin
    // this handler thread on a response flush.
    if shared.config.idle_timeout_ms > 0 {
        let _ = stream
            .set_read_timeout(Some(Duration::from_millis(shared.config.idle_timeout_ms)));
    }
    if shared.config.write_timeout_ms > 0 {
        let _ = stream
            .set_write_timeout(Some(Duration::from_millis(shared.config.write_timeout_ms)));
    }
    let mut state = ConnState {
        client: None,
        user: None,
        readers: HashMap::new(),
        writers: HashMap::new(),
        next_handle: 1,
    };
    loop {
        let frame = match read_frame_idle(&mut stream) {
            Ok(FrameRead::Frame(frame)) => frame,
            // Clean EOF: the peer closed, or drain half-closed our read
            // side after the last in-flight response flushed.
            Ok(FrameRead::Eof) => break,
            // A full idle budget passed without even a first byte: reap
            // the connection so quiet peers cannot pin handler threads.
            Ok(FrameRead::Idle) => {
                telemetry.incr("server.idle_reaped", 1);
                telemetry.event("server.idle_reaped", &[]);
                break;
            }
            Err(e) => {
                if e.code() == TseCode::DeadlineExceeded {
                    telemetry.incr("server.slow_client_dropped", 1);
                }
                break;
            }
        };
        let started = Instant::now();
        telemetry.incr("server.requests", 1);
        let (response, close) = match decode_request(&frame) {
            Ok(request) => {
                let close = matches!(request, Request::Bye | Request::Shutdown);
                (dispatch(shared, &mut state, request), close)
            }
            // A malformed frame poisons the stream position; answer with
            // the typed error, then hang up rather than guess at framing.
            Err(e) => (Response::from_error(&e), true),
        };
        telemetry.observe_ns("server.request_ns", started.elapsed().as_nanos() as u64);
        if write_frame(&mut stream, &encode_response(&response)).is_err() {
            break;
        }
        if close {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Execute one request against the connection's [`LocalClient`]. Every
/// failure is a [`TseError`]; `Unavailable` backpressure becomes a wire
/// `Retry` frame, everything else an `Err` frame carrying the code
/// verbatim.
///
/// Data writes carrying a non-zero idempotency id consult the user's
/// dedup window first: a retried write whose original ack was lost in
/// transit is answered from the cache, never applied twice. Only
/// *successful* responses are cached — a `Retry` frame means the write
/// was never executed, and typed errors are deterministic replays.
fn dispatch(shared: &Shared, state: &mut ConnState, request: Request) -> Response {
    let idem = request.idem().filter(|&i| i != 0);
    if let (Some(idem), Some(user)) = (idem, state.user.as_deref()) {
        if let Some(cached) = shared.dedup_lookup(user, idem) {
            shared.sys.telemetry().incr("server.dedup_hits", 1);
            return cached;
        }
    }
    let response = match apply(shared, state, request) {
        Ok(response) => response,
        Err(e) if e.code() == TseCode::Unavailable && e.retry_after_ms() > 0 => {
            Response::Retry { retry_after_ms: e.retry_after_ms() }
        }
        Err(e) => Response::from_error(&e),
    };
    if let (Some(idem), Some(user)) = (idem, state.user.as_deref()) {
        if !matches!(response, Response::Retry { .. } | Response::Err { .. }) {
            shared.dedup_record(user, idem, &response);
        }
    }
    response
}

fn apply(shared: &Shared, state: &mut ConnState, request: Request) -> TseResult<Response> {
    Ok(match request {
        Request::Hello { user } => {
            let client = LocalClient::open(shared.sys.clone(), &user)?;
            let version = client.bound_version().unwrap_or(0);
            shared.sys.telemetry().event("server.hello", &[("user", user.as_str().into())]);
            state.client = Some(client);
            state.user = Some(user);
            let nonce = shared.next_nonce.fetch_add(1, Ordering::SeqCst);
            Response::Welcome { version, nonce }
        }
        Request::Bind { family } => {
            state.client()?;
            let version = state.client.as_mut().expect("checked").bind(&family)?;
            Response::Bound { version }
        }
        Request::OpenReader => {
            let reader = state.client()?.session()?;
            let version = reader.view_version();
            let sid = state.next_handle;
            state.next_handle += 1;
            state.readers.insert(sid, reader);
            Response::ReaderOpened { sid, version }
        }
        Request::CloseReader { sid } => {
            state.readers.remove(&sid);
            Response::Closed
        }
        Request::RefreshReader { sid } => {
            state.reader_mut(sid)?.refresh()?;
            Response::Refreshed
        }
        Request::Get { sid, oid, class, attr } => {
            Response::Val(state.reader(sid)?.get(oid, &class, &attr)?)
        }
        Request::Extent { sid, class } => Response::Oids(state.reader(sid)?.extent(&class)?),
        Request::SelectWhere { sid, class, expr } => {
            Response::Oids(state.reader(sid)?.select_where(&class, &expr)?)
        }
        Request::Invoke { sid, oid, class, name } => {
            Response::Val(state.reader(sid)?.invoke(oid, &class, &name)?)
        }
        Request::OpenWriter => {
            let writer = state.client()?.writer()?;
            let wid = state.next_handle;
            state.next_handle += 1;
            state.writers.insert(wid, writer);
            Response::WriterOpened { wid }
        }
        Request::CloseWriter { wid } => {
            state.writers.remove(&wid);
            Response::Closed
        }
        Request::RefreshWriter { wid } => {
            state.writer_mut(wid)?.refresh()?;
            Response::Refreshed
        }
        Request::Create { wid, class, values, .. } => {
            let borrowed: Vec<(&str, Value)> =
                values.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            Response::OidIs(state.writer(wid)?.create(&class, &borrowed)?)
        }
        Request::SetAttrs { wid, oid, class, assignments, .. } => {
            let borrowed: Vec<(&str, Value)> =
                assignments.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            state.writer(wid)?.set(oid, &class, &borrowed)?;
            Response::Unit
        }
        Request::UpdateWhere { wid, class, expr, assignments, .. } => {
            let borrowed: Vec<(&str, Value)> =
                assignments.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            Response::Count(state.writer(wid)?.update_where(&class, &expr, &borrowed)? as u64)
        }
        Request::AddTo { wid, class, oids, .. } => {
            state.writer(wid)?.add_to(&oids, &class)?;
            Response::Unit
        }
        Request::RemoveFrom { wid, class, oids, .. } => {
            state.writer(wid)?.remove_from(&oids, &class)?;
            Response::Unit
        }
        Request::Delete { wid, oids, .. } => {
            state.writer(wid)?.delete_objects(&oids)?;
            Response::Unit
        }
        Request::DefineClass { name, supers, props } => {
            let supers: Vec<&str> = supers.iter().map(String::as_str).collect();
            state.client()?.define_class(&name, &supers, props)?;
            Response::Unit
        }
        Request::CreateView { classes } => {
            let classes: Vec<&str> = classes.iter().map(String::as_str).collect();
            Response::ViewVersion(state.client()?.create_view(&classes)?)
        }
        Request::Evolve { command } => {
            let summary = state.client()?.evolve(&command)?;
            Response::Evolved {
                version: summary.version,
                classes_touched: summary.classes_touched,
                duplicates_folded: summary.duplicates_folded,
                script: summary.script,
            }
        }
        Request::Describe => Response::Described(state.client()?.describe()?),
        Request::Versions => Response::ViewVersion(state.client()?.versions()?),
        Request::Health => {
            let (status, reason, retry_after_ms) = match state.client()?.health()? {
                HealthStatus::Healthy => (0, String::new(), 0),
                HealthStatus::Degraded { reason, retry_after_ms } => {
                    (1, reason, retry_after_ms)
                }
                HealthStatus::Poisoned => (2, String::new(), 0),
            };
            Response::HealthIs { status, reason, retry_after_ms }
        }
        Request::Ping => Response::Pong,
        Request::Shutdown => {
            state.client()?;
            shared.shutdown_requested.store(true, Ordering::SeqCst);
            shared.sys.telemetry().event("server.shutdown_requested", &[]);
            Response::Bye
        }
        Request::Bye => Response::Bye,
    })
}
