//! The TSE wire protocol: versioned, CRC32-framed binary request/response
//! messages, reusing the `walcodec` framing discipline.
//!
//! Frame layout (all integers big-endian), identical in both directions:
//!
//! ```text
//! u8 version (0xB4) | u8 kind | u32 body_len | u32 crc32(kind ‖ body_len ‖ body) | body
//! ```
//!
//! The version byte is `0xB4` for the same reason the WAL's is `0xA2`: it
//! is not a small integer, so a single-bit flip never turns it into another
//! valid version, and everything after it is covered by the CRC — every
//! single-bit corruption of a frame is detected (see the fuzz tests).
//! (`0xB3` was the pre-idempotency framing; v2 stamps an idempotency id
//! into every data-write body and a session nonce into `Welcome`, so the
//! two dialects are mutually unintelligible by design.)
//! Request kinds occupy `1..=63`, response kinds `64..`, so a frame
//! accidentally decoded in the wrong direction fails on its kind byte
//! instead of mis-parsing.
//!
//! Error payloads are [`TseError`] verbatim — `u16 code | u64 retry_after |
//! string message` — so a remote caller matches on exactly the numeric
//! codes an in-process caller gets. Value and property-definition bodies
//! reuse the storage layer's [`Payload`] codecs; nothing is re-specified.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tse_core::{TseCode, TseError, TseResult};
use tse_object_model::{get_pending_prop, put_pending_prop, Oid, PendingProp, Value};
use tse_storage::{Crc32, Payload};

/// Version byte of the wire frame format.
pub const WIRE_VERSION: u8 = 0xB4;

/// Frame header length: version, kind, body length, CRC.
pub const HEADER_LEN: usize = 10;

/// Upper bound on a frame body. Large enough for any realistic extent or
/// batch, small enough that a corrupt length prefix cannot make a peer
/// allocate gigabytes.
pub const MAX_FRAME_BODY: usize = 16 * 1024 * 1024;

fn protocol(msg: impl Into<String>) -> TseError {
    TseError::protocol(msg)
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// A client → server message. `sid`/`wid` are server-assigned handle ids
/// from [`Response::ReaderOpened`]/[`Response::WriterOpened`]; every data
/// operation goes through such a pinned handle.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// First frame on every connection: authenticate as `user`, binding
    /// the connection to the user's view family.
    Hello {
        /// User identity (doubles as the initial view family).
        user: String,
    },
    /// Re-bind the connection to another view family's current version.
    Bind {
        /// Family name.
        family: String,
    },
    /// Open a pinned read handle at the connection's bound view version.
    OpenReader,
    /// Close a read handle.
    CloseReader {
        /// Handle id.
        sid: u64,
    },
    /// Re-pin a read handle to the newest data epoch.
    RefreshReader {
        /// Handle id.
        sid: u64,
    },
    /// [`tse_core::TseReader::get`].
    Get {
        /// Handle id.
        sid: u64,
        /// Target object.
        oid: Oid,
        /// View-local class name.
        class: String,
        /// Attribute name.
        attr: String,
    },
    /// [`tse_core::TseReader::extent`].
    Extent {
        /// Handle id.
        sid: u64,
        /// View-local class name.
        class: String,
    },
    /// [`tse_core::TseReader::select_where`].
    SelectWhere {
        /// Handle id.
        sid: u64,
        /// View-local class name.
        class: String,
        /// Predicate expression text.
        expr: String,
    },
    /// [`tse_core::TseReader::invoke`].
    Invoke {
        /// Handle id.
        sid: u64,
        /// Target object.
        oid: Oid,
        /// View-local class name.
        class: String,
        /// Property name.
        name: String,
    },
    /// Open a pinned write handle at the connection's bound view version.
    OpenWriter,
    /// Close a write handle.
    CloseWriter {
        /// Handle id.
        wid: u64,
    },
    /// Re-pin a write handle to the newest metadata epoch.
    RefreshWriter {
        /// Handle id.
        wid: u64,
    },
    /// [`tse_core::TseWriter::create`].
    Create {
        /// Handle id.
        wid: u64,
        /// Idempotency id (0 = no dedup requested).
        idem: u64,
        /// View-local class name.
        class: String,
        /// Initial attribute values.
        values: Vec<(String, Value)>,
    },
    /// [`tse_core::TseWriter::set`].
    SetAttrs {
        /// Handle id.
        wid: u64,
        /// Idempotency id (0 = no dedup requested).
        idem: u64,
        /// Target object.
        oid: Oid,
        /// View-local class name.
        class: String,
        /// Attribute assignments.
        assignments: Vec<(String, Value)>,
    },
    /// [`tse_core::TseWriter::update_where`].
    UpdateWhere {
        /// Handle id.
        wid: u64,
        /// Idempotency id (0 = no dedup requested).
        idem: u64,
        /// View-local class name.
        class: String,
        /// Predicate expression text.
        expr: String,
        /// Attribute assignments.
        assignments: Vec<(String, Value)>,
    },
    /// [`tse_core::TseWriter::add_to`].
    AddTo {
        /// Handle id.
        wid: u64,
        /// Idempotency id (0 = no dedup requested).
        idem: u64,
        /// View-local class name.
        class: String,
        /// Objects to add.
        oids: Vec<Oid>,
    },
    /// [`tse_core::TseWriter::remove_from`].
    RemoveFrom {
        /// Handle id.
        wid: u64,
        /// Idempotency id (0 = no dedup requested).
        idem: u64,
        /// View-local class name.
        class: String,
        /// Objects to remove.
        oids: Vec<Oid>,
    },
    /// [`tse_core::TseWriter::delete_objects`].
    Delete {
        /// Handle id.
        wid: u64,
        /// Idempotency id (0 = no dedup requested).
        idem: u64,
        /// Objects to destroy.
        oids: Vec<Oid>,
    },
    /// [`tse_core::TseClient::define_class`].
    DefineClass {
        /// Class name.
        name: String,
        /// Superclass names.
        supers: Vec<String>,
        /// Property definitions.
        props: Vec<PendingProp>,
    },
    /// [`tse_core::TseClient::create_view`] over the bound family.
    CreateView {
        /// Global class names the view exposes.
        classes: Vec<String>,
    },
    /// [`tse_core::TseClient::evolve`] on the bound family.
    Evolve {
        /// Schema-change command text.
        command: String,
    },
    /// [`tse_core::TseClient::describe`].
    Describe,
    /// [`tse_core::TseClient::versions`].
    Versions,
    /// [`tse_core::TseClient::health`].
    Health,
    /// Liveness probe.
    Ping,
    /// Ask the whole server to drain and exit (used by CI smoke runs and
    /// operators; in-flight requests on other connections finish first).
    Shutdown,
    /// Clean connection close.
    Bye,
}

impl Request {
    /// The idempotency id stamped into a data-write request, if any.
    /// `Some(0)` means the client declined dedup for this write; reads,
    /// handle management, and schema DDL return [`None`] — retrying a
    /// read is free and retrying DDL is observable (an extra view
    /// version), so the server's dedup window only tracks data writes.
    pub fn idem(&self) -> Option<u64> {
        match self {
            Request::Create { idem, .. }
            | Request::SetAttrs { idem, .. }
            | Request::UpdateWhere { idem, .. }
            | Request::AddTo { idem, .. }
            | Request::RemoveFrom { idem, .. }
            | Request::Delete { idem, .. } => Some(*idem),
            _ => None,
        }
    }
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Hello`]: the connection is authenticated and
    /// bound (version 0 = the family has no view yet).
    Welcome {
        /// Bound view version.
        version: u32,
        /// Server-minted session nonce. Clients derive idempotency ids
        /// from it (`nonce << 32 | counter`) so ids never collide across
        /// a user's concurrent or successive connections.
        nonce: u64,
    },
    /// Reply to [`Request::Bind`].
    Bound {
        /// Bound view version (0 = none yet).
        version: u32,
    },
    /// Reply to [`Request::OpenReader`].
    ReaderOpened {
        /// Handle id for subsequent read requests.
        sid: u64,
        /// The view version the handle is pinned to.
        version: u32,
    },
    /// Reply to [`Request::OpenWriter`].
    WriterOpened {
        /// Handle id for subsequent write requests.
        wid: u64,
    },
    /// Handle closed.
    Closed,
    /// Handle re-pinned.
    Refreshed,
    /// A single value.
    Val(
        /// The value.
        Value,
    ),
    /// A single object id.
    OidIs(
        /// The oid.
        Oid,
    ),
    /// A list of object ids.
    Oids(
        /// The oids.
        Vec<Oid>,
    ),
    /// A count (e.g. objects matched by `update_where`).
    Count(
        /// The count.
        u64,
    ),
    /// Success with no payload.
    Unit,
    /// A view version number (create_view, versions).
    ViewVersion(
        /// The version.
        u32,
    ),
    /// Reply to [`Request::Evolve`].
    Evolved {
        /// The family's new view version.
        version: u32,
        /// View classes replaced by primed counterparts.
        classes_touched: u64,
        /// Newly derived classes folded onto duplicates.
        duplicates_folded: u64,
        /// Generated view specification script.
        script: String,
    },
    /// Reply to [`Request::Describe`].
    Described(
        /// Rendered view text.
        String,
    ),
    /// Reply to [`Request::Health`]. `status` is 0 = healthy, 1 =
    /// degraded, 2 = poisoned.
    HealthIs {
        /// Status discriminant.
        status: u8,
        /// Degradation reason ("" unless degraded).
        reason: String,
        /// Suggested write backoff, milliseconds.
        retry_after_ms: u64,
    },
    /// Liveness reply.
    Pong,
    /// Admission control: the server is at its connection cap (or
    /// draining) and did not register this connection. Reconnect after
    /// the hint.
    Retry {
        /// Suggested reconnect backoff, milliseconds.
        retry_after_ms: u64,
    },
    /// The request failed; payload is a [`TseError`] verbatim.
    Err {
        /// Stable numeric code ([`TseCode`]).
        code: u16,
        /// Backoff hint, milliseconds (0 = none).
        retry_after_ms: u64,
        /// Human-readable context.
        message: String,
    },
    /// Clean close acknowledgement.
    Bye,
}

impl Response {
    /// Build the error response carrying `err` verbatim.
    pub fn from_error(err: &TseError) -> Response {
        Response::Err {
            code: err.code().as_u16(),
            retry_after_ms: err.retry_after_ms(),
            message: err.message().to_string(),
        }
    }

    /// Reconstruct the [`TseError`] an error response carries.
    pub fn to_error(code: u16, retry_after_ms: u64, message: &str) -> TseError {
        TseError::new(TseCode::from_u16(code), message).with_retry_after_ms(retry_after_ms)
    }
}

// ---------------------------------------------------------------------------
// Body primitives (same shapes as walcodec)
// ---------------------------------------------------------------------------

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_strs(buf: &mut BytesMut, strs: &[String]) {
    buf.put_u32(strs.len() as u32);
    for s in strs {
        put_str(buf, s);
    }
}

fn put_oids(buf: &mut BytesMut, oids: &[Oid]) {
    buf.put_u32(oids.len() as u32);
    for oid in oids {
        buf.put_u64(oid.0);
    }
}

fn put_pairs(buf: &mut BytesMut, pairs: &[(String, Value)]) {
    buf.put_u32(pairs.len() as u32);
    for (name, value) in pairs {
        put_str(buf, name);
        value.encode(buf);
    }
}

fn get_str(buf: &mut Bytes) -> TseResult<String> {
    if buf.remaining() < 4 {
        return Err(protocol("frame: truncated string length"));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(protocol("frame: truncated string"));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| protocol("frame: string not utf-8"))
}

fn get_strs(buf: &mut Bytes) -> TseResult<Vec<String>> {
    if buf.remaining() < 4 {
        return Err(protocol("frame: truncated string count"));
    }
    let n = buf.get_u32() as usize;
    let mut out = Vec::with_capacity(n.min(buf.remaining()));
    for _ in 0..n {
        out.push(get_str(buf)?);
    }
    Ok(out)
}

fn get_oids(buf: &mut Bytes) -> TseResult<Vec<Oid>> {
    if buf.remaining() < 4 {
        return Err(protocol("frame: truncated oid count"));
    }
    let n = buf.get_u32() as usize;
    if buf.remaining() < n * 8 {
        return Err(protocol("frame: truncated oid list"));
    }
    Ok((0..n).map(|_| Oid(buf.get_u64())).collect())
}

fn get_pairs(buf: &mut Bytes) -> TseResult<Vec<(String, Value)>> {
    if buf.remaining() < 4 {
        return Err(protocol("frame: truncated pair count"));
    }
    let n = buf.get_u32() as usize;
    let mut pairs = Vec::with_capacity(n.min(buf.remaining()));
    for _ in 0..n {
        let name = get_str(buf)?;
        let value = Value::decode(buf)
            .map_err(|e| protocol(format!("frame: bad value payload: {e}")))?;
        pairs.push((name, value));
    }
    Ok(pairs)
}

fn get_u64(buf: &mut Bytes, what: &str) -> TseResult<u64> {
    if buf.remaining() < 8 {
        return Err(protocol(format!("frame: truncated {what}")));
    }
    Ok(buf.get_u64())
}

fn get_u32(buf: &mut Bytes, what: &str) -> TseResult<u32> {
    if buf.remaining() < 4 {
        return Err(protocol(format!("frame: truncated {what}")));
    }
    Ok(buf.get_u32())
}

fn get_oid(buf: &mut Bytes) -> TseResult<Oid> {
    Ok(Oid(get_u64(buf, "oid")?))
}

// ---------------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------------

impl Request {
    fn kind(&self) -> u8 {
        match self {
            Request::Hello { .. } => 1,
            Request::Bind { .. } => 2,
            Request::OpenReader => 3,
            Request::CloseReader { .. } => 4,
            Request::RefreshReader { .. } => 5,
            Request::Get { .. } => 6,
            Request::Extent { .. } => 7,
            Request::SelectWhere { .. } => 8,
            Request::Invoke { .. } => 9,
            Request::OpenWriter => 10,
            Request::CloseWriter { .. } => 11,
            Request::RefreshWriter { .. } => 12,
            Request::Create { .. } => 13,
            Request::SetAttrs { .. } => 14,
            Request::UpdateWhere { .. } => 15,
            Request::AddTo { .. } => 16,
            Request::RemoveFrom { .. } => 17,
            Request::Delete { .. } => 18,
            Request::DefineClass { .. } => 19,
            Request::CreateView { .. } => 20,
            Request::Evolve { .. } => 21,
            Request::Describe => 22,
            Request::Versions => 23,
            Request::Health => 24,
            Request::Ping => 25,
            Request::Shutdown => 26,
            Request::Bye => 27,
        }
    }

    fn encode_body(&self, body: &mut BytesMut) {
        match self {
            Request::Hello { user } => put_str(body, user),
            Request::Bind { family } => put_str(body, family),
            Request::OpenReader
            | Request::OpenWriter
            | Request::Describe
            | Request::Versions
            | Request::Health
            | Request::Ping
            | Request::Shutdown
            | Request::Bye => {}
            Request::CloseReader { sid }
            | Request::RefreshReader { sid } => body.put_u64(*sid),
            Request::CloseWriter { wid } | Request::RefreshWriter { wid } => body.put_u64(*wid),
            Request::Get { sid, oid, class, attr } => {
                body.put_u64(*sid);
                body.put_u64(oid.0);
                put_str(body, class);
                put_str(body, attr);
            }
            Request::Extent { sid, class } => {
                body.put_u64(*sid);
                put_str(body, class);
            }
            Request::SelectWhere { sid, class, expr } => {
                body.put_u64(*sid);
                put_str(body, class);
                put_str(body, expr);
            }
            Request::Invoke { sid, oid, class, name } => {
                body.put_u64(*sid);
                body.put_u64(oid.0);
                put_str(body, class);
                put_str(body, name);
            }
            Request::Create { wid, idem, class, values } => {
                body.put_u64(*wid);
                body.put_u64(*idem);
                put_str(body, class);
                put_pairs(body, values);
            }
            Request::SetAttrs { wid, idem, oid, class, assignments } => {
                body.put_u64(*wid);
                body.put_u64(*idem);
                body.put_u64(oid.0);
                put_str(body, class);
                put_pairs(body, assignments);
            }
            Request::UpdateWhere { wid, idem, class, expr, assignments } => {
                body.put_u64(*wid);
                body.put_u64(*idem);
                put_str(body, class);
                put_str(body, expr);
                put_pairs(body, assignments);
            }
            Request::AddTo { wid, idem, class, oids }
            | Request::RemoveFrom { wid, idem, class, oids } => {
                body.put_u64(*wid);
                body.put_u64(*idem);
                put_str(body, class);
                put_oids(body, oids);
            }
            Request::Delete { wid, idem, oids } => {
                body.put_u64(*wid);
                body.put_u64(*idem);
                put_oids(body, oids);
            }
            Request::DefineClass { name, supers, props } => {
                put_str(body, name);
                put_strs(body, supers);
                body.put_u32(props.len() as u32);
                for p in props {
                    put_pending_prop(body, p);
                }
            }
            Request::CreateView { classes } => put_strs(body, classes),
            Request::Evolve { command } => put_str(body, command),
        }
    }

    fn decode_body(kind: u8, buf: &mut Bytes) -> TseResult<Request> {
        Ok(match kind {
            1 => Request::Hello { user: get_str(buf)? },
            2 => Request::Bind { family: get_str(buf)? },
            3 => Request::OpenReader,
            4 => Request::CloseReader { sid: get_u64(buf, "sid")? },
            5 => Request::RefreshReader { sid: get_u64(buf, "sid")? },
            6 => Request::Get {
                sid: get_u64(buf, "sid")?,
                oid: get_oid(buf)?,
                class: get_str(buf)?,
                attr: get_str(buf)?,
            },
            7 => Request::Extent { sid: get_u64(buf, "sid")?, class: get_str(buf)? },
            8 => Request::SelectWhere {
                sid: get_u64(buf, "sid")?,
                class: get_str(buf)?,
                expr: get_str(buf)?,
            },
            9 => Request::Invoke {
                sid: get_u64(buf, "sid")?,
                oid: get_oid(buf)?,
                class: get_str(buf)?,
                name: get_str(buf)?,
            },
            10 => Request::OpenWriter,
            11 => Request::CloseWriter { wid: get_u64(buf, "wid")? },
            12 => Request::RefreshWriter { wid: get_u64(buf, "wid")? },
            13 => Request::Create {
                wid: get_u64(buf, "wid")?,
                idem: get_u64(buf, "idem")?,
                class: get_str(buf)?,
                values: get_pairs(buf)?,
            },
            14 => Request::SetAttrs {
                wid: get_u64(buf, "wid")?,
                idem: get_u64(buf, "idem")?,
                oid: get_oid(buf)?,
                class: get_str(buf)?,
                assignments: get_pairs(buf)?,
            },
            15 => Request::UpdateWhere {
                wid: get_u64(buf, "wid")?,
                idem: get_u64(buf, "idem")?,
                class: get_str(buf)?,
                expr: get_str(buf)?,
                assignments: get_pairs(buf)?,
            },
            16 => Request::AddTo {
                wid: get_u64(buf, "wid")?,
                idem: get_u64(buf, "idem")?,
                class: get_str(buf)?,
                oids: get_oids(buf)?,
            },
            17 => Request::RemoveFrom {
                wid: get_u64(buf, "wid")?,
                idem: get_u64(buf, "idem")?,
                class: get_str(buf)?,
                oids: get_oids(buf)?,
            },
            18 => Request::Delete {
                wid: get_u64(buf, "wid")?,
                idem: get_u64(buf, "idem")?,
                oids: get_oids(buf)?,
            },
            19 => {
                let name = get_str(buf)?;
                let supers = get_strs(buf)?;
                let n = get_u32(buf, "prop count")? as usize;
                let mut props = Vec::with_capacity(n.min(buf.remaining()));
                for _ in 0..n {
                    props.push(
                        get_pending_prop(buf)
                            .map_err(|e| protocol(format!("frame: bad property: {e}")))?,
                    );
                }
                Request::DefineClass { name, supers, props }
            }
            20 => Request::CreateView { classes: get_strs(buf)? },
            21 => Request::Evolve { command: get_str(buf)? },
            22 => Request::Describe,
            23 => Request::Versions,
            24 => Request::Health,
            25 => Request::Ping,
            26 => Request::Shutdown,
            27 => Request::Bye,
            other => return Err(protocol(format!("unknown request kind {other}"))),
        })
    }
}

// ---------------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------------

impl Response {
    fn kind(&self) -> u8 {
        match self {
            Response::Welcome { .. } => 64,
            Response::Bound { .. } => 65,
            Response::ReaderOpened { .. } => 66,
            Response::WriterOpened { .. } => 67,
            Response::Closed => 68,
            Response::Refreshed => 69,
            Response::Val(_) => 70,
            Response::OidIs(_) => 71,
            Response::Oids(_) => 72,
            Response::Count(_) => 73,
            Response::Unit => 74,
            Response::ViewVersion(_) => 75,
            Response::Evolved { .. } => 76,
            Response::Described(_) => 77,
            Response::HealthIs { .. } => 78,
            Response::Pong => 79,
            Response::Retry { .. } => 80,
            Response::Err { .. } => 81,
            Response::Bye => 82,
        }
    }

    fn encode_body(&self, body: &mut BytesMut) {
        match self {
            Response::Welcome { version, nonce } => {
                body.put_u32(*version);
                body.put_u64(*nonce);
            }
            Response::Bound { version } => body.put_u32(*version),
            Response::ReaderOpened { sid, version } => {
                body.put_u64(*sid);
                body.put_u32(*version);
            }
            Response::WriterOpened { wid } => body.put_u64(*wid),
            Response::Closed | Response::Refreshed | Response::Unit | Response::Pong
            | Response::Bye => {}
            Response::Val(v) => v.encode(body),
            Response::OidIs(oid) => body.put_u64(oid.0),
            Response::Oids(oids) => put_oids(body, oids),
            Response::Count(n) => body.put_u64(*n),
            Response::ViewVersion(v) => body.put_u32(*v),
            Response::Evolved { version, classes_touched, duplicates_folded, script } => {
                body.put_u32(*version);
                body.put_u64(*classes_touched);
                body.put_u64(*duplicates_folded);
                put_str(body, script);
            }
            Response::Described(text) => put_str(body, text),
            Response::HealthIs { status, reason, retry_after_ms } => {
                body.put_u8(*status);
                put_str(body, reason);
                body.put_u64(*retry_after_ms);
            }
            Response::Retry { retry_after_ms } => body.put_u64(*retry_after_ms),
            Response::Err { code, retry_after_ms, message } => {
                body.put_u16(*code);
                body.put_u64(*retry_after_ms);
                put_str(body, message);
            }
        }
    }

    fn decode_body(kind: u8, buf: &mut Bytes) -> TseResult<Response> {
        Ok(match kind {
            64 => Response::Welcome {
                version: get_u32(buf, "version")?,
                nonce: get_u64(buf, "nonce")?,
            },
            65 => Response::Bound { version: get_u32(buf, "version")? },
            66 => Response::ReaderOpened {
                sid: get_u64(buf, "sid")?,
                version: get_u32(buf, "version")?,
            },
            67 => Response::WriterOpened { wid: get_u64(buf, "wid")? },
            68 => Response::Closed,
            69 => Response::Refreshed,
            70 => Response::Val(
                Value::decode(buf)
                    .map_err(|e| protocol(format!("frame: bad value payload: {e}")))?,
            ),
            71 => Response::OidIs(get_oid(buf)?),
            72 => Response::Oids(get_oids(buf)?),
            73 => Response::Count(get_u64(buf, "count")?),
            74 => Response::Unit,
            75 => Response::ViewVersion(get_u32(buf, "version")?),
            76 => Response::Evolved {
                version: get_u32(buf, "version")?,
                classes_touched: get_u64(buf, "classes_touched")?,
                duplicates_folded: get_u64(buf, "duplicates_folded")?,
                script: get_str(buf)?,
            },
            77 => Response::Described(get_str(buf)?),
            78 => Response::HealthIs {
                status: {
                    if buf.remaining() < 1 {
                        return Err(protocol("frame: truncated health status"));
                    }
                    buf.get_u8()
                },
                reason: get_str(buf)?,
                retry_after_ms: get_u64(buf, "retry_after_ms")?,
            },
            79 => Response::Pong,
            80 => Response::Retry { retry_after_ms: get_u64(buf, "retry_after_ms")? },
            81 => Response::Err {
                code: {
                    if buf.remaining() < 2 {
                        return Err(protocol("frame: truncated error code"));
                    }
                    buf.get_u16()
                },
                retry_after_ms: get_u64(buf, "retry_after_ms")?,
                message: get_str(buf)?,
            },
            82 => Response::Bye,
            other => return Err(protocol(format!("unknown response kind {other}"))),
        })
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

fn encode_frame(kind: u8, body: &BytesMut) -> Vec<u8> {
    let len = body.len() as u32;
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(&len.to_be_bytes());
    crc.update(body.as_ref());
    let mut frame = Vec::with_capacity(HEADER_LEN + body.len());
    frame.push(WIRE_VERSION);
    frame.push(kind);
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(&crc.finalize().to_be_bytes());
    frame.extend_from_slice(body.as_ref());
    frame
}

/// Encode a request into a complete frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut body = BytesMut::new();
    req.encode_body(&mut body);
    encode_frame(req.kind(), &body)
}

/// Encode a response into a complete frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut body = BytesMut::new();
    resp.encode_body(&mut body);
    encode_frame(resp.kind(), &body)
}

/// Validate a complete frame (version, length, CRC) and hand back the kind
/// byte and body. Shared by both decode directions.
fn check_frame(frame: &[u8]) -> TseResult<(u8, Bytes)> {
    if frame.first() != Some(&WIRE_VERSION) {
        return Err(protocol(format!(
            "unsupported protocol version {:#04x} (expected {WIRE_VERSION:#04x})",
            frame.first().copied().unwrap_or(0)
        )));
    }
    if frame.len() < HEADER_LEN {
        return Err(protocol("frame: truncated header"));
    }
    let kind = frame[1];
    let body_len = u32::from_be_bytes(frame[2..6].try_into().unwrap()) as usize;
    let crc = u32::from_be_bytes(frame[6..10].try_into().unwrap());
    let body = &frame[HEADER_LEN..];
    if body.len() != body_len {
        return Err(protocol(format!(
            "frame: body is {} bytes, header says {body_len}",
            body.len()
        )));
    }
    let mut h = Crc32::new();
    h.update(&[kind]);
    h.update(&(body_len as u32).to_be_bytes());
    h.update(body);
    if h.finalize() != crc {
        return Err(protocol("frame: crc mismatch"));
    }
    Ok((kind, Bytes::from(body.to_vec())))
}

fn check_trailing(buf: &Bytes) -> TseResult<()> {
    if buf.remaining() > 0 {
        return Err(protocol("frame: trailing bytes in body"));
    }
    Ok(())
}

/// Decode one complete request frame.
pub fn decode_request(frame: &[u8]) -> TseResult<Request> {
    let (kind, mut buf) = check_frame(frame)?;
    let req = Request::decode_body(kind, &mut buf)?;
    check_trailing(&buf)?;
    Ok(req)
}

/// Decode one complete response frame.
pub fn decode_response(frame: &[u8]) -> TseResult<Response> {
    let (kind, mut buf) = check_frame(frame)?;
    let resp = Response::decode_body(kind, &mut buf)?;
    check_trailing(&buf)?;
    Ok(resp)
}

/// Outcome of [`read_frame_idle`]: a frame, a clean EOF, or an idle tick.
#[derive(Debug)]
pub enum FrameRead {
    /// One complete frame.
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary.
    Eof,
    /// The socket read timeout fired before the first byte of a frame
    /// arrived: the peer is idle, not broken or stalled. The caller
    /// decides whether to keep waiting (and for how long).
    Idle,
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// `read_exact` for bytes *inside* a frame: once the first byte of a frame
/// has arrived, a read timeout no longer means "idle" — the peer stalled
/// mid-frame, which is a deadline violation, not quiet.
fn read_exact_mid_frame(r: &mut impl Read, buf: &mut [u8]) -> TseResult<()> {
    r.read_exact(buf).map_err(|e| {
        if is_timeout(&e) {
            TseError::new(
                TseCode::DeadlineExceeded,
                "peer stalled mid-frame (read timeout elapsed)",
            )
        } else {
            io_error(e)
        }
    })
}

/// Read the remainder of a frame whose first (version) byte is `first`.
/// The header is validated (version byte, body-length cap) **before** the
/// body is read, so a corrupt length prefix can never make the peer
/// allocate or block on gigabytes.
fn finish_frame(r: &mut impl Read, first: u8) -> TseResult<Vec<u8>> {
    let mut header = [0u8; HEADER_LEN];
    header[0] = first;
    read_exact_mid_frame(r, &mut header[1..])?;
    if header[0] != WIRE_VERSION {
        return Err(protocol(format!(
            "unsupported protocol version {:#04x} (expected {WIRE_VERSION:#04x})",
            header[0]
        )));
    }
    let body_len = u32::from_be_bytes(header[2..6].try_into().unwrap()) as usize;
    if body_len > MAX_FRAME_BODY {
        return Err(protocol(format!(
            "frame body of {body_len} bytes exceeds the {MAX_FRAME_BODY}-byte cap"
        )));
    }
    let mut frame = vec![0u8; HEADER_LEN + body_len];
    frame[..HEADER_LEN].copy_from_slice(&header);
    read_exact_mid_frame(r, &mut frame[HEADER_LEN..])?;
    Ok(frame)
}

/// Read one complete frame from a stream. Returns `Ok(None)` on clean EOF
/// at a frame boundary. A read timeout — before the first byte or mid-frame
/// — surfaces as [`TseCode::DeadlineExceeded`]; callers that want to treat
/// pre-frame quiet as benign use [`read_frame_idle`] instead.
pub fn read_frame(r: &mut impl Read) -> TseResult<Option<Vec<u8>>> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                return Err(TseError::new(
                    TseCode::DeadlineExceeded,
                    "timed out waiting for a frame",
                ))
            }
            Err(e) => return Err(io_error(e)),
        }
    }
    finish_frame(r, first[0]).map(Some)
}

/// Like [`read_frame`], but a read timeout before the first byte of a
/// frame returns [`FrameRead::Idle`] instead of an error, so a server
/// handler can use its socket read timeout as an idle-reaping tick
/// without conflating "quiet client" with "stalled client". A timeout
/// *mid-frame* is still an error (the slow-client read budget).
pub fn read_frame_idle(r: &mut impl Read) -> TseResult<FrameRead> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(FrameRead::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => return Ok(FrameRead::Idle),
            Err(e) => return Err(io_error(e)),
        }
    }
    finish_frame(r, first[0]).map(FrameRead::Frame)
}

/// Write one complete frame and flush it.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> TseResult<()> {
    w.write_all(frame).map_err(io_error)?;
    w.flush().map_err(io_error)
}

fn io_error(e: io::Error) -> TseError {
    TseError::new(TseCode::Io, format!("connection i/o failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        use tse_object_model::{PropertyDef, ValueType};
        vec![
            Request::Hello { user: "alice".into() },
            Request::Bind { family: "VS".into() },
            Request::OpenReader,
            Request::CloseReader { sid: 7 },
            Request::RefreshReader { sid: 7 },
            Request::Get { sid: 7, oid: Oid(3), class: "Person".into(), attr: "name".into() },
            Request::Extent { sid: 7, class: "Person".into() },
            Request::SelectWhere { sid: 7, class: "Person".into(), expr: "age > 3".into() },
            Request::Invoke { sid: 7, oid: Oid(3), class: "Person".into(), name: "id".into() },
            Request::OpenWriter,
            Request::CloseWriter { wid: 9 },
            Request::RefreshWriter { wid: 9 },
            Request::Create {
                wid: 9,
                idem: (11 << 32) | 1,
                class: "Person".into(),
                values: vec![("name".into(), Value::Str("ann".into()))],
            },
            Request::SetAttrs {
                wid: 9,
                idem: (11 << 32) | 2,
                oid: Oid(3),
                class: "Person".into(),
                assignments: vec![("age".into(), Value::Int(30))],
            },
            Request::UpdateWhere {
                wid: 9,
                idem: (11 << 32) | 3,
                class: "Person".into(),
                expr: "age == 0".into(),
                assignments: vec![("age".into(), Value::Int(1))],
            },
            Request::AddTo {
                wid: 9,
                idem: 0,
                class: "Club".into(),
                oids: vec![Oid(1), Oid(2)],
            },
            Request::RemoveFrom { wid: 9, idem: 4, class: "Club".into(), oids: vec![Oid(2)] },
            Request::Delete { wid: 9, idem: 5, oids: vec![Oid(1), Oid(2), Oid(3)] },
            Request::DefineClass {
                name: "Person".into(),
                supers: vec!["Agent".into()],
                props: vec![PropertyDef::stored("name", ValueType::Str, Value::Null)],
            },
            Request::CreateView { classes: vec!["Person".into(), "Agent".into()] },
            Request::Evolve { command: "add_attribute age: int = 0 to Person".into() },
            Request::Describe,
            Request::Versions,
            Request::Health,
            Request::Ping,
            Request::Shutdown,
            Request::Bye,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Welcome { version: 2, nonce: 41 },
            Response::Bound { version: 0 },
            Response::ReaderOpened { sid: 7, version: 2 },
            Response::WriterOpened { wid: 9 },
            Response::Closed,
            Response::Refreshed,
            Response::Val(Value::Str("ann".into())),
            Response::OidIs(Oid(3)),
            Response::Oids(vec![Oid(1), Oid(2)]),
            Response::Count(41),
            Response::Unit,
            Response::ViewVersion(3),
            Response::Evolved {
                version: 2,
                classes_touched: 4,
                duplicates_folded: 1,
                script: "define view ...".into(),
            },
            Response::Described("view VS (version 2)".into()),
            Response::HealthIs { status: 1, reason: "disk_full".into(), retry_after_ms: 64 },
            Response::Pong,
            Response::Retry { retry_after_ms: 100 },
            Response::Err { code: 5, retry_after_ms: 64, message: "service degraded".into() },
            Response::Bye,
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for req in sample_requests() {
            let frame = encode_request(&req);
            assert_eq!(decode_request(&frame).unwrap(), req, "round trip of {req:?}");
        }
    }

    #[test]
    fn every_response_round_trips() {
        for resp in sample_responses() {
            let frame = encode_response(&resp);
            assert_eq!(decode_response(&frame).unwrap(), resp, "round trip of {resp:?}");
        }
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let mut pipe: Vec<u8> = Vec::new();
        for req in sample_requests() {
            write_frame(&mut pipe, &encode_request(&req)).unwrap();
        }
        let mut cursor = io::Cursor::new(pipe);
        for req in sample_requests() {
            let frame = read_frame(&mut cursor).unwrap().expect("frame present");
            assert_eq!(decode_request(&frame).unwrap(), req);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF after last frame");
    }

    // ---- fuzz suite mirroring walcodec's ---------------------------------

    #[test]
    fn every_single_bit_flip_is_detected() {
        for req in sample_requests() {
            let frame = encode_request(&req);
            for byte in 0..frame.len() {
                for bit in 0..8 {
                    let mut mutated = frame.clone();
                    mutated[byte] ^= 1 << bit;
                    match decode_request(&mutated) {
                        Err(_) => {}
                        Ok(decoded) => panic!(
                            "bit flip at byte {byte} bit {bit} of {req:?} \
                             decoded silently as {decoded:?}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn truncated_tails_are_rejected() {
        for resp in sample_responses() {
            let frame = encode_response(&resp);
            for keep in 0..frame.len() {
                assert!(
                    decode_response(&frame[..keep]).is_err(),
                    "truncation to {keep} bytes of {resp:?} must not decode"
                );
            }
        }
    }

    #[test]
    fn oversized_length_prefixes_error_cleanly() {
        let mut frame = encode_request(&Request::Ping);
        frame[2..6].copy_from_slice(&(u32::MAX).to_be_bytes());
        // Direct decode: header/body length mismatch.
        assert!(decode_request(&frame).is_err());
        // Stream read: rejected by the cap before any allocation.
        let mut cursor = io::Cursor::new(frame);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.code(), TseCode::Protocol);
        assert!(err.message().contains("cap"), "unexpected message: {}", err.message());
    }

    #[test]
    fn v_next_version_byte_is_refused_not_misparsed() {
        let mut frame = encode_request(&Request::Hello { user: "alice".into() });
        frame[0] = 0xB5; // hypothetical v-next
        let err = decode_request(&frame).unwrap_err();
        assert_eq!(err.code(), TseCode::Protocol);
        assert!(err.message().contains("version"));
        let mut cursor = io::Cursor::new(frame);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn v_prev_version_byte_is_refused_not_misparsed() {
        // The pre-idempotency dialect (0xB3) must be refused up front, not
        // decoded against the v2 body shapes.
        let mut frame = encode_request(&Request::Ping);
        frame[0] = 0xB3;
        assert_eq!(decode_request(&frame).unwrap_err().code(), TseCode::Protocol);
    }

    #[test]
    fn only_data_writes_carry_idempotency_ids() {
        for req in sample_requests() {
            let dedupable = matches!(
                req,
                Request::Create { .. }
                    | Request::SetAttrs { .. }
                    | Request::UpdateWhere { .. }
                    | Request::AddTo { .. }
                    | Request::RemoveFrom { .. }
                    | Request::Delete { .. }
            );
            assert_eq!(req.idem().is_some(), dedupable, "idem() of {req:?}");
        }
    }

    // ---- adversarial transport behaviour ---------------------------------

    /// A reader that hands back at most one byte per `read` call — the
    /// worst legal TCP fragmentation.
    struct OneByteAtATime<R>(R);

    impl<R: Read> Read for OneByteAtATime<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(1);
            self.0.read(&mut buf[..n])
        }
    }

    /// A reader that yields `limit` bytes, then stalls (WouldBlock, as a
    /// socket with `set_read_timeout` surfaces an expired timer).
    struct StallAfter {
        data: io::Cursor<Vec<u8>>,
        limit: usize,
    }

    impl Read for StallAfter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.limit == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "read timed out"));
            }
            let n = buf.len().min(self.limit);
            let read = self.data.read(&mut buf[..n])?;
            self.limit -= read;
            Ok(read)
        }
    }

    #[test]
    fn byte_at_a_time_fragmented_reads_reassemble_every_frame() {
        let mut pipe: Vec<u8> = Vec::new();
        for req in sample_requests() {
            write_frame(&mut pipe, &encode_request(&req)).unwrap();
        }
        let mut fragmented = OneByteAtATime(io::Cursor::new(pipe));
        for req in sample_requests() {
            let frame = read_frame(&mut fragmented).unwrap().expect("frame present");
            assert_eq!(decode_request(&frame).unwrap(), req);
        }
        assert!(read_frame(&mut fragmented).unwrap().is_none(), "clean EOF at the end");
    }

    #[test]
    fn mid_frame_disconnect_is_an_io_error_not_a_clean_eof() {
        let frame = encode_request(&Request::Evolve { command: "drop_attribute x".into() });
        // Sever at every interior byte boundary: mid-header and mid-body.
        for keep in 1..frame.len() {
            let mut cursor = io::Cursor::new(frame[..keep].to_vec());
            let err = read_frame(&mut cursor)
                .expect_err(&format!("sever after {keep} bytes must error"));
            assert_eq!(err.code(), TseCode::Io, "sever after {keep} bytes: {err}");
        }
        // Severing at the frame boundary (0 bytes) is the one clean EOF.
        let mut empty = io::Cursor::new(Vec::new());
        assert!(read_frame(&mut empty).unwrap().is_none());
    }

    #[test]
    fn write_stalled_between_header_and_body_trips_the_deadline() {
        let frame = encode_request(&Request::Bind { family: "VS".into() });
        // The peer sends the full header, then nothing: a mid-frame stall
        // is a deadline violation for both read entry points.
        let stalled = || StallAfter { data: io::Cursor::new(frame.clone()), limit: HEADER_LEN };
        let err = read_frame(&mut stalled()).unwrap_err();
        assert_eq!(err.code(), TseCode::DeadlineExceeded);
        assert!(err.message().contains("mid-frame"), "unexpected message: {}", err.message());
        let err = match read_frame_idle(&mut stalled()) {
            Err(e) => e,
            Ok(other) => panic!("mid-frame stall must error, got {other:?}"),
        };
        assert_eq!(err.code(), TseCode::DeadlineExceeded);
    }

    #[test]
    fn pre_frame_quiet_is_idle_for_the_server_and_a_deadline_for_the_client() {
        // No bytes at all: read_frame_idle reports Idle (reap-eligible,
        // not an error); read_frame treats it as a missed response.
        let quiet = || StallAfter { data: io::Cursor::new(Vec::new()), limit: 0 };
        assert!(matches!(read_frame_idle(&mut quiet()).unwrap(), FrameRead::Idle));
        assert_eq!(read_frame(&mut quiet()).unwrap_err().code(), TseCode::DeadlineExceeded);
        // One byte then quiet: now *both* entry points call it a stall.
        let frame = encode_request(&Request::Ping);
        let stall = || StallAfter { data: io::Cursor::new(frame.clone()), limit: 1 };
        assert!(read_frame_idle(&mut stall()).is_err());
        assert!(read_frame(&mut stall()).is_err());
    }

    #[test]
    fn error_payload_is_a_tse_error_verbatim() {
        let original = TseError::new(TseCode::Unavailable, "service degraded: disk_full")
            .with_retry_after_ms(64);
        let frame = encode_response(&Response::from_error(&original));
        match decode_response(&frame).unwrap() {
            Response::Err { code, retry_after_ms, message } => {
                let rebuilt = Response::to_error(code, retry_after_ms, &message);
                assert_eq!(rebuilt, original);
            }
            other => panic!("expected Err response, got {other:?}"),
        }
    }
}
