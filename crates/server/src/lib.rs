//! # tse-server — the TSE service layer
//!
//! The engine/driver/server split for the transparent-schema-evolution
//! system: [`proto`] defines a versioned, CRC32-framed binary wire
//! protocol; [`TseServer`] serves it thread-per-connection over a
//! [`tse_core::SharedSystem`] with admission control and graceful drain;
//! [`RemoteClient`] implements the [`tse_core::TseClient`] trait over a
//! TCP connection, so programs written against the trait run unchanged
//! in-process or remote.
//!
//! The transport is fault-tolerant end to end: the client reconnects and
//! re-binds transparently (backing off per its [`ClientConfig`] retry
//! policy and the server's `retry_after_ms` hints), data writes carry
//! idempotency ids deduplicated by a bounded per-user server window so a
//! retried acked write applies exactly once, and both sides enforce
//! deadlines — per-op timeouts and socket read/write budgets on the
//! client, idle-connection reaping and a slow-client write budget on the
//! server.
//!
//! ```
//! use tse_core::{SharedSystem, TseClient, TseReader, TseWriter};
//! use tse_object_model::{PropertyDef, Value, ValueType};
//! use tse_server::{RemoteClient, ServerConfig, TseServer};
//!
//! let sys = SharedSystem::new();
//! let mut server =
//!     TseServer::start(sys, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let client = RemoteClient::open(server.addr().to_string(), "alice").unwrap();
//! client.define_class("Person", &[], vec![
//!     PropertyDef::stored("name", ValueType::Str, Value::Null),
//! ]).unwrap();
//! client.create_view(&["Person"]).unwrap();
//! let oid = client.writer().unwrap().create("Person", &[("name", "ann".into())]).unwrap();
//! let reader = client.session().unwrap();
//! assert_eq!(reader.get(oid, "Person", "name").unwrap(), Value::Str("ann".into()));
//!
//! drop((reader, client));
//! server.drain();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod proto;
mod server;

pub use client::{ClientConfig, RemoteClient, RemoteReader, RemoteWriter};
pub use server::{ServerConfig, TseServer};
