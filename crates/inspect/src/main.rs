//! `tse-inspect` — offline forensics for TSE telemetry journals.
//!
//! ```text
//! tse-inspect [--check] [--traces] [--evolve] [--locks] [--wal] \
//!             [--slow] [--prometheus] <journal.jsonl | ->
//! ```
//!
//! With no section flag, prints the full human-readable report (traces,
//! evolve timelines, lock/WAL breakdowns, slow ops). `--prometheus` dumps
//! the last embedded metrics snapshot as Prometheus text exposition.
//! `--check` runs the CI gate: exit 1 on parse errors, zero traces,
//! causality violations, or `journal.dropped > 0`. Given a `BENCH_*.json`
//! file instead of a journal, `--check` gates the benchmark artifact:
//! exit 1 when the `cpu_cores` stamp is missing, and warn (exit 0) when a
//! scaling/speedup figure was measured on a 1-core host.

use std::io::Read as _;
use std::process::ExitCode;

use tse_inspect::{check_bench_artifact, prometheus, report, Journal};

const USAGE: &str = "usage: tse-inspect [--check] [--traces] [--evolve] [--locks] \
                     [--wal] [--slow] [--prometheus] <journal.jsonl | ->";

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut check = false;
    let mut sections: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            "--traces" | "--evolve" | "--locks" | "--wal" | "--slow" | "--prometheus" => {
                sections.push(arg[2..].to_string());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with("--") => {
                eprintln!("tse-inspect: unknown flag {arg}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            _ => {
                if path.replace(arg).is_some() {
                    eprintln!("tse-inspect: more than one input file\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let Some(path) = path else {
        eprintln!("tse-inspect: no journal file given\n{USAGE}");
        return ExitCode::FAILURE;
    };

    let input = if path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("tse-inspect: reading stdin: {e}");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tse-inspect: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let is_bench_artifact = std::path::Path::new(&path)
        .file_name()
        .is_some_and(|f| f.to_string_lossy().starts_with("BENCH_"));
    if check && is_bench_artifact {
        match check_bench_artifact(&input) {
            Ok(r) => {
                println!(
                    "check: bench artifact, cpu_cores = {}, scaling keys = [{}]",
                    r.cpu_cores.map(|c| c.to_string()).unwrap_or_else(|| "missing".into()),
                    r.scaling_keys.join(", ")
                );
                for w in &r.warnings {
                    eprintln!("check: WARN: {w}");
                }
                if r.problems.is_empty() {
                    println!("check: OK");
                    return ExitCode::SUCCESS;
                }
                for p in &r.problems {
                    eprintln!("check: FAIL: {p}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("tse-inspect: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let journal = match Journal::parse(&input) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("tse-inspect: {path}: journal parse error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if check {
        let r = journal.check();
        println!(
            "check: {} records, {} traces, dropped = {}{}",
            r.records,
            r.traces,
            r.dropped.map(|d| d.to_string()).unwrap_or_else(|| "unknown".into()),
            if r.torn { ", torn final line" } else { "" }
        );
        for w in &r.warnings {
            eprintln!("check: WARN: {w}");
        }
        if r.problems.is_empty() {
            println!("check: OK");
            return ExitCode::SUCCESS;
        }
        for p in &r.problems {
            eprintln!("check: FAIL: {p}");
        }
        return ExitCode::FAILURE;
    }

    if sections.is_empty() {
        print!("{}", report(&journal));
        return ExitCode::SUCCESS;
    }

    for section in &sections {
        match section.as_str() {
            "traces" => {
                for t in journal.trace_summaries() {
                    let tids: Vec<String> = t.tids.iter().map(|t| t.to_string()).collect();
                    println!(
                        "trace {} kind={} records={} spans={} tids=[{}] span_ns={}",
                        t.id,
                        t.kind,
                        t.records,
                        t.spans,
                        tids.join(","),
                        t.last_ns.saturating_sub(t.first_ns)
                    );
                }
            }
            "evolve" => {
                for tl in journal.evolve_timelines() {
                    let trace =
                        tl.trace.map(|t| t.to_string()).unwrap_or_else(|| "-".into());
                    println!(
                        "evolve span={} trace={trace} total_ns={} complete={}",
                        tl.span, tl.total_ns, tl.complete
                    );
                    for p in &tl.phases {
                        println!(
                            "  {} start_ns={} dur_ns={} tid={}",
                            p.name, p.start_ns, p.dur_ns, p.tid
                        );
                    }
                }
            }
            "locks" => {
                for h in journal.hist_stats("lock.") {
                    println!(
                        "{} count={} sum={} min={} max={} mean={:.0}",
                        h.name, h.count, h.sum, h.min, h.max, h.mean
                    );
                }
            }
            "wal" => {
                for h in journal.hist_stats("wal.") {
                    println!(
                        "{} count={} sum={} min={} max={} mean={:.1}",
                        h.name, h.count, h.sum, h.min, h.max, h.mean
                    );
                }
            }
            "slow" => {
                for s in journal.slow_ops() {
                    let waits: Vec<String> =
                        s.waits.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    let trace =
                        s.trace.map(|t| t.to_string()).unwrap_or_else(|| "-".into());
                    println!(
                        "{} dur_ns={} trace={trace} tid={} {}",
                        s.op,
                        s.dur_ns,
                        s.tid,
                        waits.join(" ")
                    );
                }
            }
            "prometheus" => match journal.last_snapshot() {
                Some(snap) => print!("{}", prometheus(snap)),
                None => {
                    eprintln!("tse-inspect: no embedded metrics snapshot in {path}");
                    return ExitCode::FAILURE;
                }
            },
            _ => unreachable!("flags validated above"),
        }
    }
    ExitCode::SUCCESS
}
