//! Offline forensic reader for TSE telemetry journals.
//!
//! A journal is the JSONL flight-recorder output of `tse-telemetry`: one
//! object per closed span or point event, each stamped with a dense thread
//! id (`tid`) and, when emitted inside a session/evolve scope, a `trace`
//! id. This crate parses a journal (tolerating one torn final line, the
//! normal state of a sink cut off mid-write), reconstructs per-trace
//! structure, and derives the reports the `tse-inspect` binary prints:
//!
//! * per-trace summaries (kind, threads involved, record count, time span),
//! * evolve-phase timelines (translate → classify → view_regen → swap_in),
//! * lock-wait / stripe-contention breakdowns and WAL group-commit batch
//!   statistics from an embedded `metrics.snapshot` event,
//! * the slow-op log with its attributed wait times,
//! * a Prometheus-style text exposition of the embedded snapshot,
//! * a CI gate ([`Journal::check`]) that fails on causality violations,
//!   zero traces, or dropped flight-recorder records.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use tse_telemetry::json::{parse, validate_lines_tolerant, JsonValue};

/// The four phases a complete evolve trace must exhibit, in pipeline order.
pub const EVOLVE_PHASES: [&str; 4] =
    ["evolve.translate", "evolve.classify", "evolve.view_regen", "evolve.swap_in"];

/// A parsed journal: every complete record, in emission order.
pub struct Journal {
    /// Parsed records (JSON objects), oldest first.
    pub records: Vec<JsonValue>,
    /// True when the final line was torn (truncated mid-record) and skipped.
    pub torn: bool,
}

/// One trace's footprint in the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Trace id.
    pub id: u64,
    /// Trace kind from its `trace.begin` event (`read_session`, `evolve`,
    /// …), or `?` if the begin event was evicted from the ring.
    pub kind: String,
    /// Total records stamped with this trace.
    pub records: usize,
    /// Closed spans stamped with this trace.
    pub spans: usize,
    /// Dense thread ids that emitted under this trace.
    pub tids: BTreeSet<u64>,
    /// Earliest timestamp (span start or event time), ns since epoch.
    pub first_ns: u64,
    /// Latest timestamp (span end or event time), ns since epoch.
    pub last_ns: u64,
    /// Trace this one causally follows (e.g. autocheckpoint ← write), from
    /// its `trace.begin` event.
    pub follows_from_trace: Option<u64>,
}

/// One phase interval inside an evolve timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Span name, e.g. `evolve.classify`.
    pub name: String,
    /// Start offset, ns since epoch.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
    /// Emitting thread.
    pub tid: u64,
}

/// A reconstructed evolve: the root `evolve` span plus its phase children.
#[derive(Debug, Clone, PartialEq)]
pub struct EvolveTimeline {
    /// Trace the evolve ran under (None for pre-trace journals).
    pub trace: Option<u64>,
    /// Root `evolve` span id.
    pub span: u64,
    /// Root span start, ns since epoch.
    pub start_ns: u64,
    /// Root span duration, ns.
    pub total_ns: u64,
    /// Child phase spans ordered by start time.
    pub phases: Vec<Phase>,
    /// True when all of [`EVOLVE_PHASES`] are present.
    pub complete: bool,
}

/// Aggregate view of one histogram from an embedded metrics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct HistStat {
    /// Histogram name, e.g. `lock.stripe_wait_ns`.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// One slow-op journal event with its attributed waits.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowOp {
    /// Operation name (`create`, `update_where`, …).
    pub op: String,
    /// Trace the operation ran under.
    pub trace: Option<u64>,
    /// Emitting thread.
    pub tid: u64,
    /// Operation duration, ns.
    pub dur_ns: u64,
    /// Wait-time fields attributed to the op (`lock.stripe_wait_ns`, …).
    pub waits: Vec<(String, u64)>,
}

/// Result of the CI gate.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// Complete records parsed.
    pub records: usize,
    /// Final line was torn and skipped.
    pub torn: bool,
    /// Distinct traces observed.
    pub traces: usize,
    /// `journal.dropped` from the last embedded snapshot, if any snapshot
    /// was embedded.
    pub dropped: Option<u64>,
    /// Everything that makes the gate fail (empty = pass).
    pub problems: Vec<String>,
    /// Advisory findings; printed but do not fail the gate.
    pub warnings: Vec<String>,
}

/// Result of checking one `BENCH_*.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCheckReport {
    /// The `cpu_cores` stamp, if present.
    pub cpu_cores: Option<u64>,
    /// Keys anywhere in the artifact whose names claim parallel scaling
    /// (`scaling*`, `speedup*`).
    pub scaling_keys: Vec<String>,
    /// Everything that makes the gate fail (empty = pass).
    pub problems: Vec<String>,
    /// Advisory findings; printed but do not fail the gate.
    pub warnings: Vec<String>,
}

/// CI gate for a benchmark artifact (a single `BENCH_*.json` object, as
/// opposed to a JSONL journal): FAIL when the artifact is not an object or
/// lacks the `cpu_cores` stamp, WARN (without failing) when a scaling or
/// speedup figure was measured on a 1-core host — every configuration
/// timeslices onto the same CPU there, so the claim is noise.
pub fn check_bench_artifact(text: &str) -> Result<BenchCheckReport, String> {
    let value = parse(text.trim())?;
    if !matches!(value, JsonValue::Obj(_)) {
        return Err("bench artifact is not a JSON object".to_string());
    }
    let cpu_cores = get_u64(&value, "cpu_cores");
    let mut scaling_keys = Vec::new();
    collect_scaling_keys(&value, "", &mut scaling_keys);
    let mut problems = Vec::new();
    let mut warnings = Vec::new();
    match cpu_cores {
        None => problems.push(
            "cpu_cores missing: artifact predates the host stamp; re-run the bench".to_string(),
        ),
        Some(1) if !scaling_keys.is_empty() => warnings.push(format!(
            "scaling claim from a 1-core artifact: {} measured with every thread \
             timesliced onto one CPU",
            scaling_keys.join(", ")
        )),
        Some(_) => {}
    }
    Ok(BenchCheckReport { cpu_cores, scaling_keys, problems, warnings })
}

/// Walk the artifact and record dotted paths of keys that name a parallel
/// scaling figure.
fn collect_scaling_keys(value: &JsonValue, prefix: &str, out: &mut Vec<String>) {
    match value {
        JsonValue::Obj(pairs) => {
            for (k, v) in pairs {
                let path =
                    if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                if k.contains("scaling") || k.contains("speedup") {
                    out.push(path.clone());
                }
                collect_scaling_keys(v, &path, out);
            }
        }
        JsonValue::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                collect_scaling_keys(v, &format!("{prefix}[{i}]"), out);
            }
        }
        _ => {}
    }
}

fn get_u64(rec: &JsonValue, key: &str) -> Option<u64> {
    rec.get(key).and_then(|v| v.as_u64())
}

fn get_str<'a>(rec: &'a JsonValue, key: &str) -> Option<&'a str> {
    rec.get(key).and_then(|v| v.as_str())
}

fn is_span(rec: &JsonValue) -> bool {
    get_str(rec, "kind") == Some("span")
}

/// A record's end-of-interval timestamp: span end or event time.
fn end_ns(rec: &JsonValue) -> u64 {
    if is_span(rec) {
        get_u64(rec, "start_ns").unwrap_or(0) + get_u64(rec, "dur_ns").unwrap_or(0)
    } else {
        get_u64(rec, "at_ns").unwrap_or(0)
    }
}

fn start_ns(rec: &JsonValue) -> u64 {
    if is_span(rec) {
        get_u64(rec, "start_ns").unwrap_or(0)
    } else {
        get_u64(rec, "at_ns").unwrap_or(0)
    }
}

impl Journal {
    /// Parse a JSONL journal, tolerating one torn final line.
    pub fn parse(input: &str) -> Result<Journal, String> {
        let (_, torn) = validate_lines_tolerant(input)?;
        let mut records = Vec::new();
        let lines: Vec<&str> =
            input.lines().filter(|l| !l.trim().is_empty()).collect();
        for (k, line) in lines.iter().enumerate() {
            match parse(line) {
                Ok(v) => records.push(v),
                Err(_) if torn && k + 1 == lines.len() => {}
                Err(e) => return Err(e),
            }
        }
        Ok(Journal { records, torn })
    }

    /// Summaries of every trace seen in the journal, by trace id.
    pub fn trace_summaries(&self) -> Vec<TraceSummary> {
        let mut by_id: BTreeMap<u64, TraceSummary> = BTreeMap::new();
        for rec in &self.records {
            let Some(trace) = get_u64(rec, "trace") else { continue };
            let s = by_id.entry(trace).or_insert_with(|| TraceSummary {
                id: trace,
                kind: "?".to_string(),
                records: 0,
                spans: 0,
                tids: BTreeSet::new(),
                first_ns: u64::MAX,
                last_ns: 0,
                follows_from_trace: None,
            });
            s.records += 1;
            if is_span(rec) {
                s.spans += 1;
            }
            if let Some(tid) = get_u64(rec, "tid") {
                s.tids.insert(tid);
            }
            s.first_ns = s.first_ns.min(start_ns(rec));
            s.last_ns = s.last_ns.max(end_ns(rec));
            if get_str(rec, "name") == Some("trace.begin") {
                if let Some(fields) = rec.get("fields") {
                    if let Some(kind) = get_str(fields, "kind") {
                        s.kind = kind.to_string();
                    }
                    s.follows_from_trace = get_u64(fields, "follows_from_trace");
                }
            }
        }
        by_id.into_values().collect()
    }

    /// Reconstruct every evolve in the journal: the root `evolve` span and
    /// its direct phase children, ordered by start time.
    pub fn evolve_timelines(&self) -> Vec<EvolveTimeline> {
        let roots: Vec<(u64, Option<u64>, u64, u64)> = self
            .records
            .iter()
            .filter(|r| is_span(r) && get_str(r, "name") == Some("evolve"))
            .filter_map(|r| {
                Some((
                    get_u64(r, "id")?,
                    get_u64(r, "trace"),
                    get_u64(r, "start_ns")?,
                    get_u64(r, "dur_ns")?,
                ))
            })
            .collect();
        roots
            .into_iter()
            .map(|(span, trace, start, total)| {
                let mut phases: Vec<Phase> = self
                    .records
                    .iter()
                    .filter(|r| {
                        is_span(r)
                            && get_u64(r, "parent") == Some(span)
                            && get_str(r, "name")
                                .is_some_and(|n| n.starts_with("evolve."))
                    })
                    .filter_map(|r| {
                        Some(Phase {
                            name: get_str(r, "name")?.to_string(),
                            start_ns: get_u64(r, "start_ns")?,
                            dur_ns: get_u64(r, "dur_ns")?,
                            tid: get_u64(r, "tid").unwrap_or(0),
                        })
                    })
                    .collect();
                phases.sort_by_key(|p| p.start_ns);
                let complete = EVOLVE_PHASES
                    .iter()
                    .all(|name| phases.iter().any(|p| p.name == *name));
                EvolveTimeline { trace, span, start_ns: start, total_ns: total, phases, complete }
            })
            .collect()
    }

    /// Causality violations: a span whose `parent` record exists in the
    /// journal but lives on a different thread or trace (legal parents are
    /// same-thread, same-trace; cross-thread links must use
    /// `follows_from`). Events are checked for thread-locality only, since
    /// an event may legally be stamped with an inner trace while its
    /// enclosing span belongs to an outer one.
    pub fn causality_errors(&self) -> Vec<String> {
        let spans: BTreeMap<u64, &JsonValue> = self
            .records
            .iter()
            .filter(|r| is_span(r))
            .filter_map(|r| Some((get_u64(r, "id")?, r)))
            .collect();
        let mut errors = Vec::new();
        for rec in &self.records {
            let Some(parent_id) = get_u64(rec, "parent") else { continue };
            // A parent evicted from the ring is not a violation.
            let Some(parent) = spans.get(&parent_id) else { continue };
            let name = get_str(rec, "name").unwrap_or("?");
            if get_u64(rec, "tid") != get_u64(parent, "tid") {
                errors.push(format!(
                    "{name}: parent span {parent_id} lives on another thread \
                     (tid {:?} vs {:?})",
                    get_u64(rec, "tid"),
                    get_u64(parent, "tid")
                ));
                continue;
            }
            if is_span(rec) && get_u64(rec, "trace") != get_u64(parent, "trace") {
                errors.push(format!(
                    "{name}: parent span {parent_id} belongs to another trace \
                     ({:?} vs {:?}) without a follows_from link",
                    get_u64(rec, "trace"),
                    get_u64(parent, "trace")
                ));
            }
        }
        errors
    }

    /// The embedded `metrics.snapshot` payloads, oldest first.
    pub fn snapshots(&self) -> Vec<&JsonValue> {
        self.records
            .iter()
            .filter(|r| get_str(r, "name") == Some("metrics.snapshot"))
            .filter_map(|r| r.get("fields")?.get("snapshot"))
            .collect()
    }

    /// The most recent embedded metrics snapshot, if any.
    pub fn last_snapshot(&self) -> Option<&JsonValue> {
        self.snapshots().pop()
    }

    /// Histogram stats with a given name prefix from the last snapshot.
    pub fn hist_stats(&self, prefix: &str) -> Vec<HistStat> {
        let Some(snap) = self.last_snapshot() else { return Vec::new() };
        let Some(JsonValue::Obj(hists)) = snap.get("histograms") else {
            return Vec::new();
        };
        hists
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .filter_map(|(name, h)| {
                Some(HistStat {
                    name: name.clone(),
                    count: get_u64(h, "count")?,
                    sum: get_u64(h, "sum")?,
                    min: get_u64(h, "min")?,
                    max: get_u64(h, "max")?,
                    mean: match h.get("mean") {
                        Some(JsonValue::F64(m)) => *m,
                        Some(v) => v.as_u64().unwrap_or(0) as f64,
                        None => 0.0,
                    },
                })
            })
            .collect()
    }

    /// A counter from the last embedded snapshot. `None` means no snapshot
    /// was embedded at all; a snapshot without the counter reads as 0
    /// (counters are sparse — never-bumped counters are absent).
    pub fn snapshot_counter(&self, name: &str) -> Option<u64> {
        let counters = self.last_snapshot()?.get("counters")?;
        Some(counters.get(name).and_then(|v| v.as_u64()).unwrap_or(0))
    }

    /// Every `slow_op` event, in order.
    pub fn slow_ops(&self) -> Vec<SlowOp> {
        self.records
            .iter()
            .filter(|r| get_str(r, "name") == Some("slow_op"))
            .filter_map(|r| {
                let fields = r.get("fields")?;
                let waits = match fields {
                    JsonValue::Obj(pairs) => pairs
                        .iter()
                        .filter(|(k, _)| k.starts_with("lock.") || k.starts_with("wal."))
                        .filter_map(|(k, v)| Some((k.clone(), v.as_u64()?)))
                        .collect(),
                    _ => Vec::new(),
                };
                Some(SlowOp {
                    op: get_str(fields, "op")?.to_string(),
                    trace: get_u64(r, "trace"),
                    tid: get_u64(r, "tid").unwrap_or(0),
                    dur_ns: get_u64(fields, "dur_ns")?,
                    waits,
                })
            })
            .collect()
    }

    /// Run the CI gate: fail on zero traces, any causality violation,
    /// `journal.dropped > 0` in the embedded snapshot, a poisoned WAL,
    /// quarantined snapshot generations, a `health.transition` into
    /// degraded/poisoned that never recovered, or a dedup-window overflow
    /// (`server.dedup_overflow > 0` — the server evicted an idempotency
    /// entry a client might still retry against, voiding exactly-once).
    /// Warns — without failing — when the journal records client
    /// reconnects but no server drain, a context mismatch: the client and
    /// server halves came from different runs, or connections died
    /// without the server ever shutting down cleanly.
    pub fn check(&self) -> CheckReport {
        let traces = self.trace_summaries();
        let dropped = self.snapshot_counter("journal.dropped");
        let mut problems = Vec::new();
        let mut warnings = Vec::new();
        if traces.is_empty() {
            problems.push("no traces: no record carries a trace id".to_string());
        }
        if let Some(d) = dropped {
            if d > 0 {
                problems.push(format!("journal.dropped = {d}: flight recorder overflowed"));
            }
        }
        // Health: the journal's *last* transition tells the ending state —
        // a degradation followed by a heal ends at `healthy` and passes;
        // anything else means the system ended the run impaired.
        let last_health = self
            .records
            .iter()
            .rev()
            .find(|r| get_str(r, "name") == Some("health.transition"));
        if let Some(fields) = last_health.and_then(|r| r.get("fields")) {
            let to = get_str(fields, "to").unwrap_or("");
            if to != "healthy" {
                let reason = get_str(fields, "reason").unwrap_or("?");
                problems.push(format!(
                    "health: last transition entered `{to}` ({reason}) and never recovered"
                ));
            }
        }
        for (counter, hint) in [
            ("wal.poisoned", "the write-ahead log fail-stopped"),
            ("scrub.quarantined", "the scrubber quarantined corrupt snapshot generations"),
            (
                "server.dedup_overflow",
                "the idempotency window evicted entries a client may still retry against",
            ),
        ] {
            if let Some(v) = self.snapshot_counter(counter) {
                if v > 0 {
                    problems.push(format!("{counter} = {v}: {hint}"));
                }
            }
        }
        if self.snapshot_counter("client.reconnects").unwrap_or(0) > 0 {
            let drained =
                self.hist_stats("server.drain_ns").iter().any(|h| h.count > 0);
            if !drained {
                warnings.push(
                    "client.reconnects recorded but server.drain_ns never observed: \
                     client and server telemetry look like mismatched runs, or \
                     connections died without a clean server drain"
                        .to_string(),
                );
            }
        }
        problems.extend(self.causality_errors());
        CheckReport {
            records: self.records.len(),
            torn: self.torn,
            traces: traces.len(),
            dropped,
            problems,
            warnings,
        }
    }
}

/// Sanitize a metric name for Prometheus exposition (`[a-zA-Z0-9_]`).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("tse_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out
}

/// Render an embedded metrics snapshot as Prometheus text exposition:
/// counters as `counter`, histograms as cumulative-bucket `histogram`
/// families with `_bucket{le=...}`, `_sum`, and `_count` series.
pub fn prometheus(snapshot: &JsonValue) -> String {
    let mut out = String::new();
    if let Some(JsonValue::Obj(counters)) = snapshot.get("counters") {
        for (name, v) in counters {
            let Some(v) = v.as_u64() else { continue };
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
    }
    if let Some(JsonValue::Obj(hists)) = snapshot.get("histograms") {
        for (name, h) in hists {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            if let Some(JsonValue::Arr(buckets)) = h.get("buckets") {
                for b in buckets {
                    let JsonValue::Arr(pair) = b else { continue };
                    let (Some(le), Some(count)) =
                        (pair.first().and_then(|v| v.as_u64()),
                         pair.get(1).and_then(|v| v.as_u64()))
                    else {
                        continue;
                    };
                    cumulative += count;
                    let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
                }
            }
            let count = h.get("count").and_then(|v| v.as_u64()).unwrap_or(0);
            let sum = h.get("sum").and_then(|v| v.as_u64()).unwrap_or(0);
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {count}");
            let _ = writeln!(out, "{n}_sum {sum}");
            let _ = writeln!(out, "{n}_count {count}");
        }
    }
    out
}

/// Render the full human-readable report (what the binary prints without
/// flags).
pub fn report(journal: &Journal) -> String {
    let mut out = String::new();
    let traces = journal.trace_summaries();
    let _ = writeln!(
        out,
        "journal: {} records, {} traces{}",
        journal.records.len(),
        traces.len(),
        if journal.torn { " (torn final line skipped)" } else { "" }
    );

    let _ = writeln!(out, "\n== traces ==");
    for t in &traces {
        let tids: Vec<String> = t.tids.iter().map(|t| t.to_string()).collect();
        let follows = t
            .follows_from_trace
            .map(|f| format!("  follows trace {f}"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "trace {:>4}  {:<14} {:>5} records  {:>4} spans  tids [{}]  {:>10} ns{}",
            t.id,
            t.kind,
            t.records,
            t.spans,
            tids.join(","),
            t.last_ns.saturating_sub(t.first_ns),
            follows
        );
    }

    let timelines = journal.evolve_timelines();
    if !timelines.is_empty() {
        let _ = writeln!(out, "\n== evolve timelines ==");
        for tl in &timelines {
            let trace = tl.trace.map(|t| t.to_string()).unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "evolve span {} (trace {trace}): total {} ns{}",
                tl.span,
                tl.total_ns,
                if tl.complete { "" } else { "  [INCOMPLETE]" }
            );
            for p in &tl.phases {
                let offset = p.start_ns.saturating_sub(tl.start_ns);
                let _ = writeln!(
                    out,
                    "  +{offset:>10} ns  {:<18} {:>10} ns  tid {}",
                    p.name, p.dur_ns, p.tid
                );
            }
        }
    }

    let locks = journal.hist_stats("lock.");
    if !locks.is_empty() {
        let _ = writeln!(out, "\n== lock waits ==");
        for h in &locks {
            let _ = writeln!(
                out,
                "{:<24} count {:>8}  mean {:>12.0} ns  max {:>12} ns  total {:>14} ns",
                h.name, h.count, h.mean, h.max, h.sum
            );
        }
    }

    let wal = journal.hist_stats("wal.");
    if !wal.is_empty() {
        let _ = writeln!(out, "\n== wal group commit ==");
        for h in &wal {
            let _ = writeln!(
                out,
                "{:<24} count {:>8}  mean {:>12.1}  min {:>8}  max {:>12}",
                h.name, h.count, h.mean, h.min, h.max
            );
        }
    }

    let slow = journal.slow_ops();
    if !slow.is_empty() {
        let _ = writeln!(out, "\n== slow ops ==");
        for s in &slow {
            let waits: Vec<String> =
                s.waits.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let trace = s.trace.map(|t| t.to_string()).unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "{:<16} {:>12} ns  trace {trace}  tid {}  [{}]",
                s.op,
                s.dur_ns,
                s.tid,
                waits.join(" ")
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_telemetry::Telemetry;

    /// Drive a real Telemetry through a multi-trace workload and return its
    /// journal text — keeps these tests honest against the writer.
    fn sample_journal() -> String {
        let t = Telemetry::new();
        let tr = t.mint_trace("evolve");
        let g = t.enter_trace(tr);
        {
            let _e = t.span("evolve");
            for phase in EVOLVE_PHASES {
                let _p = t.span(phase);
            }
        }
        drop(g);
        let tr2 = t.mint_trace("write_session");
        let g2 = t.enter_trace(tr2);
        t.observe_ns("lock.stripe_wait_ns", 300);
        t.set_slow_op_threshold_ns(1);
        t.observe_op("create", 5_000);
        drop(g2);
        t.journal_metrics_snapshot();
        t.journal_lines()
    }

    #[test]
    fn parses_and_summarizes_traces() {
        let j = Journal::parse(&sample_journal()).unwrap();
        assert!(!j.torn);
        let traces = j.trace_summaries();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].kind, "evolve");
        assert_eq!(traces[1].kind, "write_session");
        assert!(traces[0].spans >= 5);
        assert!(j.causality_errors().is_empty());
    }

    #[test]
    fn reconstructs_a_complete_evolve_timeline() {
        let j = Journal::parse(&sample_journal()).unwrap();
        let timelines = j.evolve_timelines();
        assert_eq!(timelines.len(), 1);
        let tl = &timelines[0];
        assert!(tl.complete, "all four phases present: {:?}", tl.phases);
        assert_eq!(tl.phases.len(), 4);
        // Phases are in start order and nested inside the root interval.
        for w in tl.phases.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
        }
        for p in &tl.phases {
            assert!(p.start_ns >= tl.start_ns);
        }
    }

    #[test]
    fn slow_ops_and_snapshot_stats_surface() {
        let j = Journal::parse(&sample_journal()).unwrap();
        let slow = j.slow_ops();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].op, "create");
        assert_eq!(slow[0].dur_ns, 5_000);
        assert!(slow[0].waits.iter().any(|(k, v)| k == "lock.stripe_wait_ns" && *v == 300));
        let locks = j.hist_stats("lock.");
        assert!(locks.iter().any(|h| h.name == "lock.stripe_wait_ns" && h.sum == 300));
        assert_eq!(j.snapshot_counter("journal.dropped"), Some(0));
    }

    #[test]
    fn check_passes_on_clean_journal_and_fails_on_empty_traces() {
        let j = Journal::parse(&sample_journal()).unwrap();
        let report = j.check();
        assert!(report.problems.is_empty(), "{:?}", report.problems);
        assert!(report.traces >= 2);

        // A journal with records but no trace stamps fails the gate.
        let untraced = Telemetry::new();
        untraced.event("lonely", &[]);
        let j2 = Journal::parse(&untraced.journal_lines()).unwrap();
        assert!(j2.check().problems.iter().any(|p| p.contains("no traces")));
    }

    #[test]
    fn check_flags_dropped_records_and_cross_thread_parents() {
        let t = Telemetry::with_capacity(4);
        let tr = t.mint_trace("evolve");
        let _g = t.enter_trace(tr);
        for i in 0..10 {
            t.event("e", &[("i", (i as u64).into())]);
        }
        t.journal_metrics_snapshot();
        let j = Journal::parse(&t.journal_lines()).unwrap();
        let report = j.check();
        assert!(report.dropped.unwrap() > 0);
        assert!(report.problems.iter().any(|p| p.contains("journal.dropped")));

        // A hand-forged cross-thread parent is caught.
        let forged = concat!(
            "{\"kind\":\"span\",\"id\":1,\"parent\":null,\"trace\":1,\"tid\":1,",
            "\"name\":\"a\",\"depth\":0,\"start_ns\":0,\"dur_ns\":10}\n",
            "{\"kind\":\"span\",\"id\":2,\"parent\":1,\"trace\":1,\"tid\":2,",
            "\"name\":\"b\",\"depth\":1,\"start_ns\":1,\"dur_ns\":5}\n",
        );
        let j2 = Journal::parse(forged).unwrap();
        assert!(j2
            .causality_errors()
            .iter()
            .any(|e| e.contains("another thread")));
    }

    #[test]
    fn check_flags_unrecovered_health_poisoned_wal_and_quarantines() {
        // Degrade → heal ends at `healthy`: passes.
        let t = Telemetry::new();
        let tr = t.mint_trace("chaos");
        let _g = t.enter_trace(tr);
        t.event(
            "health.transition",
            &[("from", "healthy".into()), ("to", "degraded".into()), ("reason", "disk_full".into())],
        );
        t.event(
            "health.transition",
            &[("from", "degraded".into()), ("to", "healthy".into()), ("reason", "heal".into())],
        );
        let j = Journal::parse(&t.journal_lines()).unwrap();
        assert!(
            !j.check().problems.iter().any(|p| p.contains("health")),
            "{:?}",
            j.check().problems
        );

        // A degradation that never heals fails.
        t.event(
            "health.transition",
            &[
                ("from", "healthy".into()),
                ("to", "degraded".into()),
                ("reason", "retries_exhausted".into()),
            ],
        );
        let j = Journal::parse(&t.journal_lines()).unwrap();
        assert!(j
            .check()
            .problems
            .iter()
            .any(|p| p.contains("degraded") && p.contains("never recovered")));

        // Poisoned-WAL and quarantine counters in the embedded snapshot fail.
        let t2 = Telemetry::new();
        let tr2 = t2.mint_trace("chaos");
        let _g2 = t2.enter_trace(tr2);
        t2.event("something", &[]);
        t2.incr("wal.poisoned", 1);
        t2.incr("scrub.quarantined", 2);
        t2.journal_metrics_snapshot();
        let j2 = Journal::parse(&t2.journal_lines()).unwrap();
        let problems = j2.check().problems;
        assert!(problems.iter().any(|p| p.contains("wal.poisoned = 1")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("scrub.quarantined = 2")), "{problems:?}");
    }

    #[test]
    fn check_flags_dedup_overflow_and_reconnects_without_drain() {
        // Reconnects with no drain observation: WARN, not FAIL.
        let t = Telemetry::new();
        let tr = t.mint_trace("chaos");
        let _g = t.enter_trace(tr);
        t.event("net", &[]);
        t.incr("client.reconnects", 3);
        t.journal_metrics_snapshot();
        let j = Journal::parse(&t.journal_lines()).unwrap();
        let r = j.check();
        assert!(r.problems.is_empty(), "{:?}", r.problems);
        assert!(
            r.warnings.iter().any(|w| w.contains("client.reconnects")),
            "{:?}",
            r.warnings
        );

        // The same reconnects alongside a recorded drain: clean.
        t.observe_ns("server.drain_ns", 1_000);
        t.journal_metrics_snapshot();
        let j = Journal::parse(&t.journal_lines()).unwrap();
        assert!(j.check().warnings.is_empty(), "{:?}", j.check().warnings);

        // A dedup-window overflow is a hard failure: the server evicted
        // idempotency state a client may still retry against.
        t.incr("server.dedup_overflow", 2);
        t.journal_metrics_snapshot();
        let j = Journal::parse(&t.journal_lines()).unwrap();
        assert!(
            j.check().problems.iter().any(|p| p.contains("server.dedup_overflow = 2")),
            "{:?}",
            j.check().problems
        );
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_sanitized() {
        let j = Journal::parse(&sample_journal()).unwrap();
        let text = prometheus(j.last_snapshot().unwrap());
        assert!(text.contains("# TYPE tse_op_create counter"));
        assert!(text.contains("tse_op_create 1"));
        assert!(text.contains("# TYPE tse_latency_create histogram"));
        assert!(text.contains("tse_latency_create_count 1"));
        assert!(text.contains("tse_latency_create_bucket{le=\"+Inf\"} 1"));
        // No raw dots survive sanitization.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(!name.contains('.'), "unsanitized name: {name}");
        }
    }

    #[test]
    fn torn_tail_is_tolerated_and_reported() {
        let mut text = sample_journal();
        text.push_str("{\"kind\":\"event\",\"name\":\"torn");
        let j = Journal::parse(&text).unwrap();
        assert!(j.torn);
        assert!(report(&j).contains("torn final line skipped"));
    }

    #[test]
    fn bench_artifact_check_gates_cpu_cores_and_flags_1_core_scaling() {
        // Missing stamp: FAIL.
        let r = check_bench_artifact(r#"{"bench":"x","scaling_4_over_1":3.2}"#).unwrap();
        assert_eq!(r.cpu_cores, None);
        assert!(!r.problems.is_empty());

        // 1-core with a scaling claim: WARN, not FAIL. The nested
        // speedup key is found too.
        let r = check_bench_artifact(
            r#"{"cpu_cores":1,"scaling_4_over_1":3.2,"fork":{"speedup":40.0}}"#,
        )
        .unwrap();
        assert!(r.problems.is_empty());
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.scaling_keys, vec!["scaling_4_over_1", "fork.speedup"]);

        // Multi-core with claims, or 1-core without claims: clean.
        assert!(check_bench_artifact(r#"{"cpu_cores":8,"scaling_4_over_1":3.2}"#)
            .unwrap()
            .warnings
            .is_empty());
        assert!(check_bench_artifact(r#"{"cpu_cores":1,"total_ns":5}"#)
            .unwrap()
            .warnings
            .is_empty());

        // Non-objects are a parse-level error.
        assert!(check_bench_artifact("[1,2]").is_err());
    }

    #[test]
    fn human_report_renders_all_sections() {
        let j = Journal::parse(&sample_journal()).unwrap();
        let text = report(&j);
        for section in ["== traces ==", "== evolve timelines ==", "== lock waits ==",
                        "== wal group commit ==", "== slow ops =="] {
            // wal section only present if wal.* histograms exist — sample
            // has none, so allow its absence.
            if section.contains("wal") && j.hist_stats("wal.").is_empty() {
                continue;
            }
            assert!(text.contains(section), "missing {section} in:\n{text}");
        }
        assert!(text.contains("evolve.swap_in"));
    }
}
