//! Extent subsumption reasoning.
//!
//! The classifier needs to *prove* `extent(A) ⊆ extent(B)` from schema
//! structure alone (extents change with every update; placements must be
//! intensional). Provable facts:
//!
//! * is-a edge `sub → sup` implies `sub ⊆ sup` (membership closure);
//! * `select(C,p) ⊆ C`; `difference(A,B) ⊆ A`; `intersect(A,B) ⊆ A, B`;
//! * `hide(C) ≡ C` and `refine(C) ≡ C` (object-preserving, extent equal);
//! * `A ⊆ union(A,B)`, `B ⊆ union(A,B)`;
//! * two classes with *identical derivations* are extent-equal;
//! * `union(A,B) ⊆ Y` if `A ⊆ Y` and `B ⊆ Y` (conjunction);
//! * `X ⊆ intersect(A,B)` if `X ⊆ A` and `X ⊆ B` (conjunction);
//! * `X ⊆ (A ∖ B)` if `X ⊆ A` and `X` provably disjoint from `B`
//!   (disjointness: one side is a difference that subtracted the other);
//! * monotonicity: `select(A,p) ⊆ select(B,p)` if `A ⊆ B`, and
//!   `(A ∖ C) ⊆ (B ∖ D)` if `A ⊆ B` and `D ⊆ C` — the paper's §6.7.3
//!   argument ("the derivation procedure of C_add is the same as that of
//!   C_sup except that C_add's origin classes are subclasses of C_sup's");
//! * transitivity of all of the above.
//!
//! The prover **saturates** the full pairwise relation once (bitset rows +
//! fixpoint loop), so queries are O(1) and the rule set stays obviously
//! terminating — a naive recursive search over these rules is exponential
//! because the extent-equality edges make the proof graph cyclic.

use tse_object_model::{ClassId, ClassKind, Derivation, Schema};

/// Square boolean matrix with u64-packed rows.
struct BitMatrix {
    n: usize,
    words: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        BitMatrix { n, words, data: vec![0; n * words] }
    }

    #[inline]
    fn get(&self, a: usize, b: usize) -> bool {
        self.data[a * self.words + b / 64] & (1u64 << (b % 64)) != 0
    }

    #[inline]
    fn set(&mut self, a: usize, b: usize) -> bool {
        let idx = a * self.words + b / 64;
        let mask = 1u64 << (b % 64);
        let new = self.data[idx] & mask == 0;
        self.data[idx] |= mask;
        new
    }

    /// `row(a) |= row(b)`, returning whether anything changed.
    fn or_row(&mut self, a: usize, b: usize) -> bool {
        let mut changed = false;
        for w in 0..self.words {
            let src = self.data[b * self.words + w];
            let dst = &mut self.data[a * self.words + w];
            let merged = *dst | src;
            if merged != *dst {
                *dst = merged;
                changed = true;
            }
        }
        changed
    }

    /// `row(u) |= row(x) & row(y)`, returning whether anything changed.
    fn or_and_rows(&mut self, u: usize, x: usize, y: usize) -> bool {
        let mut changed = false;
        for w in 0..self.words {
            let src = self.data[x * self.words + w] & self.data[y * self.words + w];
            let dst = &mut self.data[u * self.words + w];
            let merged = *dst | src;
            if merged != *dst {
                *dst = merged;
                changed = true;
            }
        }
        changed
    }

    /// Indices set in row `a`.
    fn ones(&self, a: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for w in 0..self.words {
            let mut bits = self.data[a * self.words + w];
            while bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                let idx = w * 64 + tz;
                if idx < self.n {
                    out.push(idx);
                }
                bits &= bits - 1;
            }
        }
        out
    }
}

/// A subsumption prover over one schema snapshot: build once per
/// classification run, query in O(1).
pub struct Subsumption<'a> {
    #[allow(dead_code)]
    schema: &'a Schema,
    reach: BitMatrix,
}

impl<'a> Subsumption<'a> {
    /// Build the prover: initialize the one-step relation and saturate.
    pub fn new(schema: &'a Schema) -> Self {
        let n = schema.class_count();
        let mut reach = BitMatrix::new(n);

        // Rule tables gathered once.
        let mut unions: Vec<(usize, usize, usize)> = Vec::new();
        let mut intersects: Vec<(usize, usize, usize)> = Vec::new();
        let mut diffs: Vec<(usize, usize, usize)> = Vec::new();
        let mut selects: Vec<(usize, usize, &Derivation)> = Vec::new();

        for id in schema.class_ids() {
            let i = id.0 as usize;
            reach.set(i, i);
            let cls = match schema.class(id) {
                Ok(c) => c,
                Err(_) => continue,
            };
            for sup in cls.direct_supers() {
                reach.set(i, sup.0 as usize);
            }
            if let ClassKind::Virtual(d) = &cls.kind {
                match d {
                    Derivation::Select { src, .. } => {
                        reach.set(i, src.0 as usize);
                        selects.push((i, src.0 as usize, d));
                    }
                    Derivation::Hide { src, .. } | Derivation::Refine { src, .. } => {
                        reach.set(i, src.0 as usize);
                        reach.set(src.0 as usize, i);
                    }
                    Derivation::Union { a, b } => {
                        reach.set(a.0 as usize, i);
                        reach.set(b.0 as usize, i);
                        unions.push((i, a.0 as usize, b.0 as usize));
                    }
                    Derivation::Difference { a, b } => {
                        reach.set(i, a.0 as usize);
                        diffs.push((i, a.0 as usize, b.0 as usize));
                    }
                    Derivation::Intersect { a, b } => {
                        reach.set(i, a.0 as usize);
                        reach.set(i, b.0 as usize);
                        intersects.push((i, a.0 as usize, b.0 as usize));
                    }
                }
            }
        }

        // Syntactic-equality rule: identical derivations ⇒ identical extents.
        let virtuals: Vec<(usize, &Derivation)> = schema
            .class_ids()
            .filter_map(|id| {
                schema.class(id).ok().and_then(|c| match &c.kind {
                    ClassKind::Virtual(d) => Some((id.0 as usize, d)),
                    ClassKind::Base => None,
                })
            })
            .collect();
        for (i, (ca, da)) in virtuals.iter().enumerate() {
            for (cb, db) in virtuals.iter().skip(i + 1) {
                if da == db {
                    reach.set(*ca, *cb);
                    reach.set(*cb, *ca);
                }
            }
        }

        // Monotone-select candidate pairs (same predicate).
        let mut select_pairs: Vec<(usize, usize, usize, usize)> = Vec::new();
        for (i, (s1, src1, d1)) in selects.iter().enumerate() {
            for (s2, src2, d2) in selects.iter().skip(i + 1) {
                let same_pred = match (d1, d2) {
                    (
                        Derivation::Select { pred: p1, .. },
                        Derivation::Select { pred: p2, .. },
                    ) => p1 == p2,
                    _ => false,
                };
                if same_pred {
                    select_pairs.push((*s1, *src1, *s2, *src2));
                    select_pairs.push((*s2, *src2, *s1, *src1));
                }
            }
        }

        // Saturate to a fixpoint.
        let mut changed = true;
        while changed {
            changed = false;
            // Transitivity: row(a) |= row(b) for every b reachable from a.
            for a in 0..n {
                for b in reach.ones(a) {
                    if b != a {
                        changed |= reach.or_row(a, b);
                    }
                }
            }
            // union(x,y) ⊆ everything both x and y are ⊆ of.
            for &(u, x, y) in &unions {
                changed |= reach.or_and_rows(u, x, y);
            }
            // a ⊆ intersect(x,y) when a ⊆ x and a ⊆ y.
            for &(i, x, y) in &intersects {
                for a in 0..n {
                    if !reach.get(a, i) && reach.get(a, x) && reach.get(a, y) {
                        reach.set(a, i);
                        changed = true;
                    }
                }
            }
            // a ⊆ (c ∖ e) when a ⊆ c and a disjoint from e.
            for &(d, c, e) in &diffs {
                for a in 0..n {
                    if reach.get(a, d) || !reach.get(a, c) {
                        continue;
                    }
                    // disjoint(a, e): e = diff(_, d2) with a ⊆ d2, or
                    //                 a = diff(_, d2) with e ⊆ d2.
                    let mut disjoint = false;
                    if let Some((_, sub2)) = diffs.iter().find(|(dd, _, _)| *dd == e).map(|(_, c2, d2)| (*c2, *d2)) {
                        if reach.get(a, sub2) {
                            disjoint = true;
                        }
                    }
                    if !disjoint {
                        if let Some((_, sub2)) =
                            diffs.iter().find(|(dd, _, _)| *dd == a).map(|(_, c2, d2)| (*c2, *d2))
                        {
                            if reach.get(e, sub2) {
                                disjoint = true;
                            }
                        }
                    }
                    if disjoint {
                        reach.set(a, d);
                        changed = true;
                    }
                }
            }
            // Monotone select: select(A,p) ⊆ select(B,p) when A ⊆ B.
            for &(s1, src1, s2, src2) in &select_pairs {
                if !reach.get(s1, s2) && reach.get(src1, src2) {
                    reach.set(s1, s2);
                    changed = true;
                }
            }
            // Monotone difference: (A ∖ C) ⊆ (B ∖ D) when A ⊆ B and D ⊆ C.
            for &(d1, a1, b1) in &diffs {
                for &(d2, a2, b2) in &diffs {
                    if d1 != d2
                        && !reach.get(d1, d2)
                        && reach.get(a1, a2)
                        && reach.get(b2, b1)
                    {
                        reach.set(d1, d2);
                        changed = true;
                    }
                }
            }
        }

        Subsumption { schema, reach }
    }

    /// Is `extent(a) ⊆ extent(b)` provable?
    pub fn subsumes(&self, a: ClassId, b: ClassId) -> bool {
        let (a, b) = (a.0 as usize, b.0 as usize);
        a < self.reach.n && b < self.reach.n && self.reach.get(a, b)
    }

    /// Are the extents provably equal?
    pub fn extent_equal(&self, a: ClassId, b: ClassId) -> bool {
        self.subsumes(a, b) && self.subsumes(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_object_model::Predicate;

    fn schema() -> (Schema, ClassId, ClassId, ClassId) {
        let mut s = Schema::new();
        let person = s.create_base_class("Person", &[]).unwrap();
        let student = s.create_base_class("Student", &[person]).unwrap();
        let staff = s.create_base_class("Staff", &[person]).unwrap();
        (s, person, student, staff)
    }

    #[test]
    fn isa_edges_imply_subsumption() {
        let (s, person, student, staff) = schema();
        let sub = Subsumption::new(&s);
        assert!(sub.subsumes(student, person));
        assert!(!sub.subsumes(person, student));
        assert!(!sub.subsumes(student, staff));
        assert!(sub.subsumes(student, s.root()));
    }

    #[test]
    fn operator_rules() {
        let (mut s, person, student, staff) = schema();
        let sel = s
            .create_virtual_class(
                "Sel",
                Derivation::Select { src: person, pred: Predicate::True },
            )
            .unwrap();
        let hid = s
            .create_virtual_class("Hid", Derivation::Hide { src: student, hidden: vec![] })
            .unwrap();
        let refi = s.create_refine_class("Ref", student, vec![], vec![]).unwrap();
        let uni = s
            .create_virtual_class("Uni", Derivation::Union { a: student, b: staff })
            .unwrap();
        let dif = s
            .create_virtual_class("Dif", Derivation::Difference { a: person, b: student })
            .unwrap();
        let int = s
            .create_virtual_class("Int", Derivation::Intersect { a: student, b: staff })
            .unwrap();
        let sub = Subsumption::new(&s);
        // select ⊆ src, not conversely.
        assert!(sub.subsumes(sel, person));
        assert!(!sub.subsumes(person, sel));
        // hide/refine ≡ src.
        assert!(sub.extent_equal(hid, student));
        assert!(sub.extent_equal(refi, student));
        // sources ⊆ union; union ⊆ common ancestors (conjunction).
        assert!(sub.subsumes(student, uni));
        assert!(sub.subsumes(staff, uni));
        assert!(sub.subsumes(uni, person), "union of subclasses fits under Person");
        assert!(!sub.subsumes(uni, student));
        // diff ⊆ first arg.
        assert!(sub.subsumes(dif, person));
        assert!(!sub.subsumes(dif, student));
        // intersect ⊆ both; things below both ⊆ intersect (conjunction).
        assert!(sub.subsumes(int, student) && sub.subsumes(int, staff));
        let working = s.create_base_class("WorkingStudent", &[student, staff]).unwrap();
        let sub = Subsumption::new(&s);
        assert!(sub.subsumes(working, int));
    }

    #[test]
    fn transitivity_through_mixed_chains() {
        let (mut s, person, student, _) = schema();
        let honor = s
            .create_virtual_class(
                "Honor",
                Derivation::Select { src: student, pred: Predicate::True },
            )
            .unwrap();
        let honor_plus = s.create_refine_class("Honor+", honor, vec![], vec![]).unwrap();
        let sub = Subsumption::new(&s);
        assert!(sub.subsumes(honor_plus, person));
        assert!(sub.extent_equal(honor_plus, honor));
        assert!(!sub.extent_equal(honor_plus, student));
    }

    #[test]
    fn no_false_positives_between_siblings() {
        let (mut s, _, student, staff) = schema();
        let a = s
            .create_virtual_class(
                "A",
                Derivation::Select { src: student, pred: Predicate::True },
            )
            .unwrap();
        let b = s
            .create_virtual_class("B", Derivation::Select { src: staff, pred: Predicate::True })
            .unwrap();
        let sub = Subsumption::new(&s);
        assert!(!sub.subsumes(a, b));
        assert!(!sub.subsumes(b, a));
        assert!(!sub.extent_equal(a, b));
    }

    #[test]
    fn monotone_select_rule() {
        // select(Sub, p) ⊆ select(Sup, p) — the §6.7.3 add-class argument.
        let (mut s, person, student, _) = schema();
        let p = Predicate::True;
        let big = s
            .create_virtual_class("Big", Derivation::Select { src: person, pred: p.clone() })
            .unwrap();
        let small = s
            .create_virtual_class("Small", Derivation::Select { src: student, pred: p })
            .unwrap();
        let sub = Subsumption::new(&s);
        assert!(sub.subsumes(small, big));
        assert!(!sub.subsumes(big, small));
    }

    #[test]
    fn difference_disjointness_rule() {
        // TA-like class is provably inside diff(Person, Student ∖ TA).
        let mut s = Schema::new();
        let person = s.create_base_class("Person", &[]).unwrap();
        let student = s.create_base_class("Student", &[person]).unwrap();
        let ta = s.create_base_class("TA", &[student]).unwrap();
        let s_minus_ta = s
            .create_virtual_class("SmT", Derivation::Difference { a: student, b: ta })
            .unwrap();
        let p_minus = s
            .create_virtual_class("PmSmT", Derivation::Difference { a: person, b: s_minus_ta })
            .unwrap();
        let sub = Subsumption::new(&s);
        assert!(sub.subsumes(ta, p_minus), "TA ⊆ Person ∖ (Student ∖ TA)");
        assert!(!sub.subsumes(student, p_minus));
    }

    #[test]
    fn identical_derivations_are_extent_equal() {
        let (mut s, person, _, _) = schema();
        let a = s
            .create_virtual_class(
                "A",
                Derivation::Select { src: person, pred: Predicate::True },
            )
            .unwrap();
        let b = s
            .create_virtual_class(
                "B",
                Derivation::Select { src: person, pred: Predicate::True },
            )
            .unwrap();
        let sub = Subsumption::new(&s);
        assert!(sub.extent_equal(a, b));
    }
}
