//! # tse-classifier — global schema classification
//!
//! The Classifier module of the TSE architecture (§5, \[17\]): it reclassifies
//! the global schema to integrate newly created virtual classes into one
//! consistent class hierarchy, detecting duplicate classes and promoting
//! shared property definitions upward so that both base and virtual classes
//! resolve inherited properties correctly.
//!
//! ```
//! use tse_algebra::{define_vc, Query};
//! use tse_classifier::classify;
//! use tse_object_model::{Database, PropertyDef, Value, ValueType};
//!
//! let mut db = Database::default();
//! let person = db.schema_mut().create_base_class("Person", &[]).unwrap();
//! db.schema_mut().add_local_prop(
//!     person,
//!     PropertyDef::stored("age", ValueType::Int, Value::Int(0)),
//!     None,
//! ).unwrap();
//! let ageless = define_vc(&mut db, "Ageless",
//!     &Query::hide(Query::class(person), &["age"])).unwrap();
//!
//! let placement = classify(&mut db, ageless).unwrap();
//! // A hide class becomes a *superclass* of its source, with the remaining
//! // properties promoted up into it.
//! assert_eq!(placement.subs, vec![person]);
//! ```

#![warn(missing_docs)]

mod classify;
mod subsume;

pub use classify::{check_type_agreement, classify, classify_all, Placement};
pub use subsume::Subsumption;
