//! The classification algorithm.
//!
//! Integrates a freshly derived virtual class into the one consistent global
//! schema \[17\]: finds its most specific superclasses and most general
//! subclasses by *provable* extent subsumption plus type inclusion, inserts
//! the is-a edges (dropping edges made redundant), detects duplicate classes,
//! and performs upward property promotion so that inheritance-based type
//! resolution agrees with the operator-intent type ("true upwards method
//! resolution for both base and virtual classes").


use tse_algebra::{intent_type, TypeKeys};
use tse_object_model::{ClassId, Database, ModelError, ModelResult};

use crate::subsume::Subsumption;

/// Result of classifying one class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The class that should be *used* from now on: the input class, or the
    /// pre-existing duplicate it was folded into.
    pub class: ClassId,
    /// `Some(existing)` when the new class duplicated an existing one and
    /// was retired.
    pub duplicate_of: Option<ClassId>,
    /// Direct superclasses chosen.
    pub supers: Vec<ClassId>,
    /// Direct subclasses chosen.
    pub subs: Vec<ClassId>,
    /// `(from, property)` promotions performed.
    pub promoted: Vec<(ClassId, String)>,
}

fn is_retired(db: &Database, c: ClassId) -> bool {
    db.schema().is_retired(c)
}

/// Classify a virtual class into the global schema. See module docs.
///
/// Telemetry: spans as `classifier.classify`, bumps
/// `classifier.classifications` / `classifier.duplicates_folded` /
/// `classifier.promotions` in the database's registry.
pub fn classify(db: &mut Database, class: ClassId) -> ModelResult<Placement> {
    let telemetry = db.telemetry().clone();
    let span = telemetry.span("classifier.classify");
    let result = classify_inner(db, class);
    telemetry.incr("classifier.classifications", 1);
    if let Ok(p) = &result {
        if p.duplicate_of.is_some() {
            telemetry.incr("classifier.duplicates_folded", 1);
        }
        if !p.promoted.is_empty() {
            telemetry.incr("classifier.promotions", p.promoted.len() as u64);
        }
        span.record("duplicate", p.duplicate_of.is_some());
        span.record("supers", p.supers.len());
        span.record("subs", p.subs.len());
    }
    result
}

fn classify_inner(db: &mut Database, class: ClassId) -> ModelResult<Placement> {
    if db.schema().class(class)?.is_base() {
        return Err(ModelError::NotAVirtualClass(class));
    }
    let target_type: TypeKeys = intent_type(db, class)?;
    let prover = Subsumption::new(db.schema());

    // Candidate supers / subs across all live classes.
    let mut super_cands: Vec<(ClassId, TypeKeys)> = Vec::new();
    let mut sub_cands: Vec<(ClassId, TypeKeys)> = Vec::new();
    for other in db.schema().class_ids().collect::<Vec<_>>() {
        if other == class || is_retired(db, other) {
            continue;
        }
        let other_type = db.schema().type_keys(other)?;
        let ext_below = prover.subsumes(class, other);
        let ext_above = prover.subsumes(other, class);
        if ext_below && ext_above && other_type == target_type {
            // Duplicate: same provable extent, same type.
            db.schema_mut().retire_class(class)?;
            return Ok(Placement {
                class: other,
                duplicate_of: Some(other),
                supers: vec![],
                subs: vec![],
                promoted: vec![],
            });
        }
        if ext_below && other_type.is_subset(&target_type) {
            super_cands.push((other, other_type.clone()));
        }
        if ext_above && target_type.is_subset(&other_type) {
            sub_cands.push((other, other_type));
        }
    }

    // Most specific supers: drop any candidate with another candidate
    // strictly below it.
    let supers: Vec<ClassId> = super_cands
        .iter()
        .filter(|(s1, t1)| {
            !super_cands.iter().any(|(s2, t2)| {
                s2 != s1
                    && prover.subsumes(*s2, *s1)
                    && t1.is_subset(t2)
                    && !(prover.subsumes(*s1, *s2) && t2.is_subset(t1))
            })
        })
        .map(|(s, _)| *s)
        .collect();
    let supers = if supers.is_empty() { vec![db.schema().root()] } else { supers };

    // Most general subs: drop any candidate with another candidate
    // strictly above it.
    let subs: Vec<ClassId> = sub_cands
        .iter()
        .filter(|(x1, t1)| {
            // Never pick a sub that is also (effectively) a super.
            if supers.contains(x1) {
                return false;
            }
            !sub_cands.iter().any(|(x2, t2)| {
                x2 != x1
                    && prover.subsumes(*x1, *x2)
                    && t2.is_subset(t1)
                    && !(prover.subsumes(*x2, *x1) && t1.is_subset(t2))
            })
        })
        .map(|(x, _)| *x)
        .collect();

    // Wire the class in.
    for s in &supers {
        db.schema_mut().add_edge(*s, class)?;
    }
    for x in &subs {
        db.schema_mut().add_edge(class, *x)?;
    }
    // Remove edges made redundant by the insertion.
    for s in &supers {
        for x in &subs {
            if db.schema().class(*x)?.direct_supers().contains(s) {
                db.schema_mut().remove_edge(*s, *x)?;
            }
        }
    }

    // Upward property promotion: definitions held locally by a new direct
    // subclass but included in the new class's type move up into it.
    let mut promoted = Vec::new();
    for x in &subs {
        let shared: Vec<(String, tse_object_model::PropKey)> = target_type
            .iter()
            .filter(|(_, key)| db.schema().class(*x).map(|c| c.local_by_key(*key).is_some()).unwrap_or(false))
            .cloned()
            .collect();
        for (name, _key) in shared {
            if db.schema().class(class)?.local(&name).is_some() {
                continue; // the class already owns a local with that name
            }
            db.schema_mut().promote_prop(*x, &name, class)?;
            promoted.push((*x, name));
        }
    }

    // Repair step: any operator-intent property that the placement +
    // promotion still cannot resolve (e.g. a hide class whose source
    // inherits from a class outside the evolving view, so no primed
    // counterpart exists to sit under) is attached by reference — a shared
    // definition, exactly like `refine C1:x for C2`.
    let resolved = db.schema().type_keys(class)?;
    for (_, key) in target_type.difference(&resolved) {
        db.schema_mut().add_extra_ref(class, *key)?;
    }

    Ok(Placement { class, duplicate_of: None, supers, subs, promoted })
}

/// Classify several classes in creation order, returning the placement of
/// each and the mapping from requested to effective class ids.
pub fn classify_all(
    db: &mut Database,
    classes: &[ClassId],
) -> ModelResult<Vec<Placement>> {
    let mut out = Vec::with_capacity(classes.len());
    for c in classes {
        out.push(classify(db, *c)?);
    }
    Ok(out)
}

/// Debug/test helper: check that a classified class's hierarchy-resolved
/// type agrees with its operator-intent type.
pub fn check_type_agreement(db: &Database, class: ClassId) -> ModelResult<bool> {
    let resolved = db.schema().type_keys(class)?;
    let intent = intent_type(db, class)?;
    Ok(resolved == intent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_algebra::{define_vc, Query};
    use tse_object_model::{
        CmpOp, Predicate, PropertyDef, Value, ValueType,
    };

    /// Person(name, age) ← Student(gpa) ← TA(lecture); Person ← Staff(salary).
    fn setup() -> (Database, ClassId, ClassId, ClassId, ClassId) {
        let mut db = Database::default();
        let s = db.schema_mut();
        let person = s.create_base_class("Person", &[]).unwrap();
        let student = s.create_base_class("Student", &[person]).unwrap();
        let ta = s.create_base_class("TA", &[student]).unwrap();
        let staff = s.create_base_class("Staff", &[person]).unwrap();
        s.add_local_prop(person, PropertyDef::stored("name", ValueType::Str, Value::Null), None)
            .unwrap();
        s.add_local_prop(person, PropertyDef::stored("age", ValueType::Int, Value::Int(0)), None)
            .unwrap();
        s.add_local_prop(student, PropertyDef::stored("gpa", ValueType::Float, Value::Float(0.0)), None)
            .unwrap();
        s.add_local_prop(ta, PropertyDef::stored("lecture", ValueType::Str, Value::Null), None)
            .unwrap();
        s.add_local_prop(staff, PropertyDef::stored("salary", ValueType::Int, Value::Int(0)), None)
            .unwrap();
        (db, person, student, ta, staff)
    }

    #[test]
    fn select_class_lands_below_its_source() {
        let (mut db, person, _, _, _) = setup();
        let adult = define_vc(
            &mut db,
            "Adult",
            &Query::select(Query::class(person), Predicate::cmp("age", CmpOp::Ge, 18)),
        )
        .unwrap();
        let p = classify(&mut db, adult).unwrap();
        assert_eq!(p.supers, vec![person]);
        assert!(p.subs.is_empty());
        assert!(p.duplicate_of.is_none());
        assert!(check_type_agreement(&db, adult).unwrap());
    }

    #[test]
    fn figure4_hide_class_becomes_superclass_with_promotion() {
        let (mut db, person, _, _, _) = setup();
        let ageless =
            define_vc(&mut db, "AgelessPerson", &Query::hide(Query::class(person), &["age"]))
                .unwrap();
        let p = classify(&mut db, ageless).unwrap();
        assert_eq!(p.supers, vec![db.schema().root()]);
        assert_eq!(p.subs, vec![person]);
        // `name` was promoted from Person into AgelessPerson.
        assert!(p.promoted.iter().any(|(from, n)| *from == person && n == "name"));
        assert!(db.schema().class(ageless).unwrap().local("name").is_some());
        assert!(db.schema().class(person).unwrap().local("name").is_none());
        // Person still *resolves* name (inherited back down).
        assert!(db.schema().resolved_type(person).unwrap().contains_name("name"));
        // And age stayed local to Person, invisible to AgelessPerson.
        assert!(!db.schema().resolved_type(ageless).unwrap().contains_name("age"));
        assert!(check_type_agreement(&db, ageless).unwrap());
    }

    #[test]
    fn refine_chain_of_figure7_add_attribute() {
        let (mut db, _, student, ta, _) = setup();
        // Student' = refine register for Student.
        let sp = define_vc(
            &mut db,
            "Student'",
            &Query::refine(
                Query::class(student),
                vec![PropertyDef::stored("register", ValueType::Bool, Value::Bool(false))],
            ),
        )
        .unwrap();
        let p1 = classify(&mut db, sp).unwrap();
        assert_eq!(p1.supers, vec![student]);

        // TA' = refine Student':register for TA.
        let tap = define_vc(
            &mut db,
            "TA'",
            &Query::refine_inherit(Query::class(ta), vec![(sp, "register")]),
        )
        .unwrap();
        let p2 = classify(&mut db, tap).unwrap();
        let mut sup = p2.supers.clone();
        sup.sort();
        let mut expect = vec![ta, sp];
        expect.sort();
        assert_eq!(sup, expect, "TA' sits under both TA and Student'");
        assert!(check_type_agreement(&db, sp).unwrap());
        assert!(check_type_agreement(&db, tap).unwrap());

        // The shared register definition has a single key.
        let k1 = db.schema().resolved_type(sp).unwrap().get_unique(sp, "register").unwrap().key;
        let k2 = db.schema().resolved_type(tap).unwrap().get_unique(tap, "register").unwrap().key;
        assert_eq!(k1, k2);
    }

    #[test]
    fn figure8_delete_attribute_hide_chain() {
        let (mut db, person, student, ta, _) = setup();
        let sp = define_vc(&mut db, "Student'", &Query::hide(Query::class(student), &["gpa"]))
            .unwrap();
        classify(&mut db, sp).unwrap();
        let tap = define_vc(&mut db, "TA'", &Query::hide(Query::class(ta), &["gpa"])).unwrap();
        let p2 = classify(&mut db, tap).unwrap();
        // Student' under Person, above Student. TA' under Student', above TA.
        assert!(db.schema().is_sub_of(sp, person));
        assert!(db.schema().is_sub_of(student, sp));
        assert_eq!(p2.supers, vec![sp]);
        assert_eq!(p2.subs, vec![ta]);
        assert!(!db.schema().resolved_type(tap).unwrap().contains_name("gpa"));
        assert!(db.schema().resolved_type(tap).unwrap().contains_name("lecture"));
        assert!(check_type_agreement(&db, tap).unwrap());
    }

    #[test]
    fn union_class_sits_between_sources_and_common_ancestor() {
        let (mut db, person, student, _, staff) = setup();
        let u = define_vc(
            &mut db,
            "Uni",
            &Query::union(Query::class(student), Query::class(staff)),
        )
        .unwrap();
        let p = classify(&mut db, u).unwrap();
        assert_eq!(p.supers, vec![person]);
        let mut subs = p.subs.clone();
        subs.sort();
        assert_eq!(subs, vec![student, staff]);
        assert!(check_type_agreement(&db, u).unwrap());
        // The direct Person→Student / Person→Staff edges became redundant.
        assert!(!db.schema().class(student).unwrap().direct_supers().contains(&person));
        assert!(db.schema().is_sub_of(student, person), "still transitively below");
    }

    #[test]
    fn duplicate_classes_are_detected_and_retired() {
        let (mut db, person, _, _, _) = setup();
        let a = define_vc(
            &mut db,
            "Adult",
            &Query::select(Query::class(person), Predicate::cmp("age", CmpOp::Ge, 18)),
        )
        .unwrap();
        classify(&mut db, a).unwrap();
        let b = define_vc(
            &mut db,
            "GrownUp",
            &Query::select(Query::class(person), Predicate::cmp("age", CmpOp::Ge, 18)),
        )
        .unwrap();
        let p = classify(&mut db, b).unwrap();
        assert_eq!(p.duplicate_of, Some(a));
        assert_eq!(p.class, a);
        assert!(db.schema().by_name("GrownUp").is_err(), "duplicate name freed");
    }

    #[test]
    fn same_name_different_definitions_are_not_duplicates() {
        let (mut db, person, student, _, _) = setup();
        // Two capacity-augmenting refines with the same attribute *name*
        // create distinct stored attributes (distinct keys) — VS.1/VS.2 of
        // Figure 16 stay distinct.
        let r1 = define_vc(
            &mut db,
            "Student'",
            &Query::refine(
                Query::class(student),
                vec![PropertyDef::stored("register", ValueType::Bool, Value::Bool(false))],
            ),
        )
        .unwrap();
        classify(&mut db, r1).unwrap();
        let r2 = define_vc(
            &mut db,
            "Student''",
            &Query::refine(
                Query::class(student),
                vec![PropertyDef::stored("register", ValueType::Bool, Value::Bool(false))],
            ),
        )
        .unwrap();
        let p = classify(&mut db, r2).unwrap();
        assert!(p.duplicate_of.is_none());
        let _ = person;
    }

    #[test]
    fn classify_rejects_base_classes() {
        let (mut db, person, _, _, _) = setup();
        assert!(classify(&mut db, person).is_err());
    }

    #[test]
    fn intersect_class_positions_between_sources_and_their_common_subclasses() {
        let (mut db, _, student, _, staff) = setup();
        let working = db
            .schema_mut()
            .create_base_class("WorkingStudent", &[student, staff])
            .unwrap();
        let i = define_vc(
            &mut db,
            "Both",
            &Query::intersect(Query::class(student), Query::class(staff)),
        )
        .unwrap();
        let p = classify(&mut db, i).unwrap();
        let mut sup = p.supers.clone();
        sup.sort();
        assert_eq!(sup, vec![student, staff]);
        assert_eq!(p.subs, vec![working]);
        assert!(check_type_agreement(&db, i).unwrap());
    }

    #[test]
    fn extents_respect_placement_after_classification() {
        let (mut db, person, student, _, staff) = setup();
        let o_s = db.create_object(student, &[]).unwrap();
        let o_t = db.create_object(staff, &[]).unwrap();
        let u = define_vc(
            &mut db,
            "Uni",
            &Query::union(Query::class(student), Query::class(staff)),
        )
        .unwrap();
        classify(&mut db, u).unwrap();
        let ext = db.extent(u).unwrap();
        assert!(ext.contains(&o_s) && ext.contains(&o_t));
        assert!(db.extent(person).unwrap().len() >= 2);
    }
}
