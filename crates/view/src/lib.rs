//! # tse-view — view schemas for the TSE system
//!
//! Complete view schemas over the global schema (§3.1, \[21\]): class
//! selection, automatic generation of the view generalization hierarchy,
//! view-local renaming (the TSE transparency device), type-closure checking,
//! and the view manager with per-family version history.
//!
//! ```
//! use std::collections::BTreeSet;
//! use tse_object_model::Database;
//! use tse_view::ViewManager;
//!
//! let mut db = Database::default();
//! let person = db.schema_mut().create_base_class("Person", &[]).unwrap();
//! let student = db.schema_mut().create_base_class("Student", &[person]).unwrap();
//! let ta = db.schema_mut().create_base_class("TA", &[student]).unwrap();
//!
//! let mut vm = ViewManager::new();
//! // Select Person and TA only: the generated hierarchy bridges the gap.
//! let v = vm.create_view(&db, "VS", BTreeSet::from([person, ta])).unwrap();
//! let view = vm.view(v).unwrap();
//! assert_eq!(view.edges, vec![(person, ta)]);
//! ```

#![warn(missing_docs)]

mod closure;
mod manager;
mod schema;
pub mod snapshot;

pub use closure::{closed_selection, closure_violations, ClosureViolation};
pub use manager::ViewManager;
pub use schema::{build_view, generate_edges, ViewId, ViewSchema};
pub use snapshot::{decode_manager, encode_manager};
