//! Type closure of view schemas.
//!
//! "Currently, we can check the type-closure of a view schema and incorporate
//! necessary classes for the type-closure" (§5). A view is type-closed when
//! every class reachable through the *types* of its classes — i.e. every
//! class referenced by a `Ref`-typed stored attribute — is itself represented
//! in the view.

use std::collections::BTreeSet;

use tse_object_model::{ClassId, Database, ModelResult, PropKind};

use crate::schema::ViewSchema;

/// One type-closure violation: `class.attr` references `target`, which is
/// not in the view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosureViolation {
    /// Class whose type references outside the view.
    pub class: ClassId,
    /// Name of the referencing attribute.
    pub attr: String,
    /// The referenced class missing from the view.
    pub target: ClassId,
}

/// Check the type closure of a view. A reference is satisfied if the target
/// class *or any view class with provably identical-or-wider extent below
/// it* is selected; for simplicity and predictability we require the target
/// class or one of its selected subclasses.
pub fn closure_violations(
    db: &Database,
    view: &ViewSchema,
) -> ModelResult<Vec<ClosureViolation>> {
    let mut out = Vec::new();
    for &class in &view.classes {
        let rt = db.schema().resolved_type(class)?;
        for (name, rp) in &rt.props {
            for cand in &rp.candidates {
                let (_, def) = db.schema().def_by_key(cand.key)?;
                let target = match &def.kind {
                    PropKind::Stored { vtype, .. } => vtype.referenced_class(),
                    PropKind::Method { vtype, .. } => vtype.referenced_class(),
                };
                if let Some(target) = target {
                    let satisfied = view.contains(target)
                        || view
                            .classes
                            .iter()
                            .any(|c| db.schema().is_sub_of(*c, target));
                    if !satisfied {
                        out.push(ClosureViolation { class, attr: name.clone(), target });
                    }
                }
            }
        }
    }
    out.sort_by_key(|v| (v.class, v.attr.clone(), v.target));
    out.dedup();
    Ok(out)
}

/// Compute the class selection needed to close the view: the original
/// selection plus every (transitively) referenced class.
pub fn closed_selection(
    db: &Database,
    view: &ViewSchema,
) -> ModelResult<BTreeSet<ClassId>> {
    let mut classes = view.classes.clone();
    loop {
        let probe = ViewSchema { classes: classes.clone(), ..view.clone() };
        let violations = closure_violations(db, &probe)?;
        if violations.is_empty() {
            return Ok(classes);
        }
        for v in violations {
            classes.insert(v.target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{build_view, ViewId};
    use std::collections::BTreeMap;
    use tse_object_model::{PropertyDef, Value, ValueType};

    fn setup() -> (Database, ClassId, ClassId, ClassId) {
        let mut db = Database::default();
        let s = db.schema_mut();
        let dept = s.create_base_class("Department", &[]).unwrap();
        let person = s.create_base_class("Person", &[]).unwrap();
        let course = s.create_base_class("Course", &[]).unwrap();
        s.add_local_prop(
            person,
            PropertyDef::stored("dept", ValueType::Ref(dept), Value::Null),
            None,
        )
        .unwrap();
        s.add_local_prop(
            dept,
            PropertyDef::stored("offers", ValueType::List(Box::new(ValueType::Ref(course))), Value::List(vec![])),
            None,
        )
        .unwrap();
        (db, dept, person, course)
    }

    #[test]
    fn violations_are_reported_per_reference() {
        let (db, dept, person, _) = setup();
        let v = build_view(
            &db,
            ViewId(0),
            "V",
            1,
            BTreeSet::from([person]),
            BTreeMap::new(),
        )
        .unwrap();
        let violations = closure_violations(&db, &v).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].target, dept);
        assert_eq!(violations[0].attr, "dept");
    }

    #[test]
    fn closed_selection_chases_transitive_references() {
        let (db, dept, person, course) = setup();
        let v = build_view(
            &db,
            ViewId(0),
            "V",
            1,
            BTreeSet::from([person]),
            BTreeMap::new(),
        )
        .unwrap();
        let closed = closed_selection(&db, &v).unwrap();
        // Person → Department → Course (through the list type).
        assert_eq!(closed, BTreeSet::from([person, dept, course]));
    }

    #[test]
    fn closed_views_have_no_violations() {
        let (db, dept, person, course) = setup();
        let v = build_view(
            &db,
            ViewId(0),
            "V",
            1,
            BTreeSet::from([person, dept, course]),
            BTreeMap::new(),
        )
        .unwrap();
        assert!(closure_violations(&db, &v).unwrap().is_empty());
    }

    #[test]
    fn selected_subclass_satisfies_the_reference() {
        let (mut db, dept, person, _) = setup();
        let sub = db.schema_mut().create_base_class("EngDept", &[dept]).unwrap();
        let v = build_view(
            &db,
            ViewId(0),
            "V",
            1,
            BTreeSet::from([person, sub]),
            BTreeMap::new(),
        )
        .unwrap();
        let violations = closure_violations(&db, &v).unwrap();
        // Person.dept is satisfied by the selected subclass EngDept; the only
        // remaining violation is EngDept's inherited `offers: list<Course>`.
        assert!(
            !violations.iter().any(|x| x.attr == "dept"),
            "dept reference satisfied by subclass, got {violations:?}"
        );
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].attr, "offers");
    }
}
