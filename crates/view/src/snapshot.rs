//! Binary persistence for view schemas and the view history — the "View
//! Schema History" dictionary of the TSE architecture survives restarts
//! together with the database.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use tse_object_model::{ClassId, ModelError, ModelResult};

use crate::manager::ViewManager;
use crate::schema::{ViewId, ViewSchema};

fn corrupt(msg: &str) -> ModelError {
    ModelError::Storage(tse_storage::StorageError::Corrupt(msg.to_string()))
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> ModelResult<String> {
    if buf.remaining() < 4 {
        return Err(corrupt("truncated string length"));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(corrupt("truncated string body"));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| corrupt("non-utf8 string"))
}

fn get_u32(buf: &mut Bytes) -> ModelResult<u32> {
    if buf.remaining() < 4 {
        return Err(corrupt("truncated u32"));
    }
    Ok(buf.get_u32())
}

/// Encode one view schema.
pub fn encode_view(buf: &mut BytesMut, view: &ViewSchema) {
    buf.put_u32(view.id.0);
    put_str(buf, &view.family);
    buf.put_u32(view.version);
    buf.put_u32(view.classes.len() as u32);
    for c in &view.classes {
        buf.put_u32(c.0);
    }
    buf.put_u32(view.renames.len() as u32);
    for (c, name) in &view.renames {
        buf.put_u32(c.0);
        put_str(buf, name);
    }
    buf.put_u32(view.edges.len() as u32);
    for (a, b) in &view.edges {
        buf.put_u32(a.0);
        buf.put_u32(b.0);
    }
}

/// Decode one view schema.
pub fn decode_view(buf: &mut Bytes) -> ModelResult<ViewSchema> {
    let id = ViewId(get_u32(buf)?);
    let family = get_str(buf)?;
    let version = get_u32(buf)?;
    let n = get_u32(buf)? as usize;
    let mut classes = std::collections::BTreeSet::new();
    for _ in 0..n {
        classes.insert(ClassId(get_u32(buf)?));
    }
    let n = get_u32(buf)? as usize;
    let mut renames = std::collections::BTreeMap::new();
    for _ in 0..n {
        let c = ClassId(get_u32(buf)?);
        renames.insert(c, get_str(buf)?);
    }
    let n = get_u32(buf)? as usize;
    let mut edges = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        edges.push((ClassId(get_u32(buf)?), ClassId(get_u32(buf)?)));
    }
    Ok(ViewSchema { id, family, version, classes, renames, edges })
}

/// Encode a whole manager (all views + family histories).
pub fn encode_manager(manager: &ViewManager) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(b"TSEVW001");
    let views: Vec<&ViewSchema> = (0..manager.view_count() as u32)
        .map(|i| manager.view(ViewId(i)).expect("dense view ids"))
        .collect();
    buf.put_u32(views.len() as u32);
    for v in views {
        encode_view(&mut buf, v);
    }
    buf.freeze()
}

/// Decode a manager. The per-family histories are rebuilt from the views'
/// family/version fields.
pub fn decode_manager(mut bytes: Bytes) -> ModelResult<ViewManager> {
    if bytes.remaining() < 8 {
        return Err(corrupt("view snapshot too short"));
    }
    let mut magic = [0u8; 8];
    bytes.copy_to_slice(&mut magic);
    if &magic != b"TSEVW001" {
        return Err(corrupt("bad view snapshot magic"));
    }
    let n = get_u32(&mut bytes)? as usize;
    let mut views = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        views.push(decode_view(&mut bytes)?);
    }
    ViewManager::from_views(views)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ViewManager;
    use std::collections::BTreeSet;
    use tse_object_model::Database;

    fn setup() -> (Database, ViewManager) {
        let mut db = Database::default();
        let a = db.schema_mut().create_base_class("A", &[]).unwrap();
        let b = db.schema_mut().create_base_class("B", &[a]).unwrap();
        let mut vm = ViewManager::new();
        vm.create_view(&db, "VS", BTreeSet::from([a, b])).unwrap();
        vm.push_version(
            &db,
            "VS",
            BTreeSet::from([a]),
            std::collections::BTreeMap::from([(a, "Alpha".to_string())]),
        )
        .unwrap();
        vm.create_view(&db, "OTHER", BTreeSet::from([b])).unwrap();
        (db, vm)
    }

    #[test]
    fn manager_roundtrips_with_history() {
        let (db, vm) = setup();
        let restored = decode_manager(encode_manager(&vm)).unwrap();
        assert_eq!(restored.view_count(), vm.view_count());
        assert_eq!(restored.versions("VS").unwrap(), vm.versions("VS").unwrap());
        assert_eq!(restored.current("VS").unwrap(), vm.current("VS").unwrap());
        assert_eq!(
            restored.current("VS").unwrap().local_name(&db, db.schema().by_name("A").unwrap()).unwrap(),
            "Alpha"
        );
        assert_eq!(restored.versions("OTHER").unwrap().len(), 1);
    }

    #[test]
    fn corrupt_inputs_error() {
        assert!(decode_manager(Bytes::from_static(b"junk")).is_err());
        let (_, vm) = setup();
        let good = encode_manager(&vm);
        for cut in (0..good.len()).step_by(13) {
            let _ = decode_manager(good.slice(..cut));
        }
    }
}
