//! The View Manager and View Schema History.
//!
//! The manager registers view schemas and keeps, per view family, the
//! version chain the TSE system builds as schema changes replace a user's
//! view by a recomputed one ("the dictionary keeps track of the history of
//! each view schema, allowing for the substitution of the old view by the
//! newly created one"). Old versions remain addressable — that is precisely
//! what keeps old application programs running.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use tse_object_model::{ClassId, Database, ModelError, ModelResult};

use crate::schema::{build_view, ViewId, ViewSchema};

/// Registry of all view schemas plus the per-family history. `Clone` exists
/// for transactional evolution (the TSEM checkpoints the manager before a
/// schema change and restores the clone on rollback) and for epoch snapshot
/// publication in the shared system. View schemas are immutable once
/// registered, so they live behind `Arc`s: cloning the manager copies only
/// the vector of pointers plus the family histories, never the view bodies.
#[derive(Debug, Default, Clone)]
pub struct ViewManager {
    views: Vec<Arc<ViewSchema>>,
    history: BTreeMap<String, Vec<ViewId>>,
}

impl ViewManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// `build_view` wrapped in telemetry: spans as `view.generate`, bumps
    /// `view.versions_registered`, and feeds `view.classes_per_view`.
    fn generate(
        db: &Database,
        id: ViewId,
        family: &str,
        version: u32,
        classes: BTreeSet<ClassId>,
        renames: BTreeMap<ClassId, String>,
    ) -> ModelResult<ViewSchema> {
        let telemetry = db.telemetry().clone();
        let span = telemetry.span("view.generate");
        span.record("family", family);
        span.record("version", version as u64);
        span.record("classes", classes.len());
        let view = build_view(db, id, family, version, classes, renames)?;
        telemetry.incr("view.versions_registered", 1);
        telemetry.observe_ns("view.classes_per_view", view.classes.len() as u64);
        Ok(view)
    }

    /// Rebuild a manager from persisted views. Ids must be dense (0..n in
    /// vector order); family histories are reconstructed from the views'
    /// family and version fields.
    pub fn from_views(views: Vec<ViewSchema>) -> ModelResult<Self> {
        for (i, v) in views.iter().enumerate() {
            if v.id.0 as usize != i {
                return Err(ModelError::Invalid(format!(
                    "view snapshot ids not dense: slot {i} holds {}",
                    v.id
                )));
            }
        }
        let mut history: BTreeMap<String, Vec<ViewId>> = BTreeMap::new();
        let mut by_family: BTreeMap<String, Vec<(u32, ViewId)>> = BTreeMap::new();
        for v in &views {
            by_family.entry(v.family.clone()).or_default().push((v.version, v.id));
        }
        for (family, mut versions) in by_family {
            versions.sort();
            history.insert(family, versions.into_iter().map(|(_, id)| id).collect());
        }
        Ok(ViewManager { views: views.into_iter().map(Arc::new).collect(), history })
    }

    /// Create the first version of a view family from a class selection.
    pub fn create_view(
        &mut self,
        db: &Database,
        family: &str,
        classes: BTreeSet<ClassId>,
    ) -> ModelResult<ViewId> {
        if self.history.contains_key(family) {
            return Err(ModelError::Invalid(format!("view family {family:?} already exists")));
        }
        let id = ViewId(self.views.len() as u32);
        let view = Self::generate(db, id, family, 1, classes, BTreeMap::new())?;
        self.views.push(Arc::new(view));
        self.history.insert(family.to_string(), vec![id]);
        Ok(id)
    }

    /// Register a new version of an existing family (the TSE "replace the
    /// old view with the new one" step). The old version stays readable.
    pub fn push_version(
        &mut self,
        db: &Database,
        family: &str,
        classes: BTreeSet<ClassId>,
        renames: BTreeMap<ClassId, String>,
    ) -> ModelResult<ViewId> {
        let versions = self
            .history
            .get(family)
            .ok_or_else(|| ModelError::Invalid(format!("no view family {family:?}")))?;
        let version = versions.len() as u32 + 1;
        let id = ViewId(self.views.len() as u32);
        let view = Self::generate(db, id, family, version, classes, renames)?;
        self.views.push(Arc::new(view));
        self.history.get_mut(family).unwrap().push(id);
        Ok(id)
    }

    /// Register a brand-new family whose first version carries renames
    /// (used by version merging, where same-named distinct classes must be
    /// disambiguated).
    pub fn create_view_renamed(
        &mut self,
        db: &Database,
        family: &str,
        classes: BTreeSet<ClassId>,
        renames: BTreeMap<ClassId, String>,
    ) -> ModelResult<ViewId> {
        if self.history.contains_key(family) {
            return Err(ModelError::Invalid(format!("view family {family:?} already exists")));
        }
        let id = ViewId(self.views.len() as u32);
        let view = Self::generate(db, id, family, 1, classes, renames)?;
        self.views.push(Arc::new(view));
        self.history.insert(family.to_string(), vec![id]);
        Ok(id)
    }

    /// Fetch any registered version.
    pub fn view(&self, id: ViewId) -> ModelResult<&ViewSchema> {
        self.views
            .get(id.0 as usize)
            .map(|v| v.as_ref())
            .ok_or_else(|| ModelError::Invalid(format!("unknown view {id}")))
    }

    /// Fetch any registered version as a shared pointer — lets epoch
    /// snapshots and read sessions hold a view beyond the manager borrow.
    pub fn view_arc(&self, id: ViewId) -> ModelResult<Arc<ViewSchema>> {
        self.views
            .get(id.0 as usize)
            .cloned()
            .ok_or_else(|| ModelError::Invalid(format!("unknown view {id}")))
    }

    /// The current (latest) version of a family.
    pub fn current(&self, family: &str) -> ModelResult<&ViewSchema> {
        let versions = self
            .history
            .get(family)
            .ok_or_else(|| ModelError::Invalid(format!("no view family {family:?}")))?;
        self.view(*versions.last().expect("family has at least one version"))
    }

    /// The whole version chain of a family, oldest first.
    pub fn versions(&self, family: &str) -> ModelResult<&[ViewId]> {
        self.history
            .get(family)
            .map(|v| v.as_slice())
            .ok_or_else(|| ModelError::Invalid(format!("no view family {family:?}")))
    }

    /// All family names.
    pub fn families(&self) -> impl Iterator<Item = &str> {
        self.history.keys().map(|s| s.as_str())
    }

    /// Number of registered view schemas (all versions).
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// Regenerate a registered view's edges against the current global
    /// schema and check it is unchanged — the executable form of the
    /// paper's *view independence* property (Propositions B): schema changes
    /// made for one view must leave every other view's schema intact.
    pub fn is_unaffected(&self, db: &Database, id: ViewId) -> ModelResult<bool> {
        let view = self.view(id)?;
        let regenerated = crate::schema::generate_edges(db, &view.classes)?;
        let mut a = view.edges.clone();
        let mut b = regenerated;
        a.sort();
        b.sort();
        Ok(a == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_algebra::{define_vc, Query};
    use tse_classifier::classify;
    use tse_object_model::{PropertyDef, Value, ValueType};

    fn setup() -> (Database, ClassId, ClassId) {
        let mut db = Database::default();
        let s = db.schema_mut();
        let person = s.create_base_class("Person", &[]).unwrap();
        let student = s.create_base_class("Student", &[person]).unwrap();
        s.add_local_prop(person, PropertyDef::stored("name", ValueType::Str, Value::Null), None)
            .unwrap();
        (db, person, student)
    }

    #[test]
    fn families_version_chains() {
        let (db, person, student) = setup();
        let mut vm = ViewManager::new();
        let v1 = vm.create_view(&db, "VS", BTreeSet::from([person, student])).unwrap();
        assert_eq!(vm.current("VS").unwrap().id, v1);
        let v2 = vm
            .push_version(&db, "VS", BTreeSet::from([person]), BTreeMap::new())
            .unwrap();
        assert_eq!(vm.current("VS").unwrap().id, v2);
        assert_eq!(vm.versions("VS").unwrap(), &[v1, v2]);
        // Old version still fully readable.
        assert!(vm.view(v1).unwrap().contains(student));
        assert!(!vm.view(v2).unwrap().contains(student));
        assert_eq!(vm.view(v1).unwrap().version, 1);
        assert_eq!(vm.view(v2).unwrap().version, 2);
    }

    #[test]
    fn duplicate_family_rejected_and_missing_family_errors() {
        let (db, person, _) = setup();
        let mut vm = ViewManager::new();
        vm.create_view(&db, "VS", BTreeSet::from([person])).unwrap();
        assert!(vm.create_view(&db, "VS", BTreeSet::from([person])).is_err());
        assert!(vm.push_version(&db, "ZZ", BTreeSet::from([person]), BTreeMap::new()).is_err());
        assert!(vm.current("ZZ").is_err());
    }

    #[test]
    fn view_independence_survives_unrelated_schema_growth() {
        let (mut db, person, student) = setup();
        let mut vm = ViewManager::new();
        let v1 = vm.create_view(&db, "VS", BTreeSet::from([person, student])).unwrap();
        // Another user's schema change adds classes the view doesn't select.
        let sp = define_vc(
            &mut db,
            "Student'",
            &Query::refine(
                Query::class(student),
                vec![PropertyDef::stored("register", ValueType::Bool, Value::Bool(false))],
            ),
        )
        .unwrap();
        classify(&mut db, sp).unwrap();
        assert!(vm.is_unaffected(&db, v1).unwrap());
    }
}
