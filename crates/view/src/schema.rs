//! View schemas and the view-schema generation algorithm.
//!
//! A view schema is "the schema containing a subset of both base and virtual
//! classes as required by a particular user". Unlike per-class view
//! mechanisms, a MultiView/TSE view is a *complete schema graph*: its
//! generalization edges are generated automatically \[21\] as the transitive
//! reduction of the global DAG's reachability restricted to the selected
//! classes — relieving the user of drawing (and possibly corrupting) the is-a
//! hierarchy by hand.

use std::collections::{BTreeMap, BTreeSet};

use tse_object_model::{ClassId, Database, ModelError, ModelResult, Schema};

/// Identifies a view schema (one *version*; a view family is a sequence of
/// these, see the manager).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViewId(pub u32);

impl std::fmt::Display for ViewId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One version of a user's view schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewSchema {
    /// Identity of this version.
    pub id: ViewId,
    /// View family name (shared by all versions, e.g. `VS1` → `VS1.2`).
    pub family: String,
    /// Version number within the family (1-based).
    pub version: u32,
    /// Selected global classes.
    pub classes: BTreeSet<ClassId>,
    /// View-local renames (global class → name shown in this view). The TSE
    /// transparency trick: `Student'` is renamed back to `Student` "within
    /// the context of the view".
    pub renames: BTreeMap<ClassId, String>,
    /// Generated generalization edges `(sup, sub)`.
    pub edges: Vec<(ClassId, ClassId)>,
}

impl ViewSchema {
    /// Does the view contain this global class?
    pub fn contains(&self, class: ClassId) -> bool {
        self.classes.contains(&class)
    }

    /// The name a class carries inside this view.
    pub fn local_name(&self, db: &Database, class: ClassId) -> ModelResult<String> {
        self.local_name_in(db.schema(), class)
    }

    /// [`ViewSchema::local_name`] against an explicit schema — the form the
    /// shared system's read sessions use, resolving against an epoch's
    /// immutable schema snapshot instead of the live database.
    pub fn local_name_in(&self, schema: &Schema, class: ClassId) -> ModelResult<String> {
        if !self.contains(class) {
            return Err(ModelError::UnknownClass(class));
        }
        if let Some(n) = self.renames.get(&class) {
            return Ok(n.clone());
        }
        Ok(schema.class(class)?.name.clone())
    }

    /// Resolve a view-local name to the global class.
    pub fn lookup(&self, db: &Database, name: &str) -> ModelResult<ClassId> {
        self.lookup_in(db.schema(), name)
    }

    /// [`ViewSchema::lookup`] against an explicit schema — the form the
    /// shared system's read sessions use, resolving against an epoch's
    /// immutable schema snapshot instead of the live database.
    pub fn lookup_in(&self, schema: &Schema, name: &str) -> ModelResult<ClassId> {
        // Renames take precedence (and shadow the global names they mask).
        for (class, local) in &self.renames {
            if local == name {
                return Ok(*class);
            }
        }
        for class in &self.classes {
            if self.renames.contains_key(class) {
                continue;
            }
            if schema.class(*class)?.name == name {
                return Ok(*class);
            }
        }
        Err(ModelError::UnknownClassName(name.to_string()))
    }

    /// Direct superclasses of `class` *within this view*.
    pub fn supers_in_view(&self, class: ClassId) -> Vec<ClassId> {
        self.edges.iter().filter(|(_, sub)| *sub == class).map(|(sup, _)| *sup).collect()
    }

    /// Direct subclasses of `class` *within this view*.
    pub fn subs_in_view(&self, class: ClassId) -> Vec<ClassId> {
        self.edges.iter().filter(|(sup, _)| *sup == class).map(|(_, sub)| *sub).collect()
    }

    /// Classes with no superclass inside the view (the view's roots).
    pub fn roots(&self) -> Vec<ClassId> {
        self.classes
            .iter()
            .filter(|c| self.supers_in_view(**c).is_empty())
            .copied()
            .collect()
    }

    /// Is `sub` (transitively) below `sup` within the view?
    pub fn is_sub_in_view(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        let mut stack = vec![sup];
        let mut seen = BTreeSet::new();
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            for s in self.subs_in_view(c) {
                if s == sub {
                    return true;
                }
                stack.push(s);
            }
        }
        false
    }

    /// Render the view as an indented tree with each class's resolved
    /// properties (the "complete customized interface" a developer sees).
    pub fn render_with_types(&self, db: &Database) -> String {
        let mut out = format!("view {} (version {})\n", self.family, self.version);
        let mut roots = self.roots();
        roots.sort_by_key(|c| self.local_name(db, *c).unwrap_or_default());
        for root in roots {
            self.render_typed_rec(db, root, 1, &mut out, &mut BTreeSet::new());
        }
        out
    }

    fn render_typed_rec(
        &self,
        db: &Database,
        class: ClassId,
        depth: usize,
        out: &mut String,
        seen: &mut BTreeSet<ClassId>,
    ) {
        let local = self.local_name(db, class).unwrap_or_else(|_| class.to_string());
        let props = match db.schema().resolved_type(class) {
            Ok(rt) => {
                let mut names: Vec<String> = rt
                    .props
                    .iter()
                    .map(|(n, rp)| if rp.is_ambiguous() { format!("{n}(!)") } else { n.clone() })
                    .collect();
                names.sort();
                names.join(", ")
            }
            Err(_) => String::from("?"),
        };
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("{local} ({props})\n"));
        if !seen.insert(class) {
            return;
        }
        let mut subs = self.subs_in_view(class);
        subs.sort_by_key(|c| self.local_name(db, *c).unwrap_or_default());
        for sub in subs {
            self.render_typed_rec(db, sub, depth + 1, out, seen);
        }
    }

    /// Render the view as an indented tree (figures harness output).
    pub fn render(&self, db: &Database) -> String {
        let mut out = format!("view {} (version {})\n", self.family, self.version);
        let mut roots = self.roots();
        roots.sort_by_key(|c| self.local_name(db, *c).unwrap_or_default());
        for root in roots {
            self.render_rec(db, root, 1, &mut out, &mut BTreeSet::new());
        }
        out
    }

    fn render_rec(
        &self,
        db: &Database,
        class: ClassId,
        depth: usize,
        out: &mut String,
        seen: &mut BTreeSet<ClassId>,
    ) {
        let local = self.local_name(db, class).unwrap_or_else(|_| class.to_string());
        let global = db
            .schema()
            .class(class)
            .map(|c| c.name.clone())
            .unwrap_or_else(|_| class.to_string());
        out.push_str(&"  ".repeat(depth));
        if local == global {
            out.push_str(&format!("{local}\n"));
        } else {
            out.push_str(&format!("{local} (= {global})\n"));
        }
        if !seen.insert(class) {
            return;
        }
        let mut subs = self.subs_in_view(class);
        subs.sort_by_key(|c| self.local_name(db, *c).unwrap_or_default());
        for sub in subs {
            self.render_rec(db, sub, depth + 1, out, seen);
        }
    }
}

/// The view-schema generation algorithm \[21\]: compute the generalization
/// edges for a class selection as the transitive reduction of global
/// reachability restricted to the selection.
pub fn generate_edges(
    db: &Database,
    classes: &BTreeSet<ClassId>,
) -> ModelResult<Vec<(ClassId, ClassId)>> {
    for c in classes {
        db.schema().class(*c)?;
    }
    let class_vec: Vec<ClassId> = classes.iter().copied().collect();
    let mut edges = Vec::new();
    for &sup in &class_vec {
        for &sub in &class_vec {
            if sup == sub || !db.schema().is_sub_of(sub, sup) {
                continue;
            }
            // Transitive reduction: skip if an intermediate selected class
            // sits strictly between.
            let between = class_vec.iter().any(|&mid| {
                mid != sup
                    && mid != sub
                    && db.schema().is_sub_of(mid, sup)
                    && db.schema().is_sub_of(sub, mid)
                    // Guard against extent-equal classes collapsing the
                    // reduction entirely (e.g. hide classes ≡ source).
                    && !(db.schema().is_sub_of(sup, mid) || db.schema().is_sub_of(mid, sub))
            });
            if !between {
                edges.push((sup, sub));
            }
        }
    }
    Ok(edges)
}

/// Build a complete view schema from a class selection (used by the manager;
/// exposed for tests and the TSEM).
pub fn build_view(
    db: &Database,
    id: ViewId,
    family: &str,
    version: u32,
    classes: BTreeSet<ClassId>,
    renames: BTreeMap<ClassId, String>,
) -> ModelResult<ViewSchema> {
    // Renames must target selected classes and be unique.
    let mut used: BTreeSet<String> = BTreeSet::new();
    for (class, name) in &renames {
        if !classes.contains(class) {
            return Err(ModelError::UnknownClass(*class));
        }
        if !used.insert(name.clone()) {
            return Err(ModelError::DuplicateClassName(name.clone()));
        }
    }
    // Unrenamed classes must not collide with the renames or each other.
    for class in &classes {
        if renames.contains_key(class) {
            continue;
        }
        let n = db.schema().class(*class)?.name.clone();
        if !used.insert(n.clone()) {
            return Err(ModelError::DuplicateClassName(n));
        }
    }
    let edges = generate_edges(db, &classes)?;
    Ok(ViewSchema { id, family: family.to_string(), version, classes, renames, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_algebra::{define_vc, Query};
    use tse_classifier::classify;
    use tse_object_model::{PropertyDef, Value, ValueType};

    fn setup() -> (Database, ClassId, ClassId, ClassId, ClassId) {
        let mut db = Database::default();
        let s = db.schema_mut();
        let person = s.create_base_class("Person", &[]).unwrap();
        let student = s.create_base_class("Student", &[person]).unwrap();
        let ta = s.create_base_class("TA", &[student]).unwrap();
        let grad = s.create_base_class("Grad", &[student]).unwrap();
        s.add_local_prop(person, PropertyDef::stored("name", ValueType::Str, Value::Null), None)
            .unwrap();
        (db, person, student, ta, grad)
    }

    #[test]
    fn edges_are_transitive_reduction_of_selection() {
        let (db, person, student, ta, _) = setup();
        let classes = BTreeSet::from([person, student, ta]);
        let edges = generate_edges(&db, &classes).unwrap();
        assert!(edges.contains(&(person, student)));
        assert!(edges.contains(&(student, ta)));
        assert!(!edges.contains(&(person, ta)), "transitive edge reduced");
    }

    #[test]
    fn skipping_a_class_bridges_the_edge() {
        let (db, person, _, ta, _) = setup();
        let classes = BTreeSet::from([person, ta]);
        let edges = generate_edges(&db, &classes).unwrap();
        assert_eq!(edges, vec![(person, ta)]);
    }

    #[test]
    fn view_navigation_and_roots() {
        let (db, person, student, ta, grad) = setup();
        let classes = BTreeSet::from([person, student, ta, grad]);
        let v = build_view(&db, ViewId(0), "VS1", 1, classes, BTreeMap::new()).unwrap();
        assert_eq!(v.roots(), vec![person]);
        let mut subs = v.subs_in_view(student);
        subs.sort();
        assert_eq!(subs, vec![ta, grad]);
        assert!(v.is_sub_in_view(ta, person));
        assert!(!v.is_sub_in_view(person, ta));
        assert!(!v.is_sub_in_view(grad, ta));
    }

    #[test]
    fn renames_resolve_and_shadow() {
        let (mut db, person, student, _, _) = setup();
        // Student' virtual class renamed back to Student in the view.
        let sp = define_vc(
            &mut db,
            "Student'",
            &Query::refine(
                Query::class(student),
                vec![PropertyDef::stored("register", ValueType::Bool, Value::Bool(false))],
            ),
        )
        .unwrap();
        classify(&mut db, sp).unwrap();
        let classes = BTreeSet::from([person, sp]);
        let renames = BTreeMap::from([(sp, "Student".to_string())]);
        let v = build_view(&db, ViewId(0), "VS2", 2, classes, renames).unwrap();
        assert_eq!(v.lookup(&db, "Student").unwrap(), sp, "rename resolves to the primed class");
        assert_eq!(v.local_name(&db, sp).unwrap(), "Student");
        assert_eq!(v.lookup(&db, "Person").unwrap(), person);
        assert!(v.lookup(&db, "Student'").is_err(), "global name hidden inside the view");
    }

    #[test]
    fn rename_collisions_are_rejected() {
        let (db, person, student, _, _) = setup();
        let classes = BTreeSet::from([person, student]);
        let renames = BTreeMap::from([(student, "Person".to_string())]);
        assert!(build_view(&db, ViewId(0), "V", 1, classes, renames).is_err());
    }

    #[test]
    fn render_shows_renames() {
        let (mut db, person, student, _, _) = setup();
        let sp = define_vc(&mut db, "Student'", &Query::hide(Query::class(student), &["name"]))
            .unwrap();
        classify(&mut db, sp).unwrap();
        let classes = BTreeSet::from([person, sp]);
        let renames = BTreeMap::from([(sp, "Student".to_string())]);
        let v = build_view(&db, ViewId(3), "VS2", 2, classes, renames).unwrap();
        let text = v.render(&db);
        assert!(text.contains("Student (= Student')"), "render was:\n{text}");
    }
}

#[cfg(test)]
mod typed_render_tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};
    use tse_object_model::{Database, PropertyDef, Value, ValueType};

    #[test]
    fn typed_render_lists_properties_and_flags_ambiguity() {
        let mut db = Database::default();
        let a = db.schema_mut().create_base_class("A", &[]).unwrap();
        let b = db.schema_mut().create_base_class("B", &[]).unwrap();
        let c = db.schema_mut().create_base_class("C", &[a, b]).unwrap();
        db.schema_mut()
            .add_local_prop(a, PropertyDef::stored("x", ValueType::Int, Value::Int(0)), None)
            .unwrap();
        db.schema_mut()
            .add_local_prop(b, PropertyDef::stored("x", ValueType::Str, Value::Null), None)
            .unwrap();
        db.schema_mut()
            .add_local_prop(c, PropertyDef::stored("y", ValueType::Int, Value::Int(0)), None)
            .unwrap();
        let v = build_view(
            &db,
            ViewId(0),
            "V",
            1,
            BTreeSet::from([a, b, c]),
            BTreeMap::new(),
        )
        .unwrap();
        let text = v.render_with_types(&db);
        assert!(text.contains("C (x(!), y)"), "ambiguous x flagged: {text}");
        assert!(text.contains("A (x)"));
    }
}
