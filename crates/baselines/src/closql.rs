//! CLOSQL-style class versioning with update/backdate functions (Monk &
//! Sommerville, SIGMOD Record '93).
//!
//! Objects are stored in the format of their creation-time class version;
//! an application bound to another version sees them through user-supplied
//! *update* (old→new) / *backdate* (new→old) conversion functions run on
//! every access. Sharing works, but the user writes two functions per
//! attribute change and pays conversion cost per access.

use std::collections::BTreeMap;

use tse_object_model::{ModelError, ModelResult, Value};
use tse_storage::Payload;

use crate::common::{EvolvingSystem, ObjId, VersionId};

#[derive(Debug, Clone)]
struct ClosqlObject {
    version: VersionId,
    values: BTreeMap<String, Value>,
}

/// The CLOSQL emulation.
#[derive(Debug, Default)]
pub struct Closql {
    versions: Vec<Vec<String>>,
    /// Per added attribute: the value its update function materializes.
    update_fns: BTreeMap<String, Value>,
    objects: Vec<ClosqlObject>,
    conversions: std::cell::Cell<usize>,
}

impl Closql {
    /// A fresh system with one `name` attribute in version 0.
    pub fn new() -> Self {
        Closql {
            versions: vec![vec!["name".into()]],
            update_fns: BTreeMap::new(),
            objects: Vec::new(),
            conversions: std::cell::Cell::new(0),
        }
    }

    /// Conversion-function invocations so far (access-overhead probe).
    pub fn conversions(&self) -> usize {
        self.conversions.get()
    }

    /// Convert an object's value map into the format `version` expects,
    /// running update/backdate functions as needed.
    fn converted(&self, obj: &ClosqlObject, version: VersionId) -> ModelResult<BTreeMap<String, Value>> {
        let target_attrs = self
            .versions
            .get(version)
            .ok_or_else(|| ModelError::Invalid(format!("closql: no version {version}")))?;
        let mut out = BTreeMap::new();
        for attr in target_attrs {
            if let Some(v) = obj.values.get(attr) {
                out.insert(attr.clone(), v.clone());
            } else {
                // Update function fills attributes the stored format lacks.
                self.conversions.set(self.conversions.get() + 1);
                let v = self.update_fns.get(attr).cloned().ok_or_else(|| {
                    ModelError::Invalid(format!("closql: no update function for {attr:?}"))
                })?;
                out.insert(attr.clone(), v);
            }
        }
        // Backdating (dropping newer attributes) is implicit in taking only
        // target_attrs; count it when the stored format is newer.
        if obj.version > version {
            self.conversions.set(self.conversions.get() + 1);
        }
        Ok(out)
    }
}

impl EvolvingSystem for Closql {
    fn name(&self) -> &'static str {
        "CLOSQL"
    }

    fn current_version(&self) -> VersionId {
        self.versions.len() - 1
    }

    fn add_attribute(&mut self, attr: &str, default: Value) -> ModelResult<VersionId> {
        let mut attrs = self.versions.last().unwrap().clone();
        attrs.push(attr.to_string());
        self.versions.push(attrs);
        // The user writes an update and a backdate function.
        self.update_fns.insert(attr.to_string(), default);
        Ok(self.versions.len() - 1)
    }

    fn create_object(&mut self, version: VersionId, values: &[(&str, Value)]) -> ModelResult<ObjId> {
        let attrs = self
            .versions
            .get(version)
            .ok_or_else(|| ModelError::Invalid(format!("closql: no version {version}")))?;
        let mut map = BTreeMap::new();
        for (name, value) in values {
            if !attrs.contains(&name.to_string()) {
                return Err(ModelError::Invalid(format!("closql: v{version} has no {name:?}")));
            }
            map.insert(name.to_string(), value.clone());
        }
        self.objects.push(ClosqlObject { version, values: map });
        Ok(self.objects.len() - 1)
    }

    fn read(&self, version: VersionId, obj: ObjId, attr: &str) -> ModelResult<Value> {
        let o = self
            .objects
            .get(obj)
            .ok_or_else(|| ModelError::Invalid(format!("closql: no object {obj}")))?;
        let view = self.converted(o, version)?;
        view.get(attr)
            .cloned()
            .ok_or_else(|| ModelError::Invalid(format!("closql: v{version} has no {attr:?}")))
    }

    fn write(
        &mut self,
        version: VersionId,
        obj: ObjId,
        attr: &str,
        value: Value,
    ) -> ModelResult<()> {
        let attrs = self
            .versions
            .get(version)
            .ok_or_else(|| ModelError::Invalid(format!("closql: no version {version}")))?;
        if !attrs.contains(&attr.to_string()) {
            return Err(ModelError::Invalid(format!("closql: v{version} has no {attr:?}")));
        }
        let o = self
            .objects
            .get_mut(obj)
            .ok_or_else(|| ModelError::Invalid(format!("closql: no object {obj}")))?;
        // Writes convert into the *stored* format: attributes the stored
        // format lacks are materialized into it (the stored format migrates
        // lazily under write pressure).
        self.conversions.set(self.conversions.get() + 1);
        o.values.insert(attr.to_string(), value);
        Ok(())
    }

    fn storage_bytes(&self) -> usize {
        self.objects
            .iter()
            .map(|o| 16 + o.values.values().map(|v| v.byte_size()).sum::<usize>())
            .sum()
    }

    fn user_artifacts(&self) -> usize {
        self.update_fns.len() * 2 // update + backdate per change
    }

    fn flexible_composition(&self) -> bool {
        true
    }

    fn subschema_evolution(&self) -> bool {
        false
    }

    fn views_integrated(&self) -> bool {
        false
    }

    fn supports_merging(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::probe_sharing;

    #[test]
    fn conversion_runs_per_cross_version_access() {
        let mut c = Closql::new();
        let v1 = c.current_version();
        let o = c.create_object(v1, &[("name", Value::Str("x".into()))]).unwrap();
        let v2 = c.add_attribute("extra", Value::Int(3)).unwrap();
        assert_eq!(c.conversions(), 0);
        assert_eq!(c.read(v2, o, "extra").unwrap(), Value::Int(3));
        let after_one = c.conversions();
        assert!(after_one >= 1);
        let _ = c.read(v2, o, "extra").unwrap();
        assert!(c.conversions() > after_one, "conversion cost is paid per access");
    }

    #[test]
    fn sharing_probe_passes_with_two_artifacts_per_change() {
        let mut c = Closql::new();
        let probe = probe_sharing(&mut c).unwrap();
        assert!(probe.shares());
        assert_eq!(c.user_artifacts(), 2);
    }

    #[test]
    fn backdate_hides_newer_attributes() {
        let mut c = Closql::new();
        let v1 = c.current_version();
        let v2 = c.add_attribute("extra", Value::Int(0)).unwrap();
        let o = c.create_object(v2, &[("name", Value::Str("n".into())), ("extra", Value::Int(9))]).unwrap();
        assert!(c.read(v1, o, "extra").is_err());
        assert_eq!(c.read(v1, o, "name").unwrap(), Value::Str("n".into()));
    }
}
