//! # tse-baselines — comparator schema-evolution systems
//!
//! Compact emulations of the five systems the paper's Table 2 compares TSE
//! against (Encore, Orion, Goose, CLOSQL, Rose), plus an adapter exposing
//! TSE itself through the same probe interface. Each emulation implements
//! the behaviour the paper attributes to the system — not the whole system —
//! so every Table 2 cell is decided by *running* a probe scenario.

#![warn(missing_docs)]

pub mod closql;
pub mod common;
pub mod encore;
pub mod goose;
pub mod orion;
pub mod rose;
pub mod tse_adapter;

pub use closql::Closql;
pub use common::{probe_sharing, probe_storage_growth, EvolvingSystem, ObjId, SharingProbe, VersionId};
pub use encore::Encore;
pub use goose::Goose;
pub use orion::Orion;
pub use rose::Rose;
pub use tse_adapter::TseAdapter;
