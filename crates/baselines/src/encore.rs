//! Encore-style type versioning with exception handlers (Skarra & Zdonik,
//! OOPSLA'86).
//!
//! Each type has versions; objects are bound to the version they were
//! created under. Programs running against other versions reach objects
//! through *user-written exception handlers* that fill in properties the
//! object's own type version does not carry — labor-intensive, but the
//! objects are shared.

use std::collections::BTreeMap;

use tse_object_model::{ModelError, ModelResult, Value};
use tse_storage::Payload;

use crate::common::{EvolvingSystem, ObjId, VersionId};

/// One stored object: bound to its creating type version.
#[derive(Debug, Clone)]
struct EncoreObject {
    version: VersionId,
    values: BTreeMap<String, Value>,
}

/// The Encore emulation.
#[derive(Debug, Default)]
pub struct Encore {
    /// Attribute sets per type version.
    versions: Vec<Vec<String>>,
    /// User-registered exception handlers: (attr) → default produced when an
    /// older object lacks the attribute.
    handlers: BTreeMap<String, Value>,
    objects: Vec<EncoreObject>,
    handler_invocations: std::cell::Cell<usize>,
}

impl Encore {
    /// A fresh system with one `name` attribute in version 0.
    pub fn new() -> Self {
        Encore {
            versions: vec![vec!["name".into()]],
            handlers: BTreeMap::new(),
            objects: Vec::new(),
            handler_invocations: std::cell::Cell::new(0),
        }
    }

    /// How many times exception handlers ran (access-overhead probe).
    pub fn handler_invocations(&self) -> usize {
        self.handler_invocations.get()
    }

    fn object(&self, obj: ObjId) -> ModelResult<&EncoreObject> {
        self.objects.get(obj).ok_or_else(|| ModelError::Invalid(format!("encore: no object {obj}")))
    }
}

impl EvolvingSystem for Encore {
    fn name(&self) -> &'static str {
        "Encore"
    }

    fn current_version(&self) -> VersionId {
        self.versions.len() - 1
    }

    fn add_attribute(&mut self, attr: &str, default: Value) -> ModelResult<VersionId> {
        let mut attrs = self.versions.last().unwrap().clone();
        attrs.push(attr.to_string());
        self.versions.push(attrs);
        // The user must supply an exception handler so that programs against
        // the new version can read old instances.
        self.handlers.insert(attr.to_string(), default);
        Ok(self.versions.len() - 1)
    }

    fn create_object(&mut self, version: VersionId, values: &[(&str, Value)]) -> ModelResult<ObjId> {
        let attrs = self
            .versions
            .get(version)
            .ok_or_else(|| ModelError::Invalid(format!("encore: no version {version}")))?;
        let mut map = BTreeMap::new();
        for (name, value) in values {
            if !attrs.contains(&name.to_string()) {
                return Err(ModelError::Invalid(format!("encore: v{version} has no {name:?}")));
            }
            map.insert(name.to_string(), value.clone());
        }
        self.objects.push(EncoreObject { version, values: map });
        Ok(self.objects.len() - 1)
    }

    fn read(&self, version: VersionId, obj: ObjId, attr: &str) -> ModelResult<Value> {
        let attrs = self
            .versions
            .get(version)
            .ok_or_else(|| ModelError::Invalid(format!("encore: no version {version}")))?;
        if !attrs.contains(&attr.to_string()) {
            return Err(ModelError::Invalid(format!("encore: v{version} has no {attr:?}")));
        }
        let o = self.object(obj)?;
        if let Some(v) = o.values.get(attr) {
            return Ok(v.clone());
        }
        // The object's own type version lacks the attribute → exception
        // handler (user-supplied) fills it in.
        let own_attrs = &self.versions[o.version];
        if !own_attrs.contains(&attr.to_string()) {
            self.handler_invocations.set(self.handler_invocations.get() + 1);
            return self.handlers.get(attr).cloned().ok_or_else(|| {
                ModelError::Invalid(format!("encore: no exception handler for {attr:?}"))
            });
        }
        Ok(Value::Null)
    }

    fn write(
        &mut self,
        version: VersionId,
        obj: ObjId,
        attr: &str,
        value: Value,
    ) -> ModelResult<()> {
        let attrs = self
            .versions
            .get(version)
            .ok_or_else(|| ModelError::Invalid(format!("encore: no version {version}")))?;
        if !attrs.contains(&attr.to_string()) {
            return Err(ModelError::Invalid(format!("encore: v{version} has no {attr:?}")));
        }
        let o = self
            .objects
            .get_mut(obj)
            .ok_or_else(|| ModelError::Invalid(format!("encore: no object {obj}")))?;
        // Writing an attribute the object's own version lacks is refused —
        // old instances cannot gain fields.
        if !self.versions[o.version].contains(&attr.to_string()) {
            return Err(ModelError::Invalid(format!(
                "encore: object bound to v{} cannot store {attr:?}",
                o.version
            )));
        }
        o.values.insert(attr.to_string(), value);
        Ok(())
    }

    fn storage_bytes(&self) -> usize {
        self.objects
            .iter()
            .map(|o| 16 + o.values.values().map(|v| v.byte_size()).sum::<usize>())
            .sum()
    }

    fn user_artifacts(&self) -> usize {
        self.handlers.len() // one exception handler per added attribute
    }

    fn flexible_composition(&self) -> bool {
        true // schemas are lattices of type versions.
    }

    fn subschema_evolution(&self) -> bool {
        false
    }

    fn views_integrated(&self) -> bool {
        false
    }

    fn supports_merging(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::probe_sharing;

    #[test]
    fn old_objects_are_shared_via_handlers() {
        let mut e = Encore::new();
        let v1 = e.current_version();
        let o = e.create_object(v1, &[("name", Value::Str("x".into()))]).unwrap();
        let v2 = e.add_attribute("extra", Value::Int(7)).unwrap();
        // Reading the new attribute of an old object runs the handler.
        assert_eq!(e.read(v2, o, "extra").unwrap(), Value::Int(7));
        assert_eq!(e.handler_invocations(), 1);
        // But writing it is refused: the old instance cannot gain the field.
        assert!(e.write(v2, o, "extra", Value::Int(9)).is_err());
    }

    #[test]
    fn sharing_probe_passes_with_user_effort() {
        let mut e = Encore::new();
        let probe = probe_sharing(&mut e).unwrap();
        assert!(probe.shares());
        assert_eq!(e.user_artifacts(), 1, "one handler had to be written");
    }
}
