//! Orion-style schema versioning (Kim & Chou, VLDB'88).
//!
//! "Keeps versions of the whole schema hierarchy ... every instance object
//! of an old version schema can be copied and converted to become an
//! instance of the new version schema. Usually, the old objects are frozen
//! to be non-updatable ... object instances are thus not truly shared among
//! the different schema versions. This approach doesn't allow backwards
//! propagation."

use std::collections::BTreeMap;

use tse_object_model::{ModelError, ModelResult, Value};
use tse_storage::Payload;

use crate::common::{EvolvingSystem, ObjId, VersionId};

/// One schema version: its attribute set and its own *copies* of every
/// object.
#[derive(Debug, Clone, Default)]
struct OrionVersion {
    attrs: Vec<(String, Value)>,
    /// Per-object copy of the values, keyed by logical object id.
    copies: BTreeMap<ObjId, Vec<Value>>,
    /// Copies converted from an older version are frozen.
    frozen: BTreeMap<ObjId, bool>,
}

/// The Orion emulation.
#[derive(Debug, Default)]
pub struct Orion {
    versions: Vec<OrionVersion>,
    next_obj: ObjId,
}

impl Orion {
    /// A fresh system with one `name` attribute in version 0.
    pub fn new() -> Self {
        let mut v = OrionVersion::default();
        v.attrs.push(("name".into(), Value::Null));
        Orion { versions: vec![v], next_obj: 0 }
    }

    fn version(&self, v: VersionId) -> ModelResult<&OrionVersion> {
        self.versions.get(v).ok_or_else(|| ModelError::Invalid(format!("orion: no version {v}")))
    }

    fn attr_index(ver: &OrionVersion, attr: &str) -> ModelResult<usize> {
        ver.attrs
            .iter()
            .position(|(n, _)| n == attr)
            .ok_or_else(|| ModelError::Invalid(format!("orion: no attribute {attr:?}")))
    }
}

impl EvolvingSystem for Orion {
    fn name(&self) -> &'static str {
        "Orion"
    }

    fn current_version(&self) -> VersionId {
        self.versions.len() - 1
    }

    fn add_attribute(&mut self, attr: &str, default: Value) -> ModelResult<VersionId> {
        let old = self.versions.last().unwrap().clone();
        let mut new = OrionVersion {
            attrs: old.attrs.clone(),
            copies: BTreeMap::new(),
            frozen: BTreeMap::new(),
        };
        new.attrs.push((attr.to_string(), default.clone()));
        // Copy + convert every instance; converted copies are frozen.
        for (obj, values) in &old.copies {
            let mut v = values.clone();
            v.push(default.clone());
            new.copies.insert(*obj, v);
            new.frozen.insert(*obj, true);
        }
        self.versions.push(new);
        Ok(self.versions.len() - 1)
    }

    fn create_object(&mut self, version: VersionId, values: &[(&str, Value)]) -> ModelResult<ObjId> {
        self.version(version)?;
        let ver = &mut self.versions[version];
        let mut fields: Vec<Value> = ver.attrs.iter().map(|(_, d)| d.clone()).collect();
        for (name, value) in values {
            let idx = Self::attr_index(ver, name)?;
            fields[idx] = value.clone();
        }
        let obj = self.next_obj;
        self.next_obj += 1;
        ver.copies.insert(obj, fields);
        ver.frozen.insert(obj, false);
        Ok(obj)
    }

    fn read(&self, version: VersionId, obj: ObjId, attr: &str) -> ModelResult<Value> {
        let ver = self.version(version)?;
        let idx = Self::attr_index(ver, attr)?;
        // No sharing: only this version's own copies are visible.
        let fields = ver
            .copies
            .get(&obj)
            .ok_or_else(|| ModelError::Invalid(format!("orion: object {obj} not in version {version}")))?;
        Ok(fields[idx].clone())
    }

    fn write(
        &mut self,
        version: VersionId,
        obj: ObjId,
        attr: &str,
        value: Value,
    ) -> ModelResult<()> {
        self.version(version)?;
        let ver = &mut self.versions[version];
        let idx = Self::attr_index(ver, attr)?;
        if *ver.frozen.get(&obj).unwrap_or(&true) {
            return Err(ModelError::Invalid(
                "orion: converted copies are frozen (non-updatable)".into(),
            ));
        }
        let fields = ver
            .copies
            .get_mut(&obj)
            .ok_or_else(|| ModelError::Invalid(format!("orion: object {obj} not in version {version}")))?;
        fields[idx] = value;
        Ok(())
    }

    fn storage_bytes(&self) -> usize {
        self.versions
            .iter()
            .map(|v| {
                v.copies
                    .values()
                    .map(|fields| 16 + fields.iter().map(|f| f.byte_size()).sum::<usize>())
                    .sum::<usize>()
            })
            .sum()
    }

    fn user_artifacts(&self) -> usize {
        0 // "nothing particular" — the system copies automatically.
    }

    fn flexible_composition(&self) -> bool {
        false // whole-schema versions only.
    }

    fn subschema_evolution(&self) -> bool {
        false // a change snapshots (copies) the entire database.
    }

    fn views_integrated(&self) -> bool {
        false
    }

    fn supports_merging(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{probe_sharing, probe_storage_growth};

    #[test]
    fn copies_are_per_version_and_frozen() {
        let mut o = Orion::new();
        let v1 = o.current_version();
        let obj = o.create_object(v1, &[("name", Value::Str("x".into()))]).unwrap();
        let v2 = o.add_attribute("extra", Value::Int(0)).unwrap();
        // Copy visible in v2, but frozen.
        assert_eq!(o.read(v2, obj, "name").unwrap(), Value::Str("x".into()));
        assert!(o.write(v2, obj, "name", Value::Str("y".into())).is_err());
        // Write through v1 (original copy) does not reach v2's copy.
        o.write(v1, obj, "name", Value::Str("z".into())).unwrap();
        assert_eq!(o.read(v2, obj, "name").unwrap(), Value::Str("x".into()));
    }

    #[test]
    fn no_backward_propagation() {
        let mut o = Orion::new();
        let probe = probe_sharing(&mut o).unwrap();
        assert!(!probe.shares(), "Orion must fail the sharing probe");
        assert!(!probe.new_object_visible_in_old);
        assert!(!probe.write_propagates_backwards);
    }

    #[test]
    fn storage_grows_linearly_with_versions() {
        let mut o = Orion::new();
        let (before, after) = probe_storage_growth(&mut o, 100, 8).unwrap();
        assert!(after > before * 8, "each version copies all objects: {before} -> {after}");
    }
}
