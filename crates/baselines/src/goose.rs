//! Goose-style per-class versioning (Kim; Morsi/Navathe/Kim).
//!
//! Versions individual classes instead of whole schemas; a complete schema
//! is *composed* by selecting a version of each class. Flexible — "this
//! gives flexibility to the user in constructing many possible schemas" —
//! but the user must keep track of class versions for each valid schema and
//! pay a consistency check.

use std::collections::BTreeMap;

use tse_object_model::{ModelError, ModelResult, Value};
use tse_storage::Payload;

use crate::common::{EvolvingSystem, ObjId, VersionId};

/// The Goose emulation (single evolving class, many class versions, schemas
/// as version selections).
#[derive(Debug, Default)]
pub struct Goose {
    /// Class versions: each an attribute list.
    class_versions: Vec<Vec<String>>,
    /// Registered schemas: each picks one class version. The user maintains
    /// this registry (the "keep track of class versions for each schema"
    /// effort).
    schemas: Vec<VersionId>,
    objects: Vec<BTreeMap<String, Value>>,
    consistency_checks: std::cell::Cell<usize>,
}

impl Goose {
    /// A fresh system with one `name` attribute.
    pub fn new() -> Self {
        Goose {
            class_versions: vec![vec!["name".into()]],
            schemas: vec![0],
            objects: Vec::new(),
            consistency_checks: std::cell::Cell::new(0),
        }
    }

    /// Compose a schema from an explicit class-version selection (the
    /// flexibility Goose offers). Runs (and counts) a consistency check.
    pub fn compose_schema(&mut self, class_version: VersionId) -> ModelResult<VersionId> {
        self.consistency_checks.set(self.consistency_checks.get() + 1);
        if class_version >= self.class_versions.len() {
            return Err(ModelError::Invalid(format!("goose: no class version {class_version}")));
        }
        self.schemas.push(class_version);
        Ok(self.schemas.len() - 1)
    }

    /// Consistency checks run so far.
    pub fn consistency_checks(&self) -> usize {
        self.consistency_checks.get()
    }

    fn attrs_of(&self, schema: VersionId) -> ModelResult<&Vec<String>> {
        let cv = *self
            .schemas
            .get(schema)
            .ok_or_else(|| ModelError::Invalid(format!("goose: no schema {schema}")))?;
        Ok(&self.class_versions[cv])
    }
}

impl EvolvingSystem for Goose {
    fn name(&self) -> &'static str {
        "Goose"
    }

    fn current_version(&self) -> VersionId {
        self.schemas.len() - 1
    }

    fn add_attribute(&mut self, attr: &str, default: Value) -> ModelResult<VersionId> {
        let _ = default;
        let current_cv = self.schemas[self.current_version()];
        let mut attrs = self.class_versions[current_cv].clone();
        attrs.push(attr.to_string());
        self.class_versions.push(attrs);
        self.compose_schema(self.class_versions.len() - 1)
    }

    fn create_object(&mut self, version: VersionId, values: &[(&str, Value)]) -> ModelResult<ObjId> {
        let attrs = self.attrs_of(version)?.clone();
        let mut map = BTreeMap::new();
        for (name, value) in values {
            if !attrs.contains(&name.to_string()) {
                return Err(ModelError::Invalid(format!("goose: schema {version} has no {name:?}")));
            }
            map.insert(name.to_string(), value.clone());
        }
        self.objects.push(map);
        Ok(self.objects.len() - 1)
    }

    fn read(&self, version: VersionId, obj: ObjId, attr: &str) -> ModelResult<Value> {
        let attrs = self.attrs_of(version)?;
        if !attrs.contains(&attr.to_string()) {
            return Err(ModelError::Invalid(format!("goose: schema {version} has no {attr:?}")));
        }
        let o = self
            .objects
            .get(obj)
            .ok_or_else(|| ModelError::Invalid(format!("goose: no object {obj}")))?;
        Ok(o.get(attr).cloned().unwrap_or(Value::Null))
    }

    fn write(
        &mut self,
        version: VersionId,
        obj: ObjId,
        attr: &str,
        value: Value,
    ) -> ModelResult<()> {
        let attrs = self.attrs_of(version)?.clone();
        if !attrs.contains(&attr.to_string()) {
            return Err(ModelError::Invalid(format!("goose: schema {version} has no {attr:?}")));
        }
        let o = self
            .objects
            .get_mut(obj)
            .ok_or_else(|| ModelError::Invalid(format!("goose: no object {obj}")))?;
        o.insert(attr.to_string(), value);
        Ok(())
    }

    fn storage_bytes(&self) -> usize {
        self.objects
            .iter()
            .map(|o| 16 + o.values().map(|v| v.byte_size()).sum::<usize>())
            .sum()
    }

    fn user_artifacts(&self) -> usize {
        // The user maintains the class-version → schema registry: one entry
        // per schema beyond the first.
        self.schemas.len() - 1
    }

    fn flexible_composition(&self) -> bool {
        true
    }

    fn subschema_evolution(&self) -> bool {
        false
    }

    fn views_integrated(&self) -> bool {
        false
    }

    fn supports_merging(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::probe_sharing;

    #[test]
    fn sharing_works_but_requires_registry_upkeep() {
        let mut g = Goose::new();
        let probe = probe_sharing(&mut g).unwrap();
        assert!(probe.shares());
        assert!(g.user_artifacts() >= 1);
    }

    #[test]
    fn composition_is_flexible_but_checked() {
        let mut g = Goose::new();
        g.add_attribute("a", Value::Int(0)).unwrap();
        g.add_attribute("b", Value::Int(0)).unwrap();
        let checks_before = g.consistency_checks();
        // Compose a schema over the *middle* class version.
        let s = g.compose_schema(1).unwrap();
        assert!(g.consistency_checks() > checks_before);
        let o = g.create_object(s, &[("a", Value::Int(1))]).unwrap();
        assert_eq!(g.read(s, o, "a").unwrap(), Value::Int(1));
        assert!(g.read(s, o, "b").is_err(), "schema over v1 does not see b");
        assert!(g.compose_schema(99).is_err());
    }
}
