//! Rose-style automatic type-mismatch resolution (Mehta, Spooner &
//! Hardwick).
//!
//! Table 2 characterizes Rose as sharing objects with "nothing particular"
//! required of the user: the persistent object system resolves type
//! mismatches between stored instances and the schema an engineering tool
//! expects, generating coercions automatically. We emulate it as CLOSQL
//! with system-generated (zero-artifact) conversions.

use std::collections::BTreeMap;

use tse_object_model::{ModelError, ModelResult, Value};
use tse_storage::Payload;

use crate::common::{EvolvingSystem, ObjId, VersionId};

#[derive(Debug, Clone)]
struct RoseObject {
    values: BTreeMap<String, Value>,
}

/// The Rose emulation.
#[derive(Debug, Default)]
pub struct Rose {
    versions: Vec<Vec<(String, Value)>>,
    objects: Vec<RoseObject>,
    auto_resolutions: std::cell::Cell<usize>,
}

impl Rose {
    /// A fresh system with one `name` attribute.
    pub fn new() -> Self {
        Rose {
            versions: vec![vec![("name".into(), Value::Null)]],
            objects: Vec::new(),
            auto_resolutions: std::cell::Cell::new(0),
        }
    }

    /// Automatic mismatch resolutions performed (system-side cost).
    pub fn auto_resolutions(&self) -> usize {
        self.auto_resolutions.get()
    }

    fn attrs_of(&self, v: VersionId) -> ModelResult<&Vec<(String, Value)>> {
        self.versions.get(v).ok_or_else(|| ModelError::Invalid(format!("rose: no version {v}")))
    }
}

impl EvolvingSystem for Rose {
    fn name(&self) -> &'static str {
        "Rose"
    }

    fn current_version(&self) -> VersionId {
        self.versions.len() - 1
    }

    fn add_attribute(&mut self, attr: &str, default: Value) -> ModelResult<VersionId> {
        let mut attrs = self.versions.last().unwrap().clone();
        attrs.push((attr.to_string(), default));
        self.versions.push(attrs);
        Ok(self.versions.len() - 1)
    }

    fn create_object(&mut self, version: VersionId, values: &[(&str, Value)]) -> ModelResult<ObjId> {
        let attrs = self.attrs_of(version)?.clone();
        let mut map = BTreeMap::new();
        for (name, value) in values {
            if !attrs.iter().any(|(n, _)| n == name) {
                return Err(ModelError::Invalid(format!("rose: v{version} has no {name:?}")));
            }
            map.insert(name.to_string(), value.clone());
        }
        self.objects.push(RoseObject { values: map });
        Ok(self.objects.len() - 1)
    }

    fn read(&self, version: VersionId, obj: ObjId, attr: &str) -> ModelResult<Value> {
        let attrs = self.attrs_of(version)?;
        let (_, default) = attrs
            .iter()
            .find(|(n, _)| n == attr)
            .ok_or_else(|| ModelError::Invalid(format!("rose: v{version} has no {attr:?}")))?;
        let o = self
            .objects
            .get(obj)
            .ok_or_else(|| ModelError::Invalid(format!("rose: no object {obj}")))?;
        match o.values.get(attr) {
            Some(v) => Ok(v.clone()),
            None => {
                // Automatic resolution: no handler required of the user.
                self.auto_resolutions.set(self.auto_resolutions.get() + 1);
                Ok(default.clone())
            }
        }
    }

    fn write(
        &mut self,
        version: VersionId,
        obj: ObjId,
        attr: &str,
        value: Value,
    ) -> ModelResult<()> {
        let attrs = self.attrs_of(version)?.clone();
        if !attrs.iter().any(|(n, _)| n == attr) {
            return Err(ModelError::Invalid(format!("rose: v{version} has no {attr:?}")));
        }
        let o = self
            .objects
            .get_mut(obj)
            .ok_or_else(|| ModelError::Invalid(format!("rose: no object {obj}")))?;
        o.values.insert(attr.to_string(), value);
        Ok(())
    }

    fn storage_bytes(&self) -> usize {
        self.objects
            .iter()
            .map(|o| 16 + o.values.values().map(|v| v.byte_size()).sum::<usize>())
            .sum()
    }

    fn user_artifacts(&self) -> usize {
        0 // "nothing particular".
    }

    fn flexible_composition(&self) -> bool {
        true
    }

    fn subschema_evolution(&self) -> bool {
        false
    }

    fn views_integrated(&self) -> bool {
        false
    }

    fn supports_merging(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::probe_sharing;

    #[test]
    fn sharing_with_zero_user_effort() {
        let mut r = Rose::new();
        let probe = probe_sharing(&mut r).unwrap();
        assert!(probe.shares());
        assert_eq!(r.user_artifacts(), 0);
    }

    #[test]
    fn mismatches_are_resolved_automatically() {
        let mut r = Rose::new();
        let v1 = r.current_version();
        let o = r.create_object(v1, &[("name", Value::Str("x".into()))]).unwrap();
        let v2 = r.add_attribute("extra", Value::Int(5)).unwrap();
        // Old object lacks `extra`; the system coerces without a handler.
        assert_eq!(r.read(v2, o, "extra").unwrap(), Value::Int(5));
        assert!(r.auto_resolutions() >= 1, "the system resolved mismatches itself");
        assert_eq!(r.user_artifacts(), 0);
    }
}
