//! A common probe interface over the baseline schema-evolution systems.
//!
//! Table 2 of the paper compares TSE against Encore, Orion, Goose, CLOSQL
//! and Rose along six capability axes. The baselines here are deliberately
//! compact emulations — enough machinery that each table cell is decided by
//! *running a probe scenario*, not by assertion.

use tse_object_model::{ModelResult, Value};

/// A schema version handle within a baseline system.
pub type VersionId = usize;

/// An object handle within a baseline system.
pub type ObjId = usize;

/// The operations every baseline exposes for the probe scenarios. The model
/// is one flat class (`Item`) whose attribute set evolves — the minimum
/// needed to observe the Table 2 behaviours.
pub trait EvolvingSystem {
    /// System name as it appears in Table 2.
    fn name(&self) -> &'static str;

    /// Current schema version.
    fn current_version(&self) -> VersionId;

    /// Create a new schema version adding attribute `attr` (defaulting to
    /// `default`) — the canonical capacity-augmenting change.
    fn add_attribute(&mut self, attr: &str, default: Value) -> ModelResult<VersionId>;

    /// Create an object *under a specific version* with the attribute values
    /// known to that version.
    fn create_object(&mut self, version: VersionId, values: &[(&str, Value)]) -> ModelResult<ObjId>;

    /// Read an attribute of an object *through* a version's schema.
    fn read(&self, version: VersionId, obj: ObjId, attr: &str) -> ModelResult<Value>;

    /// Write an attribute of an object through a version's schema.
    fn write(
        &mut self,
        version: VersionId,
        obj: ObjId,
        attr: &str,
        value: Value,
    ) -> ModelResult<()>;

    /// Bytes of storage attributable to objects + version bookkeeping
    /// (storage-growth probe).
    fn storage_bytes(&self) -> usize;

    /// Number of user-supplied artifacts (exception handlers, conversion
    /// functions, version maps) the evolution required so far — the
    /// "effort required by user" column.
    fn user_artifacts(&self) -> usize;

    /// Can the user compose a schema from arbitrary per-class versions?
    fn flexible_composition(&self) -> bool;

    /// Does a change touch only the affected subschema (vs. global copies)?
    fn subschema_evolution(&self) -> bool;

    /// Are views integrated with schema change?
    fn views_integrated(&self) -> bool;

    /// Is version merging supported?
    fn supports_merging(&self) -> bool;
}

/// Outcome of the sharing probe: can data flow across versions?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharingProbe {
    /// New-version reader sees an object created under the old version.
    pub old_object_visible_in_new: bool,
    /// Old-version reader sees an object created under the new version.
    pub new_object_visible_in_old: bool,
    /// A write through the new version is observed through the old one
    /// (the paper's "backward propagation" criticism of Orion).
    pub write_propagates_backwards: bool,
}

impl SharingProbe {
    /// The Table 2 "sharing" verdict: full bidirectional sharing.
    pub fn shares(&self) -> bool {
        self.old_object_visible_in_new
            && self.new_object_visible_in_old
            && self.write_propagates_backwards
    }
}

/// Run the sharing probe against any baseline.
pub fn probe_sharing<S: EvolvingSystem>(sys: &mut S) -> ModelResult<SharingProbe> {
    let v1 = sys.current_version();
    let old_obj = sys.create_object(v1, &[("name", Value::Str("old".into()))])?;
    let v2 = sys.add_attribute("extra", Value::Int(0))?;
    let new_obj = sys.create_object(v2, &[("name", Value::Str("new".into()))])?;

    let old_object_visible_in_new = sys.read(v2, old_obj, "name").is_ok();
    let new_object_visible_in_old = sys.read(v1, new_obj, "name").is_ok();
    let write_propagates_backwards = match sys.write(v2, old_obj, "name", Value::Str("w".into())) {
        Ok(()) => matches!(sys.read(v1, old_obj, "name"), Ok(Value::Str(s)) if s == "w"),
        Err(_) => false,
    };
    Ok(SharingProbe {
        old_object_visible_in_new,
        new_object_visible_in_old,
        write_propagates_backwards,
    })
}

/// Storage growth across `n` versions of a population of `objects` objects:
/// returns bytes after setup and after the versions were added.
pub fn probe_storage_growth<S: EvolvingSystem>(
    sys: &mut S,
    objects: usize,
    versions: usize,
) -> ModelResult<(usize, usize)> {
    let v1 = sys.current_version();
    for i in 0..objects {
        sys.create_object(v1, &[("name", Value::Str(format!("o{i}")))])?;
    }
    let before = sys.storage_bytes();
    for k in 0..versions {
        sys.add_attribute(&format!("a{k}"), Value::Int(0))?;
    }
    Ok((before, sys.storage_bytes()))
}
