//! Adapter exposing the TSE system through the common probe interface, so
//! the Table 2 binary and the benchmark harness compare all six systems on
//! identical scenarios.

use tse_core::{SchemaChange, TseSystem};
use tse_object_model::{ModelError, ModelResult, Oid, PropertyDef, Value, ValueType};
use tse_view::ViewId;

use crate::common::{EvolvingSystem, ObjId, VersionId};

/// TSE wrapped for the baseline probes: one `Item` class in one view family;
/// every `add_attribute` is a transparent view evolution, so "versions" are
/// view versions over shared objects.
pub struct TseAdapter {
    tse: TseSystem,
    versions: Vec<ViewId>,
    oids: Vec<Oid>,
}

impl Default for TseAdapter {
    fn default() -> Self {
        Self::new()
    }
}

impl TseAdapter {
    /// A fresh system with one `name` attribute in version 0.
    pub fn new() -> Self {
        let mut tse = TseSystem::new();
        tse.define_base_class(
            "Item",
            &[],
            vec![PropertyDef::stored("name", ValueType::Str, Value::Null)],
        )
        .expect("base schema");
        let v0 = tse.create_view("W", &["Item"]).expect("view");
        TseAdapter { tse, versions: vec![v0], oids: Vec::new() }
    }

    /// Access the wrapped system (for extra assertions in tests).
    pub fn system(&self) -> &TseSystem {
        &self.tse
    }

    fn oid(&self, obj: ObjId) -> ModelResult<Oid> {
        self.oids
            .get(obj)
            .copied()
            .ok_or_else(|| ModelError::Invalid(format!("tse-adapter: no object {obj}")))
    }
}

impl EvolvingSystem for TseAdapter {
    fn name(&self) -> &'static str {
        "TSE"
    }

    fn current_version(&self) -> VersionId {
        self.versions.len() - 1
    }

    fn add_attribute(&mut self, attr: &str, default: Value) -> ModelResult<VersionId> {
        let vtype = match &default {
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Bool(_) => ValueType::Bool,
            Value::Str(_) | Value::Null => ValueType::Str,
            Value::Ref(_) => ValueType::Any,
            Value::List(_) => ValueType::List(Box::new(ValueType::Any)),
        };
        let report = self.tse.evolve(
            "W",
            &SchemaChange::AddAttribute {
                class: "Item".into(),
                name: attr.to_string(),
                vtype,
                default,
                required: false,
            },
        )?;
        self.versions.push(report.view);
        Ok(self.versions.len() - 1)
    }

    fn create_object(&mut self, version: VersionId, values: &[(&str, Value)]) -> ModelResult<ObjId> {
        let view = *self
            .versions
            .get(version)
            .ok_or_else(|| ModelError::Invalid(format!("tse-adapter: no version {version}")))?;
        let oid = self.tse.create(view, "Item", values)?;
        self.oids.push(oid);
        Ok(self.oids.len() - 1)
    }

    fn read(&self, version: VersionId, obj: ObjId, attr: &str) -> ModelResult<Value> {
        let view = *self
            .versions
            .get(version)
            .ok_or_else(|| ModelError::Invalid(format!("tse-adapter: no version {version}")))?;
        self.tse.get(view, self.oid(obj)?, "Item", attr)
    }

    fn write(
        &mut self,
        version: VersionId,
        obj: ObjId,
        attr: &str,
        value: Value,
    ) -> ModelResult<()> {
        let view = *self
            .versions
            .get(version)
            .ok_or_else(|| ModelError::Invalid(format!("tse-adapter: no version {version}")))?;
        let oid = self.oid(obj)?;
        self.tse.set(view, oid, "Item", &[(attr, value)])
    }

    fn storage_bytes(&self) -> usize {
        self.tse.db().store().total_bytes()
            + self.tse.db().slicing_stats().managerial_bytes as usize
    }

    fn user_artifacts(&self) -> usize {
        0 // "nothing particular": the system computes the new view itself.
    }

    fn flexible_composition(&self) -> bool {
        // Views are selections over the one global schema; compositions
        // beyond the registered versions require defining a new view, so by
        // the paper's own Table 2 this cell is "no".
        false
    }

    fn subschema_evolution(&self) -> bool {
        true
    }

    fn views_integrated(&self) -> bool {
        true
    }

    fn supports_merging(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{probe_sharing, probe_storage_growth};

    #[test]
    fn tse_passes_the_sharing_probe_with_zero_artifacts() {
        let mut t = TseAdapter::new();
        let probe = probe_sharing(&mut t).unwrap();
        assert!(probe.old_object_visible_in_new);
        assert!(probe.new_object_visible_in_old);
        assert!(probe.write_propagates_backwards);
        assert_eq!(t.user_artifacts(), 0);
    }

    #[test]
    fn tse_storage_stays_flat_across_versions() {
        let mut t = TseAdapter::new();
        let (before, after) = probe_storage_growth(&mut t, 100, 8).unwrap();
        // Objects are shared; versions add only schema metadata (and lazily
        // created slices when values are written). Far below Orion's 8×.
        assert!(after < before * 2, "{before} -> {after}");
    }
}
