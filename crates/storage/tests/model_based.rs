//! Model-based property tests: the paged store must behave exactly like a
//! plain in-memory map of records under arbitrary operation sequences, with
//! snapshots and transactions thrown in.

use proptest::prelude::*;
use std::collections::HashMap;

use tse_storage::{decode_store, encode_store, RecordId, SimplePayload, SliceStore, StoreConfig};

#[derive(Debug, Clone)]
enum Op {
    Insert(usize, i64),
    WriteField(usize, usize, i64),
    AppendField(usize, i64),
    Free(usize),
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..4, any::<i64>()).prop_map(|(s, v)| Op::Insert(s, v)),
        (0usize..64, 0usize..4, any::<i64>()).prop_map(|(r, f, v)| Op::WriteField(r, f, v)),
        (0usize..64, any::<i64>()).prop_map(|(r, v)| Op::AppendField(r, v)),
        (0usize..64).prop_map(Op::Free),
        Just(Op::Snapshot),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn store_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        page_size in 64usize..512,
    ) {
        let mut store: SliceStore<SimplePayload> =
            SliceStore::new(StoreConfig { page_size, buffer_pages: 4, ..StoreConfig::default() });
        let mut segs = Vec::new();
        for i in 0..4 {
            segs.push(store.create_segment(&format!("s{i}")));
        }
        let mut model: HashMap<RecordId, Vec<i64>> = HashMap::new();
        let mut live: Vec<RecordId> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(s, v) => {
                    let rec = store
                        .insert(segs[s % segs.len()], vec![SimplePayload::Int(v)])
                        .unwrap();
                    model.insert(rec, vec![v]);
                    live.push(rec);
                }
                Op::WriteField(r, f, v) => {
                    if live.is_empty() {
                        continue;
                    }
                    let rec = live[r % live.len()];
                    let fields = model.get_mut(&rec).unwrap();
                    let idx = f % (fields.len() + 1); // may be out of bounds
                    let res = store.write_field(rec, idx, SimplePayload::Int(v));
                    if idx < fields.len() {
                        prop_assert!(res.is_ok());
                        fields[idx] = v;
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
                Op::AppendField(r, v) => {
                    if live.is_empty() {
                        continue;
                    }
                    let rec = live[r % live.len()];
                    let idx = store.append_field(rec, SimplePayload::Int(v)).unwrap();
                    let fields = model.get_mut(&rec).unwrap();
                    prop_assert_eq!(idx, fields.len());
                    fields.push(v);
                }
                Op::Free(r) => {
                    if live.is_empty() {
                        continue;
                    }
                    let rec = live.remove(r % live.len());
                    let freed = store.free(rec).unwrap();
                    let expected = model.remove(&rec).unwrap();
                    let expected: Vec<SimplePayload> =
                        expected.into_iter().map(SimplePayload::Int).collect();
                    prop_assert_eq!(freed, expected);
                }
                Op::Snapshot => {
                    let restored: SliceStore<SimplePayload> =
                        decode_store(encode_store(&store)).unwrap();
                    for (rec, fields) in &model {
                        let expected: Vec<SimplePayload> =
                            fields.iter().map(|v| SimplePayload::Int(*v)).collect();
                        prop_assert_eq!(restored.read(*rec).unwrap(), expected);
                    }
                    store = restored;
                }
            }
            // Invariant: every live record reads back its model value.
            for (rec, fields) in &model {
                let expected: Vec<SimplePayload> =
                    fields.iter().map(|v| SimplePayload::Int(*v)).collect();
                prop_assert_eq!(store.read(*rec).unwrap(), expected);
            }
        }
    }

    /// Aborting a transaction restores the exact pre-transaction state, for
    /// arbitrary mutation mixes inside the transaction.
    #[test]
    fn abort_is_a_time_machine(
        before in proptest::collection::vec((0usize..3, any::<i64>()), 1..12),
        inside in proptest::collection::vec(op_strategy(), 1..20),
    ) {
        let store: SliceStore<SimplePayload> = SliceStore::default();
        let mut segs = Vec::new();
        for i in 0..3 {
            segs.push(store.create_segment(&format!("s{i}")));
        }
        let mut live = Vec::new();
        for (s, v) in before {
            live.push(store.insert(segs[s], vec![SimplePayload::Int(v)]).unwrap());
        }
        let baseline = encode_store(&store);

        let token = store.begin_txn().unwrap();
        for op in inside {
            match op {
                Op::Insert(s, v) => {
                    store.insert(segs[s % segs.len()], vec![SimplePayload::Int(v)]).ok();
                }
                Op::WriteField(r, _f, v) => {
                    if !live.is_empty() {
                        store.write_field(live[r % live.len()], 0, SimplePayload::Int(v)).ok();
                    }
                }
                Op::AppendField(r, v) => {
                    if !live.is_empty() {
                        store.append_field(live[r % live.len()], SimplePayload::Int(v)).ok();
                    }
                }
                Op::Free(r) => {
                    if !live.is_empty() {
                        store.free(live[r % live.len()]).ok();
                    }
                }
                Op::Snapshot => {}
            }
        }
        store.abort_txn(token).unwrap();
        // Content identical to the pre-transaction snapshot.
        let restored: SliceStore<SimplePayload> = decode_store(baseline).unwrap();
        for rec in &live {
            prop_assert_eq!(store.read(*rec).unwrap(), restored.read(*rec).unwrap());
        }
        prop_assert_eq!(store.total_bytes(), restored.total_bytes());
    }
}
