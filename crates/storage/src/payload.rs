//! The payload abstraction: what a record field can hold.
//!
//! The storage layer is generic over the field type so that it does not need
//! to know about the object model's `Value` enum (which lives one crate up).
//! A payload must report its approximate byte footprint (used for page
//! placement accounting) and must be binary-encodable for snapshots.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{StorageError, StorageResult};

/// A value that can be stored as a record field.
pub trait Payload: Clone + std::fmt::Debug + PartialEq + Send + Sync + 'static {
    /// Approximate number of bytes this value occupies on a page.
    ///
    /// This drives page placement and the storage-overhead figures of the
    /// paper's Table 1; it does not need to match the snapshot encoding size
    /// exactly, but should be a faithful model of an on-disk layout.
    fn byte_size(&self) -> usize;

    /// Append a binary encoding of `self` to `buf` (snapshot format).
    fn encode(&self, buf: &mut BytesMut);

    /// Decode a value previously written by [`Payload::encode`].
    fn decode(buf: &mut Bytes) -> StorageResult<Self>;
}

/// A small self-describing payload used by the storage crate's own tests and
/// by any caller that does not need a richer value model.
#[derive(Debug, Clone, PartialEq)]
pub enum SimplePayload {
    /// Absence of a value.
    Null,
    /// A 64-bit signed integer.
    Int(i64),
    /// A UTF-8 string.
    Str(String),
}

impl Payload for SimplePayload {
    fn byte_size(&self) -> usize {
        match self {
            SimplePayload::Null => 1,
            SimplePayload::Int(_) => 9,
            SimplePayload::Str(s) => 5 + s.len(),
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        match self {
            SimplePayload::Null => buf.put_u8(0),
            SimplePayload::Int(i) => {
                buf.put_u8(1);
                buf.put_i64(*i);
            }
            SimplePayload::Str(s) => {
                buf.put_u8(2);
                buf.put_u32(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }

    fn decode(buf: &mut Bytes) -> StorageResult<Self> {
        if buf.remaining() < 1 {
            return Err(StorageError::Corrupt("truncated payload tag".into()));
        }
        match buf.get_u8() {
            0 => Ok(SimplePayload::Null),
            1 => {
                if buf.remaining() < 8 {
                    return Err(StorageError::Corrupt("truncated int payload".into()));
                }
                Ok(SimplePayload::Int(buf.get_i64()))
            }
            2 => {
                if buf.remaining() < 4 {
                    return Err(StorageError::Corrupt("truncated string length".into()));
                }
                let len = buf.get_u32() as usize;
                if buf.remaining() < len {
                    return Err(StorageError::Corrupt("truncated string payload".into()));
                }
                let raw = buf.copy_to_bytes(len);
                let s = String::from_utf8(raw.to_vec())
                    .map_err(|_| StorageError::Corrupt("non-utf8 string payload".into()))?;
                Ok(SimplePayload::Str(s))
            }
            t => Err(StorageError::Corrupt(format!("unknown payload tag {t}"))),
        }
    }
}

/// Encode a UTF-8 string with a u32 length prefix (shared helper for
/// snapshot encoders in this and dependent crates).
pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Decode a string written by [`put_str`].
pub(crate) fn get_str(buf: &mut Bytes) -> StorageResult<String> {
    if buf.remaining() < 4 {
        return Err(StorageError::Corrupt("truncated string length".into()));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(StorageError::Corrupt("truncated string body".into()));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| StorageError::Corrupt("non-utf8 string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: SimplePayload) {
        let mut buf = BytesMut::new();
        p.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = SimplePayload::decode(&mut bytes).unwrap();
        assert_eq!(p, back);
        assert_eq!(bytes.remaining(), 0, "decoder must consume exactly its encoding");
    }

    #[test]
    fn simple_payload_roundtrips() {
        roundtrip(SimplePayload::Null);
        roundtrip(SimplePayload::Int(0));
        roundtrip(SimplePayload::Int(i64::MIN));
        roundtrip(SimplePayload::Int(i64::MAX));
        roundtrip(SimplePayload::Str(String::new()));
        roundtrip(SimplePayload::Str("hello, TSE".into()));
        roundtrip(SimplePayload::Str("ünïcödé ✓".into()));
    }

    #[test]
    fn byte_sizes_reflect_content() {
        assert_eq!(SimplePayload::Null.byte_size(), 1);
        assert_eq!(SimplePayload::Int(7).byte_size(), 9);
        assert_eq!(SimplePayload::Str("abcd".into()).byte_size(), 9);
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut bytes = Bytes::from_static(&[9, 9, 9]);
        assert!(SimplePayload::decode(&mut bytes).is_err());
        let mut empty = Bytes::new();
        assert!(SimplePayload::decode(&mut empty).is_err());
    }

    #[test]
    fn str_helper_roundtrips() {
        let mut buf = BytesMut::new();
        put_str(&mut buf, "schema");
        let mut bytes = buf.freeze();
        assert_eq!(get_str(&mut bytes).unwrap(), "schema");
    }
}
