//! Undo-log transactions.
//!
//! The paper leans on GemStone for transactional behaviour; this module gives
//! the store a minimal but real equivalent: a single open transaction whose
//! mutations are recorded as undo entries and rolled back in reverse order on
//! abort. Higher layers use it to make a multi-statement schema change
//! all-or-nothing.

use crate::store::RecordId;
use crate::store::SegmentId;

/// Opaque handle proving a transaction is open; returned by
/// [`crate::SliceStore::begin_txn`] and consumed by `commit_txn`/`abort_txn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnToken(pub(crate) u64);

/// One reversible mutation.
#[derive(Debug, Clone)]
pub(crate) enum Undo<P> {
    /// A field was overwritten; restore the previous value.
    WriteField { rec: RecordId, idx: usize, old: P },
    /// A field was appended; pop it.
    PopField { rec: RecordId },
    /// A record was inserted; free it.
    Insert { rec: RecordId },
    /// A record was freed; restore it with its old fields.
    Free { rec: RecordId, fields: Vec<P> },
    /// A segment was created; drop it.
    CreateSegment { seg: SegmentId },
}

#[derive(Debug)]
pub(crate) struct TxnState<P> {
    pub active: Option<u64>,
    pub next_id: u64,
    pub log: Vec<Undo<P>>,
}

impl<P> Default for TxnState<P> {
    fn default() -> Self {
        TxnState { active: None, next_id: 0, log: Vec::new() }
    }
}

impl<P> TxnState<P> {
    pub fn record(&mut self, undo: Undo<P>) {
        if self.active.is_some() {
            self.log.push(undo);
        }
    }
}
