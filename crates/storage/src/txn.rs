//! Undo-log transactions.
//!
//! The paper leans on GemStone for transactional behaviour; this module gives
//! the store a minimal but real equivalent: a single open transaction whose
//! mutations are recorded as undo entries and rolled back in reverse order on
//! abort.
//!
//! The actual contract, as used by the layers above: the TSEM opens one
//! storage transaction around every top-level `evolve` call (composite
//! macros included — nested primitives run inside the outer transaction).
//! Store mutations made while the transaction is open — record inserts,
//! frees, field writes/appends, segment creation — are undo-logged; on any
//! translate/classify/view-regen/swap-in error the TSEM aborts the
//! transaction, which restores every record and segment, while the schema,
//! view history, and update policy are restored from in-memory checkpoints
//! taken at `begin`. `drop_segment` is rejected inside a transaction
//! (segment drops are not undoable). Data-plane operations (`create`,
//! `set`, …) run outside any transaction and are not undo-logged.

use crate::store::RecordId;
use crate::store::SegmentId;

/// Opaque handle proving a transaction is open; returned by
/// [`crate::SliceStore::begin_txn`] and consumed by `commit_txn`/`abort_txn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnToken(pub(crate) u64);

/// One reversible mutation.
#[derive(Debug, Clone)]
pub(crate) enum Undo<P> {
    /// A field was overwritten; restore the previous value.
    WriteField { rec: RecordId, idx: usize, old: P },
    /// A field was appended; pop it.
    PopField { rec: RecordId },
    /// A record was inserted; free it.
    Insert { rec: RecordId },
    /// A record was freed; restore it with its old fields.
    Free { rec: RecordId, fields: Vec<P> },
    /// A segment was created; drop it.
    CreateSegment { seg: SegmentId },
}

#[derive(Debug)]
pub(crate) struct TxnState<P> {
    pub active: Option<u64>,
    pub next_id: u64,
    pub log: Vec<Undo<P>>,
}

impl<P> Default for TxnState<P> {
    fn default() -> Self {
        TxnState { active: None, next_id: 0, log: Vec::new() }
    }
}

impl<P> TxnState<P> {
    /// Record an undo entry for a mutation made while a transaction is
    /// open. Callers must check [`TxnState::active`] first and only call
    /// this inside an open transaction — a mutation that reaches here with
    /// no transaction would be silently untracked during what the caller
    /// believed was an undoable window, so that is a bug, not a no-op.
    pub fn record(&mut self, undo: Undo<P>) {
        debug_assert!(
            self.active.is_some(),
            "undo entry recorded outside a transaction (untracked mutation)"
        );
        if self.active.is_some() {
            self.log.push(undo);
        }
    }
}
