//! Undo-log transactions.
//!
//! The paper leans on GemStone for transactional behaviour; this module gives
//! the store a minimal but real equivalent: a single open transaction whose
//! mutations are recorded as undo entries and rolled back in reverse order on
//! abort.
//!
//! With the multi-versioned segments the undo log collapses to two entry
//! kinds. Every record mutation — insert, field write/append, delete —
//! pushes exactly one new [`crate::segment::Version`] onto a slot's chain,
//! so undoing it is always "pop the newest version off that slot"
//! ([`Undo::PopVersion`]); segment creation remains its own entry. The old
//! field-level entries (`WriteField`/`PopField`/`Insert`/`Free`) are gone:
//! version chains already carry the before-image.
//!
//! The actual contract, as used by the layers above: the TSEM opens one
//! storage transaction around every top-level `evolve` call (composite
//! macros included — nested primitives run inside the outer transaction).
//! Store mutations made while the transaction is open are undo-logged; on
//! any translate/classify/view-regen/swap-in error the TSEM aborts the
//! transaction, which pops every version the evolution installed, while the
//! schema, view history, and update policy are restored from in-memory
//! checkpoints taken at `begin`. `drop_segment` is rejected inside a
//! transaction (segment drops are not undoable). Data-plane operations
//! (`create`, `set`, …) run outside any transaction and are not undo-logged.

use crate::store::RecordId;
use crate::store::SegmentId;

/// Opaque handle proving a transaction is open; returned by
/// [`crate::SliceStore::begin_txn`] and consumed by `commit_txn`/`abort_txn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnToken(pub(crate) u64);

/// One reversible mutation.
#[derive(Debug, Clone)]
pub(crate) enum Undo {
    /// A mutation pushed a version onto this record's chain; pop it.
    PopVersion { rec: RecordId },
    /// A segment was created; drop it.
    CreateSegment { seg: SegmentId },
}

#[derive(Debug, Default)]
pub(crate) struct TxnState {
    pub active: Option<u64>,
    pub next_id: u64,
    pub log: Vec<Undo>,
}

impl TxnState {
    /// Record an undo entry for a mutation made while a transaction is
    /// open. Callers must check [`TxnState::active`] first and only call
    /// this inside an open transaction — a mutation that reaches here with
    /// no transaction would be silently untracked during what the caller
    /// believed was an undoable window, so that is a bug, not a no-op.
    pub fn record(&mut self, undo: Undo) {
        debug_assert!(
            self.active.is_some(),
            "undo entry recorded outside a transaction (untracked mutation)"
        );
        if self.active.is_some() {
            self.log.push(undo);
        }
    }
}
