//! Binary snapshot codec.
//!
//! Persists an entire store to bytes and restores it. The format is a
//! hand-rolled length-prefixed encoding (the workspace deliberately carries
//! no serde format crate). Version 2 adds a CRC32 per section so torn and
//! bit-rotted blobs are *rejected* instead of mis-decoded:
//!
//! ```text
//! magic "TSESNAP2" | u32 page_size | u32 buffer_pages | u32 n_segment_slots
//! u32 crc32(magic ‖ header fields)
//! per segment slot:
//!   section: u8 present
//!     if present: str name | u32 n_record_slots
//!       per record slot: u8 present
//!         if present: u32 n_fields | fields…
//!   u32 crc32(section bytes)
//! ```
//!
//! Version-1 blobs (`TSESNAP1`, no CRCs) are still decoded for
//! read-compatibility with snapshots taken before the durability layer
//! existed; both decoders reject trailing garbage after the last section.
//!
//! Record slot **indices are preserved**, so every `RecordId` taken before a
//! snapshot remains valid after a restore — the property the object model
//! relies on to keep its oid → record maps stable across persistence cycles.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::crc::crc32;
use crate::error::{StorageError, StorageResult};
use crate::payload::{get_str, put_str, Payload};
use crate::segment::Segment;
use crate::store::{SliceStore, StoreConfig};

const MAGIC_V1: &[u8; 8] = b"TSESNAP1";
const MAGIC_V2: &[u8; 8] = b"TSESNAP2";

/// Serialize the whole store (always the current version-2 format).
pub fn encode_store<P: Payload>(store: &SliceStore<P>) -> Bytes {
    store.with_segment_slots(|segments| {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC_V2);
        buf.put_u32(store.config().page_size as u32);
        buf.put_u32(store.config().buffer_pages as u32);
        buf.put_u32(segments.len() as u32);
        let header_crc = crc32(buf.as_ref());
        buf.put_u32(header_crc);
        for seg in segments {
            let mut section = BytesMut::new();
            encode_segment(&mut section, *seg);
            let crc = crc32(section.as_ref());
            buf.put_slice(section.as_ref());
            buf.put_u32(crc);
        }
        buf.freeze()
    })
}

/// One segment slot: present flag, then name and records. Only the
/// **current** version of each record is persisted — version history is
/// runtime state for pinned readers, not durable state — and tombstoned
/// or freed slots are written as absent, so a restored store starts
/// single-version with every slot hole genuinely free.
fn encode_segment<P: Payload>(buf: &mut BytesMut, seg: Option<&Segment<P>>) {
    let seg = match seg {
        None => {
            buf.put_u8(0);
            return;
        }
        Some(seg) => seg,
    };
    buf.put_u8(1);
    put_str(buf, &seg.name);
    let cap = seg.slot_capacity() as u32;
    buf.put_u32(cap);
    let mut records: Vec<Option<&[P]>> = vec![None; cap as usize];
    for (slot, fields) in seg.iter_at(None) {
        records[slot as usize] = Some(fields.as_slice());
    }
    for fields in records {
        match fields {
            None => buf.put_u8(0),
            Some(fields) => {
                buf.put_u8(1);
                buf.put_u32(fields.len() as u32);
                for f in fields {
                    f.encode(buf);
                }
            }
        }
    }
}

/// Restore a store from bytes produced by [`encode_store`] — the current
/// CRC-checked format or a legacy version-1 blob. Runtime knobs
/// (`write_stripes`, `wal_autocheckpoint_bytes`) take the process default;
/// see [`decode_store_with`] to supply them.
pub fn decode_store<P: Payload>(bytes: Bytes) -> StorageResult<SliceStore<P>> {
    decode_store_with(bytes, StoreConfig::default())
}

/// Restore a store, taking `page_size`/`buffer_pages` from the snapshot
/// (they shape the persisted layout) and every runtime knob — stripe
/// count, auto-checkpoint threshold — from `runtime`.
pub fn decode_store_with<P: Payload>(
    bytes: Bytes,
    runtime: StoreConfig,
) -> StorageResult<SliceStore<P>> {
    if bytes.remaining() < 8 {
        return Err(StorageError::Corrupt("snapshot too short".into()));
    }
    match &bytes[..8] {
        m if m == MAGIC_V2 => decode_store_v2(bytes, runtime),
        m if m == MAGIC_V1 => decode_store_v1(bytes, runtime),
        _ => Err(StorageError::Corrupt("bad magic".into())),
    }
}

fn decode_store_v2<P: Payload>(all: Bytes, runtime: StoreConfig) -> StorageResult<SliceStore<P>> {
    if all.remaining() < 8 + 12 + 4 {
        return Err(StorageError::Corrupt("truncated header".into()));
    }
    let expected = crc32(&all[..20]);
    let mut bytes = all.clone();
    bytes.advance(8);
    let page_size = bytes.get_u32() as usize;
    let buffer_pages = bytes.get_u32() as usize;
    let n_segments = bytes.get_u32() as usize;
    if bytes.get_u32() != expected {
        return Err(StorageError::Corrupt("header crc mismatch".into()));
    }
    let config = StoreConfig { page_size, buffer_pages, ..runtime };
    let mut segments: Vec<Option<Segment<P>>> =
        Vec::with_capacity(n_segments.min(bytes.remaining()));
    for _ in 0..n_segments {
        let start = all.len() - bytes.remaining();
        let seg = decode_segment(&mut bytes, page_size)?;
        let end = all.len() - bytes.remaining();
        if bytes.remaining() < 4 {
            return Err(StorageError::Corrupt("truncated section crc".into()));
        }
        if bytes.get_u32() != crc32(&all[start..end]) {
            return Err(StorageError::Corrupt("section crc mismatch".into()));
        }
        segments.push(seg);
    }
    if bytes.remaining() > 0 {
        return Err(StorageError::Corrupt("trailing bytes after snapshot".into()));
    }
    Ok(SliceStore::rebuild(config, segments))
}

fn decode_store_v1<P: Payload>(
    mut bytes: Bytes,
    runtime: StoreConfig,
) -> StorageResult<SliceStore<P>> {
    bytes.advance(8);
    if bytes.remaining() < 12 {
        return Err(StorageError::Corrupt("truncated header".into()));
    }
    let page_size = bytes.get_u32() as usize;
    let buffer_pages = bytes.get_u32() as usize;
    let config = StoreConfig { page_size, buffer_pages, ..runtime };
    let n_segments = bytes.get_u32() as usize;
    let mut segments: Vec<Option<Segment<P>>> =
        Vec::with_capacity(n_segments.min(bytes.remaining()));
    for _ in 0..n_segments {
        segments.push(decode_segment(&mut bytes, page_size)?);
    }
    if bytes.remaining() > 0 {
        return Err(StorageError::Corrupt("trailing bytes after snapshot".into()));
    }
    Ok(SliceStore::rebuild(config, segments))
}

/// Decode one segment slot (shared by both format versions; v2 checks the
/// section CRC around this).
fn decode_segment<P: Payload>(
    bytes: &mut Bytes,
    page_size: usize,
) -> StorageResult<Option<Segment<P>>> {
    if bytes.remaining() < 1 {
        return Err(StorageError::Corrupt("truncated segment flag".into()));
    }
    if bytes.get_u8() == 0 {
        return Ok(None);
    }
    let name = get_str(bytes)?;
    if bytes.remaining() < 4 {
        return Err(StorageError::Corrupt("truncated slot count".into()));
    }
    let n_slots = bytes.get_u32() as usize;
    let mut seg = Segment::new(name);
    // Gather live records first so freed slots in between stay freed.
    let mut live: Vec<(u32, Vec<P>)> = Vec::new();
    for slot in 0..n_slots {
        if bytes.remaining() < 1 {
            return Err(StorageError::Corrupt("truncated record flag".into()));
        }
        if bytes.get_u8() == 0 {
            continue;
        }
        if bytes.remaining() < 4 {
            return Err(StorageError::Corrupt("truncated field count".into()));
        }
        let n_fields = bytes.get_u32() as usize;
        let mut fields = Vec::with_capacity(n_fields.min(bytes.remaining()));
        for _ in 0..n_fields {
            fields.push(P::decode(bytes)?);
        }
        live.push((slot as u32, fields));
    }
    for (slot, fields) in live {
        seg.restore(slot, fields, page_size);
    }
    Ok(Some(seg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::SimplePayload as SP;
    use crate::store::RecordId;

    /// The legacy version-1 encoder, kept only to prove read-compatibility.
    fn encode_store_v1(store: &SliceStore<SP>) -> Bytes {
        store.with_segment_slots(|segments| {
            let mut buf = BytesMut::new();
            buf.put_slice(MAGIC_V1);
            buf.put_u32(store.config().page_size as u32);
            buf.put_u32(store.config().buffer_pages as u32);
            buf.put_u32(segments.len() as u32);
            for seg in segments {
                encode_segment(&mut buf, *seg);
            }
            buf.freeze()
        })
    }

    fn populated() -> (SliceStore<SP>, RecordId, RecordId, RecordId) {
        let st = SliceStore::<SP>::new(StoreConfig {
            page_size: 256,
            buffer_pages: 8,
            ..StoreConfig::default()
        });
        let people = st.create_segment("Person");
        let cars = st.create_segment("Car");
        let r1 = st.insert(people, vec![SP::Str("ann".into()), SP::Int(31)]).unwrap();
        let r2 = st.insert(people, vec![SP::Str("bob".into()), SP::Int(27)]).unwrap();
        let r3 = st.insert(cars, vec![SP::Str("jeep".into())]).unwrap();
        st.free(r2).unwrap();
        (st, r1, r2, r3)
    }

    #[test]
    fn roundtrip_preserves_records_and_ids() {
        let (st, r1, r2, r3) = populated();
        let bytes = encode_store(&st);
        let restored: SliceStore<SP> = decode_store(bytes).unwrap();

        assert_eq!(restored.read(r1).unwrap(), vec![SP::Str("ann".into()), SP::Int(31)]);
        assert_eq!(restored.read(r3).unwrap(), vec![SP::Str("jeep".into())]);
        assert!(restored.read(r2).is_err(), "freed record stays freed");
        assert_eq!(restored.segment_name(r1.segment).unwrap(), "Person");
        assert_eq!(restored.segment_name(r3.segment).unwrap(), "Car");
        assert_eq!(restored.config().page_size, 256);
    }

    #[test]
    fn version1_blobs_still_decode() {
        let (st, r1, r2, r3) = populated();
        let legacy = encode_store_v1(&st);
        assert_eq!(&legacy[..8], MAGIC_V1);
        let restored: SliceStore<SP> = decode_store(legacy).unwrap();
        assert_eq!(restored.read(r1).unwrap(), vec![SP::Str("ann".into()), SP::Int(31)]);
        assert_eq!(restored.read(r3).unwrap(), vec![SP::Str("jeep".into())]);
        assert!(restored.read(r2).is_err());
    }

    #[test]
    fn roundtrip_preserves_dropped_segment_holes() {
        let st = SliceStore::<SP>::default();
        let a = st.create_segment("a");
        let b = st.create_segment("b");
        st.insert(b, vec![SP::Int(1)]).unwrap();
        st.drop_segment(a).unwrap();
        let restored: SliceStore<SP> = decode_store(encode_store(&st)).unwrap();
        assert!(restored.segment_name(a).is_err());
        assert_eq!(restored.segment_name(b).unwrap(), "b");
        // Ids continue after the hole, exactly as in the original.
        let c = restored.create_segment("c");
        assert_eq!(c.0, 2);
    }

    #[test]
    fn freed_slot_is_reusable_after_restore() {
        let st = SliceStore::<SP>::default();
        let seg = st.create_segment("s");
        let r1 = st.insert(seg, vec![SP::Int(1)]).unwrap();
        st.insert(seg, vec![SP::Int(2)]).unwrap();
        st.free(r1).unwrap();
        let restored: SliceStore<SP> = decode_store(encode_store(&st)).unwrap();
        let r_new = restored.insert(seg, vec![SP::Int(3)]).unwrap();
        // Slot of r1 was freed; restore must keep it available (either reuse
        // or fresh slot — but never colliding with the live record).
        assert_eq!(restored.read_field(r_new, 0).unwrap(), SP::Int(3));
        assert_eq!(
            restored.read_field(RecordId { segment: seg, slot: 1 }, 0).unwrap(),
            SP::Int(2)
        );
    }

    #[test]
    fn corrupt_inputs_are_rejected_not_panicking() {
        assert!(decode_store::<SP>(Bytes::from_static(b"short")).is_err());
        assert!(decode_store::<SP>(Bytes::from_static(b"WRONGMAG00000000")).is_err());
        let (st, ..) = populated();
        let good = encode_store(&st);
        // Every proper prefix must actually be rejected, never panic and
        // never decode to a store.
        for cut in 0..good.len() {
            assert!(
                decode_store::<SP>(good.slice(..cut)).is_err(),
                "prefix of {cut}/{} bytes decoded successfully",
                good.len()
            );
        }
        // Appending garbage must be rejected too.
        let mut padded = good.to_vec();
        padded.push(0);
        assert!(
            decode_store::<SP>(Bytes::from(padded)).is_err(),
            "trailing byte accepted"
        );
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let (st, ..) = populated();
        let good = encode_store(&st);
        for byte in 0..good.len() {
            for bit in 0..8u8 {
                let mut bad = good.to_vec();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_store::<SP>(Bytes::from(bad)).is_err(),
                    "bit flip at {byte}.{bit} decoded successfully"
                );
            }
        }
    }
}
