//! Binary snapshot codec.
//!
//! Persists an entire store to bytes and restores it. The format is a
//! hand-rolled length-prefixed encoding (the workspace deliberately carries
//! no serde format crate):
//!
//! ```text
//! magic "TSESNAP1" | u32 page_size | u32 buffer_pages
//! u32 n_segment_slots
//!   per slot: u8 present
//!     if present: str name | u32 n_record_slots
//!       per record slot: u8 present
//!         if present: u32 n_fields | fields…
//! ```
//!
//! Record slot **indices are preserved**, so every `RecordId` taken before a
//! snapshot remains valid after a restore — the property the object model
//! relies on to keep its oid → record maps stable across persistence cycles.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{StorageError, StorageResult};
use crate::payload::{get_str, put_str, Payload};
use crate::segment::Segment;
use crate::store::{SliceStore, StoreConfig};

const MAGIC: &[u8; 8] = b"TSESNAP1";

/// Serialize the whole store.
pub fn encode_store<P: Payload>(store: &SliceStore<P>) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32(store.config().page_size as u32);
    buf.put_u32(store.config().buffer_pages as u32);
    let segments = store.raw_segments();
    buf.put_u32(segments.len() as u32);
    for seg in segments {
        match seg {
            None => buf.put_u8(0),
            Some(seg) => {
                buf.put_u8(1);
                put_str(&mut buf, &seg.name);
                let cap = seg.slot_capacity() as u32;
                buf.put_u32(cap);
                let mut present = vec![false; cap as usize];
                let mut records: Vec<Option<&[P]>> = vec![None; cap as usize];
                for (slot, rec) in seg.iter() {
                    present[slot as usize] = true;
                    records[slot as usize] = Some(&rec.fields);
                }
                for (slot, is_live) in present.iter().enumerate() {
                    if *is_live {
                        buf.put_u8(1);
                        let fields = records[slot].unwrap();
                        buf.put_u32(fields.len() as u32);
                        for f in fields {
                            f.encode(&mut buf);
                        }
                    } else {
                        buf.put_u8(0);
                    }
                }
            }
        }
    }
    buf.freeze()
}

/// Restore a store from bytes produced by [`encode_store`].
pub fn decode_store<P: Payload>(mut bytes: Bytes) -> StorageResult<SliceStore<P>> {
    if bytes.remaining() < MAGIC.len() {
        return Err(StorageError::Corrupt("snapshot too short".into()));
    }
    let mut magic = [0u8; 8];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(StorageError::Corrupt("bad magic".into()));
    }
    if bytes.remaining() < 12 {
        return Err(StorageError::Corrupt("truncated header".into()));
    }
    let page_size = bytes.get_u32() as usize;
    let buffer_pages = bytes.get_u32() as usize;
    let config = StoreConfig { page_size, buffer_pages };
    let n_segments = bytes.get_u32() as usize;
    let mut segments: Vec<Option<Segment<P>>> = Vec::with_capacity(n_segments);
    for _ in 0..n_segments {
        if bytes.remaining() < 1 {
            return Err(StorageError::Corrupt("truncated segment flag".into()));
        }
        if bytes.get_u8() == 0 {
            segments.push(None);
            continue;
        }
        let name = get_str(&mut bytes)?;
        if bytes.remaining() < 4 {
            return Err(StorageError::Corrupt("truncated slot count".into()));
        }
        let n_slots = bytes.get_u32() as usize;
        let mut seg = Segment::new(name);
        // Gather live records first so freed slots in between stay freed.
        let mut live: Vec<(u32, Vec<P>)> = Vec::new();
        for slot in 0..n_slots {
            if bytes.remaining() < 1 {
                return Err(StorageError::Corrupt("truncated record flag".into()));
            }
            if bytes.get_u8() == 0 {
                continue;
            }
            if bytes.remaining() < 4 {
                return Err(StorageError::Corrupt("truncated field count".into()));
            }
            let n_fields = bytes.get_u32() as usize;
            let mut fields = Vec::with_capacity(n_fields);
            for _ in 0..n_fields {
                fields.push(P::decode(&mut bytes)?);
            }
            live.push((slot as u32, fields));
        }
        for (slot, fields) in live {
            seg.restore(slot, fields, page_size);
        }
        segments.push(Some(seg));
    }
    Ok(SliceStore::rebuild(config, segments))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::SimplePayload as SP;
    use crate::store::RecordId;

    #[test]
    fn roundtrip_preserves_records_and_ids() {
        let mut st = SliceStore::<SP>::new(StoreConfig { page_size: 256, buffer_pages: 8 });
        let people = st.create_segment("Person");
        let cars = st.create_segment("Car");
        let r1 = st.insert(people, vec![SP::Str("ann".into()), SP::Int(31)]).unwrap();
        let r2 = st.insert(people, vec![SP::Str("bob".into()), SP::Int(27)]).unwrap();
        let r3 = st.insert(cars, vec![SP::Str("jeep".into())]).unwrap();
        st.free(r2).unwrap();

        let bytes = encode_store(&st);
        let restored: SliceStore<SP> = decode_store(bytes).unwrap();

        assert_eq!(restored.read(r1).unwrap(), vec![SP::Str("ann".into()), SP::Int(31)]);
        assert_eq!(restored.read(r3).unwrap(), vec![SP::Str("jeep".into())]);
        assert!(restored.read(r2).is_err(), "freed record stays freed");
        assert_eq!(restored.segment_name(people).unwrap(), "Person");
        assert_eq!(restored.segment_name(cars).unwrap(), "Car");
        assert_eq!(restored.config().page_size, 256);
    }

    #[test]
    fn roundtrip_preserves_dropped_segment_holes() {
        let mut st = SliceStore::<SP>::default();
        let a = st.create_segment("a");
        let b = st.create_segment("b");
        st.insert(b, vec![SP::Int(1)]).unwrap();
        st.drop_segment(a).unwrap();
        let restored: SliceStore<SP> = decode_store(encode_store(&st)).unwrap();
        assert!(restored.segment_name(a).is_err());
        assert_eq!(restored.segment_name(b).unwrap(), "b");
        // Ids continue after the hole, exactly as in the original.
        let mut restored = restored;
        let c = restored.create_segment("c");
        assert_eq!(c.0, 2);
    }

    #[test]
    fn freed_slot_is_reusable_after_restore() {
        let mut st = SliceStore::<SP>::default();
        let seg = st.create_segment("s");
        let r1 = st.insert(seg, vec![SP::Int(1)]).unwrap();
        st.insert(seg, vec![SP::Int(2)]).unwrap();
        st.free(r1).unwrap();
        let mut restored: SliceStore<SP> = decode_store(encode_store(&st)).unwrap();
        let r_new = restored.insert(seg, vec![SP::Int(3)]).unwrap();
        // Slot of r1 was freed; restore must keep it available (either reuse
        // or fresh slot — but never colliding with the live record).
        assert_eq!(restored.read_field(r_new, 0).unwrap(), SP::Int(3));
        assert_eq!(
            restored.read_field(RecordId { segment: seg, slot: 1 }, 0).unwrap(),
            SP::Int(2)
        );
    }

    #[test]
    fn corrupt_inputs_are_rejected_not_panicking() {
        assert!(decode_store::<SP>(Bytes::from_static(b"short")).is_err());
        assert!(decode_store::<SP>(Bytes::from_static(b"WRONGMAG00000000")).is_err());
        let mut st = SliceStore::<SP>::default();
        let seg = st.create_segment("s");
        st.insert(seg, vec![SP::Str("payload".into())]).unwrap();
        let good = encode_store(&st);
        // Truncate at every prefix: must error, never panic.
        for cut in 0..good.len() {
            let _ = decode_store::<SP>(good.slice(..cut));
        }
    }
}
