//! Typed I/O fault taxonomy and bounded retry with exponential backoff.
//!
//! Every durable-path error is classified into an [`IoFaultKind`] so callers
//! can react by *kind* rather than by string matching:
//!
//! - [`IoFaultKind::Transient`] — retrying the same operation may succeed
//!   (momentary device stall, `EINTR`, injected transient fault). The only
//!   kind [`with_retries`] retries.
//! - [`IoFaultKind::DiskFull`] — `ENOSPC`. Retrying without freeing space is
//!   pointless; the system should degrade to read-only and reclaim space.
//! - [`IoFaultKind::Corruption`] — bytes on disk fail validation. Never
//!   retried; the corrupt artifact must be quarantined or skipped.
//! - [`IoFaultKind::Permanent`] — everything else (poisoned log, simulated
//!   crash, clean injected failure). The caller's normal error path applies.
//!
//! Retries always happen *before* an operation is acknowledged — a caller
//! that observed `Ok` never has its write silently redone, and a caller that
//! observed `Err` knows every retry was already spent.
//!
//! Backoff sleeps go through [`crate::FailpointRegistry::backoff_sleep`] so
//! tests with the virtual clock enabled run at full speed while still
//! recording exactly how long production would have slept.

use crate::error::{StorageError, StorageResult};
use crate::failpoint::FailpointRegistry;

/// Classification of a durable-path error — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// Retrying the same operation may succeed.
    Transient,
    /// The device is out of space; degrade and reclaim instead of retrying.
    DiskFull,
    /// On-disk bytes failed validation (CRC mismatch, bad magic, short
    /// file). Quarantine or skip the artifact.
    Corruption,
    /// Not an I/O fault the durability layer can do anything about.
    Permanent,
}

impl IoFaultKind {
    /// Classify a [`StorageError`].
    ///
    /// Raw [`StorageError::Io`] is inspected for the two shapes
    /// `std::io::Error` prints for `ENOSPC`; unrecognized I/O errors are
    /// treated as transient (one bounded retry round is cheap, and a truly
    /// broken device fails again immediately).
    pub fn of(e: &StorageError) -> IoFaultKind {
        match e {
            StorageError::Transient(_) => IoFaultKind::Transient,
            StorageError::DiskFull(_) => IoFaultKind::DiskFull,
            StorageError::Io(msg) => {
                if msg.contains("os error 28") || msg.contains("No space left") {
                    IoFaultKind::DiskFull
                } else {
                    IoFaultKind::Transient
                }
            }
            StorageError::Corrupt(_) => IoFaultKind::Corruption,
            _ => IoFaultKind::Permanent,
        }
    }

    /// Stable lowercase name, used in telemetry fields.
    pub fn name(self) -> &'static str {
        match self {
            IoFaultKind::Transient => "transient",
            IoFaultKind::DiskFull => "disk_full",
            IoFaultKind::Corruption => "corruption",
            IoFaultKind::Permanent => "permanent",
        }
    }
}

/// Bounded exponential backoff for transient durable-path faults.
///
/// Attempt `k` (0-based) sleeps `min(base_backoff_ns << k, max_backoff_ns)`
/// before retrying; after `max_retries` failed retries the last error is
/// returned. Lives on `StoreConfig` so one policy governs the whole system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 = no retries).
    pub max_retries: u32,
    /// Sleep before the first retry, nanoseconds.
    pub base_backoff_ns: u64,
    /// Backoff ceiling, nanoseconds.
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff_ns: 1_000_000,   // 1 ms
            max_backoff_ns: 100_000_000,  // 100 ms
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, base_backoff_ns: 0, max_backoff_ns: 0 }
    }

    /// Backoff before retry `attempt` (0-based), capped at the ceiling.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        if self.base_backoff_ns == 0 {
            return 0;
        }
        // A shift that would push the top bit out has already exceeded any
        // ceiling a u64 can hold.
        if attempt >= self.base_backoff_ns.leading_zeros() {
            return self.max_backoff_ns;
        }
        (self.base_backoff_ns << attempt).min(self.max_backoff_ns)
    }
}

/// Run `f`, retrying per `policy` while it fails with a
/// [`IoFaultKind::Transient`] error. Non-transient errors and exhausted
/// retries return the last error unchanged. Each retry is reported through
/// `on_retry(attempt, backoff_ns, &err)` so callers can emit telemetry
/// without this crate depending on the telemetry crate.
pub fn with_retries<T>(
    policy: &RetryPolicy,
    fp: &FailpointRegistry,
    mut on_retry: impl FnMut(u32, u64, &StorageError),
    mut f: impl FnMut() -> StorageResult<T>,
) -> StorageResult<T> {
    let mut attempt = 0u32;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) => {
                if IoFaultKind::of(&e) != IoFaultKind::Transient || attempt >= policy.max_retries {
                    return Err(e);
                }
                let backoff = policy.backoff_ns(attempt);
                on_retry(attempt, backoff, &e);
                fp.backoff_sleep(backoff);
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_kind() {
        assert_eq!(IoFaultKind::of(&StorageError::Transient("x".into())), IoFaultKind::Transient);
        assert_eq!(IoFaultKind::of(&StorageError::DiskFull("x".into())), IoFaultKind::DiskFull);
        assert_eq!(
            IoFaultKind::of(&StorageError::Io("write failed: No space left on device (os error 28)".into())),
            IoFaultKind::DiskFull
        );
        assert_eq!(IoFaultKind::of(&StorageError::Io("timed out".into())), IoFaultKind::Transient);
        assert_eq!(IoFaultKind::of(&StorageError::Corrupt("bad crc".into())), IoFaultKind::Corruption);
        assert_eq!(IoFaultKind::of(&StorageError::Poisoned("x".into())), IoFaultKind::Permanent);
        assert_eq!(IoFaultKind::of(&StorageError::Injected("x".into())), IoFaultKind::Permanent);
        assert_eq!(IoFaultKind::of(&StorageError::SimulatedCrash("x".into())), IoFaultKind::Permanent);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy { max_retries: 10, base_backoff_ns: 100, max_backoff_ns: 500 };
        assert_eq!(p.backoff_ns(0), 100);
        assert_eq!(p.backoff_ns(1), 200);
        assert_eq!(p.backoff_ns(2), 400);
        assert_eq!(p.backoff_ns(3), 500, "capped");
        assert_eq!(p.backoff_ns(63), 500, "huge shifts saturate to the cap");
    }

    #[test]
    fn retries_transient_until_success() {
        let fp = FailpointRegistry::new();
        fp.set_virtual_clock(true);
        let policy = RetryPolicy { max_retries: 4, base_backoff_ns: 10, max_backoff_ns: 1000 };
        let mut calls = 0;
        let out = with_retries(&policy, &fp, |_, _, _| {}, || {
            calls += 1;
            if calls < 3 { Err(StorageError::Transient("stall".into())) } else { Ok(calls) }
        });
        assert_eq!(out, Ok(3));
        assert_eq!(fp.virtual_slept_ns(), 10 + 20, "two backoffs accumulated on the virtual clock");
    }

    #[test]
    fn exhausted_retries_return_last_error() {
        let fp = FailpointRegistry::new();
        fp.set_virtual_clock(true);
        let policy = RetryPolicy { max_retries: 2, base_backoff_ns: 1, max_backoff_ns: 8 };
        let mut calls = 0;
        let mut retries = Vec::new();
        let out: StorageResult<()> = with_retries(
            &policy,
            &fp,
            |attempt, backoff, _| retries.push((attempt, backoff)),
            || {
                calls += 1;
                Err(StorageError::Transient("still down".into()))
            },
        );
        assert!(matches!(out, Err(StorageError::Transient(_))));
        assert_eq!(calls, 3, "initial attempt + 2 retries");
        assert_eq!(retries, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn non_transient_errors_fail_immediately() {
        let fp = FailpointRegistry::new();
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let out: StorageResult<()> = with_retries(&policy, &fp, |_, _, _| {}, || {
            calls += 1;
            Err(StorageError::DiskFull("no space".into()))
        });
        assert!(matches!(out, Err(StorageError::DiskFull(_))));
        assert_eq!(calls, 1);
    }
}
