//! A tiny LRU buffer pool over (segment, page) identifiers.
//!
//! The pool holds no data — records live in heap memory — it only simulates
//! which pages would be resident, so that benchmarks can distinguish "scan of
//! clustered slices" (mostly hits) from "pointer-chasing across segments"
//! (mostly misses). A `VecDeque`-backed LRU is plenty for the pool sizes used
//! in the experiments (tens to thousands of pages).

use std::collections::VecDeque;

/// Identifies a page globally: (segment id, page index within segment).
pub(crate) type PageKey = (u32, u32);

#[derive(Debug)]
pub(crate) struct BufferPool {
    capacity: usize,
    /// Most-recently-used at the back.
    queue: VecDeque<PageKey>,
}

impl BufferPool {
    pub fn new(capacity: usize) -> Self {
        BufferPool { capacity: capacity.max(1), queue: VecDeque::new() }
    }

    /// Touch a page; returns `true` on a hit, `false` on a miss (page fault).
    pub fn touch(&mut self, key: PageKey) -> bool {
        if let Some(pos) = self.queue.iter().position(|k| *k == key) {
            // Move to MRU position.
            self.queue.remove(pos);
            self.queue.push_back(key);
            true
        } else {
            if self.queue.len() >= self.capacity {
                self.queue.pop_front();
            }
            self.queue.push_back(key);
            false
        }
    }

    /// Drop every cached page (e.g. after a snapshot restore).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Evict all pages of one segment (segment drop).
    pub fn evict_segment(&mut self, segment: u32) {
        self.queue.retain(|(s, _)| *s != segment);
    }

    #[cfg(test)]
    pub fn resident(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_touch_hits() {
        let mut pool = BufferPool::new(2);
        assert!(!pool.touch((0, 0)));
        assert!(pool.touch((0, 0)));
        assert!(pool.touch((0, 0)));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut pool = BufferPool::new(2);
        pool.touch((0, 0));
        pool.touch((0, 1));
        pool.touch((0, 0)); // 1 is now LRU
        pool.touch((0, 2)); // evicts 1
        assert!(pool.touch((0, 0)), "0 stayed resident");
        assert!(!pool.touch((0, 1)), "1 was evicted");
    }

    #[test]
    fn capacity_of_zero_is_clamped_to_one() {
        let mut pool = BufferPool::new(0);
        assert!(!pool.touch((0, 0)));
        assert!(pool.touch((0, 0)));
        assert_eq!(pool.resident(), 1);
    }

    #[test]
    fn evict_segment_removes_only_that_segment() {
        let mut pool = BufferPool::new(8);
        pool.touch((1, 0));
        pool.touch((2, 0));
        pool.touch((1, 5));
        pool.evict_segment(1);
        assert!(!pool.touch((1, 0)));
        assert!(pool.touch((2, 0)));
    }
}
