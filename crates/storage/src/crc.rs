//! CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! Every durable artifact in the system — snapshot sections, WAL frames,
//! manifest records — carries a CRC32 so that torn writes and bit rot are
//! detected at read time instead of surfacing as mis-decoded state. The
//! workspace carries no external crates, so the table-driven implementation
//! lives here; it is the same polynomial as zlib/`crc32fast`, making the
//! on-disk artifacts checkable with standard tools.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of a byte slice (one-shot).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC32 over multiple slices (avoids concatenation).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: u32::MAX }
    }

    /// Feed bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finish and return the checksum.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"hello durable world";
        let mut h = Crc32::new();
        h.update(&data[..5]);
        h.update(&data[5..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"schema evolution frame payload";
        let good = crc32(data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.to_vec();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), good, "flip at {byte}.{bit} undetected");
            }
        }
    }
}
