//! Page bookkeeping inside a segment.
//!
//! Pages are an *accounting* construct: record payloads live in ordinary heap
//! memory, but every record is assigned to a page and every access is charged
//! to that page. This is what lets the benchmark harness reproduce the
//! locality arguments of the paper's Table 1 (clustered slices → few page
//! accesses) without implementing a real disk format.

/// Metadata for a single fixed-size page.
#[derive(Debug, Clone, Default)]
pub(crate) struct PageMeta {
    /// Bytes currently occupied by records assigned to this page.
    pub bytes_used: usize,
    /// Number of live records assigned to this page.
    pub records: usize,
}

impl PageMeta {
    /// Free bytes remaining given the configured page size.
    pub fn free(&self, page_size: usize) -> usize {
        page_size.saturating_sub(self.bytes_used)
    }
}

/// A set of pages belonging to one segment, with a simple first-fit-from-tail
/// placement policy.
#[derive(Debug, Clone, Default)]
pub(crate) struct PageSet {
    pages: Vec<PageMeta>,
}

impl PageSet {
    /// Place a record of `size` bytes; returns the page index.
    ///
    /// Placement is "last page first, else scan, else grow": appends cluster
    /// naturally, while freed space in earlier pages is still reused.
    pub fn place(&mut self, size: usize, page_size: usize) -> u32 {
        // Oversized records get a dedicated run of pages; we model that as a
        // single page holding more than page_size bytes (counted once).
        if let Some(last) = self.pages.last() {
            if last.free(page_size) >= size {
                let idx = self.pages.len() - 1;
                self.pages[idx].bytes_used += size;
                self.pages[idx].records += 1;
                return idx as u32;
            }
        }
        for (idx, page) in self.pages.iter_mut().enumerate() {
            if page.free(page_size) >= size {
                page.bytes_used += size;
                page.records += 1;
                return idx as u32;
            }
        }
        self.pages.push(PageMeta { bytes_used: size, records: 1 });
        (self.pages.len() - 1) as u32
    }

    /// Release `size` bytes of a record from `page`.
    pub fn release(&mut self, page: u32, size: usize) {
        let p = &mut self.pages[page as usize];
        p.bytes_used = p.bytes_used.saturating_sub(size);
        p.records = p.records.saturating_sub(1);
    }

    /// Try to grow a record in place on its page; returns `false` when the
    /// page cannot absorb the delta and the record must be relocated.
    pub fn try_grow(&mut self, page: u32, delta: usize, page_size: usize) -> bool {
        let p = &mut self.pages[page as usize];
        if p.free(page_size) >= delta {
            p.bytes_used += delta;
            true
        } else {
            false
        }
    }

    /// Shrink a record in place (always succeeds).
    pub fn shrink(&mut self, page: u32, delta: usize) {
        let p = &mut self.pages[page as usize];
        p.bytes_used = p.bytes_used.saturating_sub(delta);
    }

    /// Total number of pages ever allocated (empty pages are not reclaimed;
    /// this mirrors a real store's high-water mark).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes used across all pages.
    pub fn bytes_used(&self) -> usize {
        self.pages.iter().map(|p| p.bytes_used).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 100;

    #[test]
    fn placement_fills_tail_page_first() {
        let mut set = PageSet::default();
        assert_eq!(set.place(40, PS), 0);
        assert_eq!(set.place(40, PS), 0);
        // 80 used, 20 free: a 40-byte record opens page 1.
        assert_eq!(set.place(40, PS), 1);
        assert_eq!(set.page_count(), 2);
        assert_eq!(set.bytes_used(), 120);
    }

    #[test]
    fn placement_reuses_freed_space_in_earlier_pages() {
        let mut set = PageSet::default();
        let a = set.place(90, PS);
        let _b = set.place(90, PS);
        set.release(a, 90);
        // Tail page (1) has 10 free, page 0 is empty: record goes to page 0.
        assert_eq!(set.place(50, PS), 0);
    }

    #[test]
    fn grow_and_shrink_update_occupancy() {
        let mut set = PageSet::default();
        let p = set.place(50, PS);
        assert!(set.try_grow(p, 30, PS));
        assert_eq!(set.bytes_used(), 80);
        assert!(!set.try_grow(p, 30, PS), "only 20 bytes free");
        set.shrink(p, 60);
        assert_eq!(set.bytes_used(), 20);
    }

    #[test]
    fn oversized_record_gets_its_own_page() {
        let mut set = PageSet::default();
        let p = set.place(450, PS);
        assert_eq!(p, 0);
        assert_eq!(set.page_count(), 1);
        // Nothing else fits on the oversized page.
        assert_eq!(set.place(10, PS), 1);
    }
}
