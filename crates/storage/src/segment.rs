//! A segment: the per-class record arena.
//!
//! The object-slicing model stores the slices of all objects of one class in
//! that class's segment, which is what makes same-class slices cluster on the
//! same pages (the locality property Table 1 of the paper relies on).

use crate::page::PageSet;
use crate::payload::Payload;

/// Fixed per-record header overhead charged to the record's page
/// (slot pointer + length + oid back-pointer, as a real slotted page would).
pub(crate) const RECORD_OVERHEAD: usize = 16;

#[derive(Debug, Clone)]
pub(crate) struct Record<P> {
    pub fields: Vec<P>,
    pub page: u32,
    pub bytes: usize,
}

#[derive(Debug, Clone)]
pub(crate) struct Segment<P> {
    pub name: String,
    slots: Vec<Option<Record<P>>>,
    free: Vec<u32>,
    pub pages: PageSet,
}

pub(crate) fn record_bytes<P: Payload>(fields: &[P]) -> usize {
    RECORD_OVERHEAD + fields.iter().map(|f| f.byte_size()).sum::<usize>()
}

impl<P: Payload> Segment<P> {
    pub fn new(name: String) -> Self {
        Segment { name, slots: Vec::new(), free: Vec::new(), pages: PageSet::default() }
    }

    /// Insert a record; returns (slot, page).
    pub fn insert(&mut self, fields: Vec<P>, page_size: usize) -> (u32, u32) {
        let bytes = record_bytes(&fields);
        let page = self.pages.place(bytes, page_size);
        let record = Record { fields, page, bytes };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(record);
                slot
            }
            None => {
                self.slots.push(Some(record));
                (self.slots.len() - 1) as u32
            }
        };
        (slot, page)
    }

    /// Re-insert a record into a *specific* slot (transaction rollback of a
    /// free). The slot must currently be empty.
    pub fn restore(&mut self, slot: u32, fields: Vec<P>, page_size: usize) {
        let bytes = record_bytes(&fields);
        let page = self.pages.place(bytes, page_size);
        while self.slots.len() <= slot as usize {
            // Padding holes are genuinely free slots and must be reusable.
            self.free.push(self.slots.len() as u32);
            self.slots.push(None);
        }
        debug_assert!(self.slots[slot as usize].is_none(), "restore over live record");
        self.free.retain(|s| *s != slot);
        self.slots[slot as usize] = Some(Record { fields, page, bytes });
    }

    pub fn get(&self, slot: u32) -> Option<&Record<P>> {
        self.slots.get(slot as usize).and_then(|r| r.as_ref())
    }

    pub fn get_mut(&mut self, slot: u32) -> Option<&mut Record<P>> {
        self.slots.get_mut(slot as usize).and_then(|r| r.as_mut())
    }

    /// Remove a record, returning its fields. The slot is recycled.
    pub fn free(&mut self, slot: u32) -> Option<Vec<P>> {
        let record = self.slots.get_mut(slot as usize)?.take()?;
        self.pages.release(record.page, record.bytes);
        self.free.push(slot);
        Some(record.fields)
    }

    /// Resize bookkeeping after a field mutation. Returns the (possibly new)
    /// page and whether the record moved.
    pub fn resize(&mut self, slot: u32, page_size: usize) -> (u32, bool) {
        let record = self.slots[slot as usize].as_mut().expect("resize of freed record");
        let new_bytes = record_bytes(&record.fields);
        let old_bytes = record.bytes;
        let page = record.page;
        if new_bytes == old_bytes {
            return (page, false);
        }
        if new_bytes < old_bytes {
            self.pages.shrink(page, old_bytes - new_bytes);
            record.bytes = new_bytes;
            return (page, false);
        }
        let delta = new_bytes - old_bytes;
        if self.pages.try_grow(page, delta, page_size) {
            record.bytes = new_bytes;
            (page, false)
        } else {
            // Relocate: release old space, place at new page.
            self.pages.release(page, old_bytes);
            let new_page = self.pages.place(new_bytes, page_size);
            let record = self.slots[slot as usize].as_mut().unwrap();
            record.page = new_page;
            record.bytes = new_bytes;
            // `place`/`release` both adjusted record counts; fix the double
            // count (release decremented, place incremented → net zero).
            (new_page, true)
        }
    }

    /// Iterate live `(slot, record)` pairs in slot order (page-clustered for
    /// append-mostly workloads).
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Record<P>)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|rec| (i as u32, rec)))
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Highest slot index ever used (for snapshot encoding).
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::SimplePayload as SP;

    const PS: usize = 128;

    #[test]
    fn insert_get_free_roundtrip() {
        let mut seg: Segment<SP> = Segment::new("Person".into());
        let (slot, _page) = seg.insert(vec![SP::Int(1), SP::Str("ann".into())], PS);
        assert_eq!(seg.len(), 1);
        assert_eq!(seg.get(slot).unwrap().fields[1], SP::Str("ann".into()));
        let fields = seg.free(slot).unwrap();
        assert_eq!(fields.len(), 2);
        assert_eq!(seg.len(), 0);
        assert!(seg.get(slot).is_none());
    }

    #[test]
    fn freed_slots_are_recycled() {
        let mut seg: Segment<SP> = Segment::new("s".into());
        let (a, _) = seg.insert(vec![SP::Int(1)], PS);
        let (_b, _) = seg.insert(vec![SP::Int(2)], PS);
        seg.free(a);
        let (c, _) = seg.insert(vec![SP::Int(3)], PS);
        assert_eq!(c, a, "slot should be recycled");
        assert_eq!(seg.slot_capacity(), 2);
    }

    #[test]
    fn restore_rebuilds_exact_slot() {
        let mut seg: Segment<SP> = Segment::new("s".into());
        let (a, _) = seg.insert(vec![SP::Int(1)], PS);
        let fields = seg.free(a).unwrap();
        seg.restore(a, fields, PS);
        assert_eq!(seg.get(a).unwrap().fields[0], SP::Int(1));
        // The free list no longer offers slot `a`.
        let (b, _) = seg.insert(vec![SP::Int(2)], PS);
        assert_ne!(a, b);
    }

    #[test]
    fn growth_past_page_capacity_relocates() {
        let mut seg: Segment<SP> = Segment::new("s".into());
        // Two records nearly filling page 0 (each 16 + 9 = 25 bytes).
        let (a, p0) = seg.insert(vec![SP::Int(1)], PS);
        for _ in 0..3 {
            seg.insert(vec![SP::Int(0)], PS);
        }
        assert_eq!(seg.pages.page_count(), 1);
        // Grow record a by a large string → must move to a fresh page.
        seg.get_mut(a).unwrap().fields.push(SP::Str("x".repeat(120)));
        let (p_new, moved) = seg.resize(a, PS);
        assert!(moved);
        assert_ne!(p_new, p0);
    }

    #[test]
    fn shrink_stays_in_place() {
        let mut seg: Segment<SP> = Segment::new("s".into());
        let (a, p0) = seg.insert(vec![SP::Str("x".repeat(50))], PS);
        seg.get_mut(a).unwrap().fields[0] = SP::Int(1);
        let (p, moved) = seg.resize(a, PS);
        assert!(!moved);
        assert_eq!(p, p0);
    }

    #[test]
    fn iter_skips_freed() {
        let mut seg: Segment<SP> = Segment::new("s".into());
        let (a, _) = seg.insert(vec![SP::Int(1)], PS);
        let (_b, _) = seg.insert(vec![SP::Int(2)], PS);
        seg.free(a);
        let live: Vec<u32> = seg.iter().map(|(s, _)| s).collect();
        assert_eq!(live, vec![1]);
    }
}
