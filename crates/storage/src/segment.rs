//! A segment: the per-class record arena, now multi-versioned.
//!
//! The object-slicing model stores the slices of all objects of one class in
//! that class's segment, which is what makes same-class slices cluster on the
//! same pages (the locality property Table 1 of the paper relies on).
//!
//! Each slot holds a small **version chain** ordered by write stamp. A
//! mutation never overwrites the current fields in place — it pushes a new
//! [`Version`] stamped by the mutating batch; a delete pushes a *tombstone*
//! (a version with no fields). Readers resolve a slot against an epoch:
//! the newest version whose stamp is ≤ the epoch. Page accounting tracks
//! only the **current** (latest) version — superseded versions are pure
//! history awaiting [`Segment::gc`], which prunes everything unreachable
//! from the GC watermark and only then recycles fully-dead slots.

use crate::page::PageSet;
use crate::payload::Payload;

/// Fixed per-record header overhead charged to the record's page
/// (slot pointer + length + oid back-pointer, as a real slotted page would).
pub(crate) const RECORD_OVERHEAD: usize = 16;

/// One entry in a slot's version chain. `fields: None` is a tombstone: the
/// record is deleted at and after `stamp`.
#[derive(Debug, Clone)]
pub(crate) struct Version<P> {
    pub stamp: u64,
    pub fields: Option<Vec<P>>,
}

/// A record slot: its version chain (oldest first, stamp-sorted) plus page
/// accounting for the current version only.
#[derive(Debug, Clone)]
pub(crate) struct Record<P> {
    pub versions: Vec<Version<P>>,
    pub page: u32,
    pub bytes: usize,
}

impl<P> Record<P> {
    /// The latest version's fields; `None` when the record is currently a
    /// tombstone.
    pub fn current(&self) -> Option<&Vec<P>> {
        self.versions.last().and_then(|v| v.fields.as_ref())
    }

    /// The fields visible at `epoch`: the newest version stamped ≤ `epoch`.
    /// `None` if the record did not exist yet or was deleted at that epoch.
    pub fn visible_at(&self, epoch: u64) -> Option<&Vec<P>> {
        self.versions
            .iter()
            .rev()
            .find(|v| v.stamp <= epoch)
            .and_then(|v| v.fields.as_ref())
    }

    /// Resolve against an optional pinned epoch (`None` = latest).
    pub fn fields_at(&self, epoch: Option<u64>) -> Option<&Vec<P>> {
        match epoch {
            Some(e) => self.visible_at(e),
            None => self.current(),
        }
    }

    /// Superseded (non-current) version entries in this chain.
    pub fn history_len(&self) -> usize {
        self.versions.len().saturating_sub(1)
    }

    /// Insert a version keeping the chain stamp-sorted. Concurrent tickets
    /// can finish out of stamp order, so a late-arriving lower stamp is
    /// spliced into place; equal stamps append after (latest-of-equals
    /// wins on the reverse-scan in [`Record::visible_at`]).
    fn push_version(&mut self, version: Version<P>) {
        match self.versions.last() {
            Some(last) if last.stamp > version.stamp => {
                let pos = self.versions.partition_point(|v| v.stamp <= version.stamp);
                self.versions.insert(pos, version);
            }
            _ => self.versions.push(version),
        }
    }
}

/// Outcome of popping the newest version off a slot (transaction rollback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PopOutcome {
    /// The popped version was the only one: the slot is empty again
    /// (rolled back an insert).
    Removed,
    /// The popped version was a tombstone: the record is live again
    /// (rolled back a delete).
    Undeleted,
    /// The popped version superseded an older live one, which is current
    /// again (rolled back a field write).
    Reverted,
    /// No record at the slot (caller bug; tolerated in release builds).
    Missing,
}

#[derive(Debug, Clone)]
pub(crate) struct Segment<P> {
    pub name: String,
    slots: Vec<Option<Record<P>>>,
    free: Vec<u32>,
    pub pages: PageSet,
}

pub(crate) fn record_bytes<P: Payload>(fields: &[P]) -> usize {
    RECORD_OVERHEAD + fields.iter().map(|f| f.byte_size()).sum::<usize>()
}

impl<P: Payload> Segment<P> {
    pub fn new(name: String) -> Self {
        Segment { name, slots: Vec::new(), free: Vec::new(), pages: PageSet::default() }
    }

    /// Insert a record as a single version stamped `stamp`; returns
    /// (slot, page). Only slots reclaimed by [`Segment::gc`] are reused —
    /// a tombstoned slot still carries history some pinned reader needs.
    pub fn insert(&mut self, fields: Vec<P>, page_size: usize, stamp: u64) -> (u32, u32) {
        let bytes = record_bytes(&fields);
        let page = self.pages.place(bytes, page_size);
        let record =
            Record { versions: vec![Version { stamp, fields: Some(fields) }], page, bytes };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(record);
                slot
            }
            None => {
                self.slots.push(Some(record));
                (self.slots.len() - 1) as u32
            }
        };
        (slot, page)
    }

    /// Re-create a record in a *specific* slot (snapshot decode). The slot
    /// must currently be empty; the record starts as a single version with
    /// the bootstrap stamp 0, visible at every epoch.
    pub fn restore(&mut self, slot: u32, fields: Vec<P>, page_size: usize) {
        let bytes = record_bytes(&fields);
        let page = self.pages.place(bytes, page_size);
        while self.slots.len() <= slot as usize {
            // Padding holes are genuinely free slots and must be reusable.
            self.free.push(self.slots.len() as u32);
            self.slots.push(None);
        }
        debug_assert!(self.slots[slot as usize].is_none(), "restore over live record");
        self.free.retain(|s| *s != slot);
        self.slots[slot as usize] =
            Some(Record { versions: vec![Version { stamp: 0, fields: Some(fields) }], page, bytes });
    }

    /// Raw access to a slot's record (version chain included).
    pub fn record(&self, slot: u32) -> Option<&Record<P>> {
        self.slots.get(slot as usize).and_then(|r| r.as_ref())
    }

    /// The fields visible at `epoch` (`None` = latest) for a slot.
    pub fn fields_at(&self, slot: u32, epoch: Option<u64>) -> Option<&Vec<P>> {
        self.record(slot).and_then(|r| r.fields_at(epoch))
    }

    /// Apply a field mutation as a **new version** stamped `stamp`: the
    /// current fields are cloned, `f` edits the clone, and on `Ok` the
    /// result is pushed onto the chain (page accounting follows the new
    /// current size — shrink in place, grow in place, or relocate).
    ///
    /// Returns `None` when the slot is unknown or currently deleted;
    /// `Some(Err(e))` passes through `f`'s error with **no version pushed**.
    /// On success the payload is `(f's result, page, moved)`.
    pub fn modify<R, E>(
        &mut self,
        slot: u32,
        stamp: u64,
        page_size: usize,
        f: impl FnOnce(&mut Vec<P>) -> Result<R, E>,
    ) -> Option<Result<(R, u32, bool), E>> {
        let record = self.slots.get_mut(slot as usize)?.as_mut()?;
        let mut fields = record.current()?.clone();
        let out = match f(&mut fields) {
            Ok(r) => r,
            Err(e) => return Some(Err(e)),
        };
        let new_bytes = record_bytes(&fields);
        let old_bytes = record.bytes;
        let old_page = record.page;
        record.push_version(Version { stamp, fields: Some(fields) });
        let (page, moved) = if new_bytes == old_bytes {
            (old_page, false)
        } else if new_bytes < old_bytes {
            self.pages.shrink(old_page, old_bytes - new_bytes);
            (old_page, false)
        } else if self.pages.try_grow(old_page, new_bytes - old_bytes, page_size) {
            (old_page, false)
        } else {
            // Relocate: release old space, place at a fresh page.
            self.pages.release(old_page, old_bytes);
            let new_page = self.pages.place(new_bytes, page_size);
            (new_page, true)
        };
        let record = self.slots[slot as usize].as_mut().unwrap();
        record.page = page;
        record.bytes = new_bytes;
        Some(Ok((out, page, moved)))
    }

    /// Delete a record by pushing a tombstone stamped `stamp`, returning a
    /// clone of the fields it superseded. The page charge is released but
    /// the slot is **not** recycled — pinned readers may still resolve the
    /// live history; [`Segment::gc`] reclaims the slot once unreachable.
    pub fn free(&mut self, slot: u32, stamp: u64) -> Option<Vec<P>> {
        let record = self.slots.get_mut(slot as usize)?.as_mut()?;
        let fields = record.current()?.clone();
        record.push_version(Version { stamp, fields: None });
        let page = record.page;
        let bytes = record.bytes;
        record.page = 0;
        record.bytes = 0;
        self.pages.release(page, bytes);
        Some(fields)
    }

    /// Pop the newest version off a slot (transaction rollback of the
    /// mutation that pushed it), restoring page accounting for whatever
    /// version is current afterwards.
    pub fn pop_version(&mut self, slot: u32, page_size: usize) -> PopOutcome {
        let Some(record) = self.slots.get_mut(slot as usize).and_then(|r| r.as_mut()) else {
            debug_assert!(false, "pop_version on empty slot");
            return PopOutcome::Missing;
        };
        let popped = record.versions.pop().expect("record with empty version chain");
        let was_live = popped.fields.is_some();
        if was_live {
            // The popped version owned the page charge.
            let (page, bytes) = (record.page, record.bytes);
            self.pages.release(page, bytes);
        }
        match record.versions.last() {
            None => {
                self.slots[slot as usize] = None;
                self.free.push(slot);
                PopOutcome::Removed
            }
            Some(now) => {
                if let Some(fields) = now.fields.as_ref() {
                    let bytes = record_bytes(fields);
                    let page = self.pages.place(bytes, page_size);
                    let record = self.slots[slot as usize].as_mut().unwrap();
                    record.page = page;
                    record.bytes = bytes;
                    if was_live { PopOutcome::Reverted } else { PopOutcome::Undeleted }
                } else {
                    // Current is (still) a tombstone; nothing to re-charge.
                    let record = self.slots[slot as usize].as_mut().unwrap();
                    record.page = 0;
                    record.bytes = 0;
                    PopOutcome::Reverted
                }
            }
        }
    }

    /// Prune version history unreachable from `watermark`: for every slot,
    /// drop all versions older than the one visible at the watermark, and
    /// recycle slots whose only surviving version is a tombstone. Returns
    /// the number of version entries reclaimed.
    pub fn gc(&mut self, watermark: u64) -> u64 {
        let mut reclaimed = 0u64;
        for i in 0..self.slots.len() {
            let Some(record) = self.slots[i].as_mut() else { continue };
            // Index of the version visible at the watermark (newest with
            // stamp ≤ watermark); everything before it is unreachable.
            let visible = record.versions.iter().rposition(|v| v.stamp <= watermark);
            if let Some(keep_from) = visible {
                if keep_from > 0 {
                    record.versions.drain(..keep_from);
                    reclaimed += keep_from as u64;
                }
            }
            // A slot whose entire surviving chain is a single tombstone
            // visible at the watermark is dead to every possible reader.
            if record.versions.len() == 1
                && record.versions[0].fields.is_none()
                && record.versions[0].stamp <= watermark
            {
                reclaimed += 1;
                self.slots[i] = None;
                self.free.push(i as u32);
            }
        }
        reclaimed
    }

    /// Superseded (non-current) version entries across the segment.
    pub fn version_backlog(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|r| {
                let hist = r.history_len() as u64;
                // A slot currently tombstoned carries the tombstone itself
                // as reclaimable backlog too.
                if r.current().is_none() { hist + 1 } else { hist }
            })
            .sum()
    }

    /// Iterate `(slot, fields)` pairs visible at `epoch` (`None` = latest)
    /// in slot order (page-clustered for append-mostly workloads).
    pub fn iter_at(&self, epoch: Option<u64>) -> impl Iterator<Item = (u32, &Vec<P>)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, r)| {
                r.as_ref().and_then(|rec| rec.fields_at(epoch)).map(|f| (i as u32, f))
            })
    }

    /// Iterate `(slot, record)` pairs whose slot is occupied (live or
    /// tombstoned) — raw chain access for snapshot encoding and scrubbing.
    pub fn iter_records(&self) -> impl Iterator<Item = (u32, &Record<P>)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|rec| (i as u32, rec)))
    }

    /// Number of records live at the latest epoch.
    pub fn len(&self) -> usize {
        self.slots.iter().flatten().filter(|r| r.current().is_some()).count()
    }

    /// Highest slot index ever used (for snapshot encoding).
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::SimplePayload as SP;

    const PS: usize = 128;

    fn set_field(seg: &mut Segment<SP>, slot: u32, stamp: u64, idx: usize, v: SP) {
        seg.modify(slot, stamp, PS, |fields| {
            fields[idx] = v;
            Ok::<(), ()>(())
        })
        .unwrap()
        .unwrap();
    }

    #[test]
    fn insert_get_free_roundtrip() {
        let mut seg: Segment<SP> = Segment::new("Person".into());
        let (slot, _page) = seg.insert(vec![SP::Int(1), SP::Str("ann".into())], PS, 1);
        assert_eq!(seg.len(), 1);
        assert_eq!(seg.fields_at(slot, None).unwrap()[1], SP::Str("ann".into()));
        let fields = seg.free(slot, 2).unwrap();
        assert_eq!(fields.len(), 2);
        assert_eq!(seg.len(), 0);
        assert!(seg.fields_at(slot, None).is_none(), "deleted at latest");
        assert!(seg.fields_at(slot, Some(1)).is_some(), "still visible at epoch 1");
    }

    #[test]
    fn freed_slots_are_recycled_after_gc() {
        let mut seg: Segment<SP> = Segment::new("s".into());
        let (a, _) = seg.insert(vec![SP::Int(1)], PS, 1);
        let (_b, _) = seg.insert(vec![SP::Int(2)], PS, 2);
        seg.free(a, 3);
        // Before GC the tombstoned slot still holds history for pinned
        // readers — a fresh insert must not reuse it.
        let (c, _) = seg.insert(vec![SP::Int(3)], PS, 4);
        assert_ne!(c, a, "tombstoned slot must not be reused before gc");
        let reclaimed = seg.gc(4);
        assert!(reclaimed >= 1);
        let (d, _) = seg.insert(vec![SP::Int(4)], PS, 5);
        assert_eq!(d, a, "slot recycled once history is unreachable");
    }

    #[test]
    fn restore_rebuilds_exact_slot() {
        let mut seg: Segment<SP> = Segment::new("s".into());
        let (a, _) = seg.insert(vec![SP::Int(1)], PS, 1);
        let fields = seg.free(a, 2).unwrap();
        seg.gc(2);
        seg.restore(a, fields, PS);
        assert_eq!(seg.fields_at(a, None).unwrap()[0], SP::Int(1));
        // Restored records are visible at every epoch (bootstrap stamp 0).
        assert_eq!(seg.fields_at(a, Some(0)).unwrap()[0], SP::Int(1));
        // The free list no longer offers slot `a`.
        let (b, _) = seg.insert(vec![SP::Int(2)], PS, 3);
        assert_ne!(a, b);
    }

    #[test]
    fn growth_past_page_capacity_relocates() {
        let mut seg: Segment<SP> = Segment::new("s".into());
        // Several records nearly filling page 0 (each 16 + 9 = 25 bytes).
        let (a, p0) = seg.insert(vec![SP::Int(1)], PS, 1);
        for _ in 0..3 {
            seg.insert(vec![SP::Int(0)], PS, 1);
        }
        assert_eq!(seg.pages.page_count(), 1);
        // Grow record a by a large string → must move to a fresh page.
        let (_, p_new, moved) = seg
            .modify(a, 2, PS, |fields| {
                fields.push(SP::Str("x".repeat(120)));
                Ok::<(), ()>(())
            })
            .unwrap()
            .unwrap();
        assert!(moved);
        assert_ne!(p_new, p0);
    }

    #[test]
    fn shrink_stays_in_place() {
        let mut seg: Segment<SP> = Segment::new("s".into());
        let (a, p0) = seg.insert(vec![SP::Str("x".repeat(50))], PS, 1);
        let (_, p, moved) = seg
            .modify(a, 2, PS, |fields| {
                fields[0] = SP::Int(1);
                Ok::<(), ()>(())
            })
            .unwrap()
            .unwrap();
        assert!(!moved);
        assert_eq!(p, p0);
    }

    #[test]
    fn iter_skips_freed() {
        let mut seg: Segment<SP> = Segment::new("s".into());
        let (a, _) = seg.insert(vec![SP::Int(1)], PS, 1);
        let (_b, _) = seg.insert(vec![SP::Int(2)], PS, 2);
        seg.free(a, 3);
        let live: Vec<u32> = seg.iter_at(None).map(|(s, _)| s).collect();
        assert_eq!(live, vec![1]);
        // But the pre-delete epoch still sees both.
        let pinned: Vec<u32> = seg.iter_at(Some(2)).map(|(s, _)| s).collect();
        assert_eq!(pinned, vec![0, 1]);
    }

    #[test]
    fn epoch_reads_are_repeatable_across_overwrites() {
        let mut seg: Segment<SP> = Segment::new("s".into());
        let (a, _) = seg.insert(vec![SP::Int(10)], PS, 1);
        set_field(&mut seg, a, 5, 0, SP::Int(50));
        set_field(&mut seg, a, 9, 0, SP::Int(90));
        assert_eq!(seg.fields_at(a, Some(1)).unwrap()[0], SP::Int(10));
        assert_eq!(seg.fields_at(a, Some(4)).unwrap()[0], SP::Int(10));
        assert_eq!(seg.fields_at(a, Some(5)).unwrap()[0], SP::Int(50));
        assert_eq!(seg.fields_at(a, Some(8)).unwrap()[0], SP::Int(50));
        assert_eq!(seg.fields_at(a, None).unwrap()[0], SP::Int(90));
        assert!(seg.fields_at(a, Some(0)).is_none(), "not yet inserted at epoch 0");
    }

    #[test]
    fn failed_modify_pushes_no_version() {
        let mut seg: Segment<SP> = Segment::new("s".into());
        let (a, _) = seg.insert(vec![SP::Int(1)], PS, 1);
        let r = seg.modify(a, 2, PS, |_| Err::<(), &str>("nope")).unwrap();
        assert!(r.is_err());
        assert_eq!(seg.record(a).unwrap().versions.len(), 1);
        assert_eq!(seg.fields_at(a, None).unwrap()[0], SP::Int(1));
    }

    #[test]
    fn pop_version_rolls_back_in_reverse() {
        let mut seg: Segment<SP> = Segment::new("s".into());
        let (a, _) = seg.insert(vec![SP::Int(1)], PS, 1);
        set_field(&mut seg, a, 2, 0, SP::Int(2));
        seg.free(a, 3);
        assert_eq!(seg.pop_version(a, PS), PopOutcome::Undeleted);
        assert_eq!(seg.fields_at(a, None).unwrap()[0], SP::Int(2));
        assert_eq!(seg.pop_version(a, PS), PopOutcome::Reverted);
        assert_eq!(seg.fields_at(a, None).unwrap()[0], SP::Int(1));
        assert_eq!(seg.pop_version(a, PS), PopOutcome::Removed);
        assert_eq!(seg.len(), 0);
        // Rolled-back insert frees the slot immediately (nothing was ever
        // visible to any reader — the txn never published).
        let (b, _) = seg.insert(vec![SP::Int(9)], PS, 4);
        assert_eq!(b, a);
    }

    #[test]
    fn gc_prunes_superseded_versions() {
        let mut seg: Segment<SP> = Segment::new("s".into());
        let (a, _) = seg.insert(vec![SP::Int(1)], PS, 1);
        set_field(&mut seg, a, 2, 0, SP::Int(2));
        set_field(&mut seg, a, 3, 0, SP::Int(3));
        assert_eq!(seg.version_backlog(), 2);
        // Watermark 2: the version at stamp 2 is still visible to a pinned
        // reader; only the stamp-1 original is unreachable.
        assert_eq!(seg.gc(2), 1);
        assert_eq!(seg.fields_at(a, Some(2)).unwrap()[0], SP::Int(2));
        assert_eq!(seg.gc(3), 1);
        assert_eq!(seg.version_backlog(), 0);
        assert_eq!(seg.fields_at(a, None).unwrap()[0], SP::Int(3));
    }

    #[test]
    fn page_accounting_tracks_current_version_only() {
        let mut seg: Segment<SP> = Segment::new("s".into());
        let (a, _) = seg.insert(vec![SP::Str("x".repeat(40))], PS, 1);
        let before = seg.pages.bytes_used();
        set_field(&mut seg, a, 2, 0, SP::Int(1));
        assert!(
            seg.pages.bytes_used() < before,
            "history bytes are not page-charged: {} vs {}",
            seg.pages.bytes_used(),
            before
        );
        seg.free(a, 3);
        assert_eq!(seg.pages.bytes_used(), 0);
    }
}
