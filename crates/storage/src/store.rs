//! The store: segments + buffer pool + counters + transactions.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::failpoint::FailpointRegistry;
use crate::payload::Payload;
use crate::segment::Segment;
use crate::stats::StoreStats;
use crate::txn::{TxnState, TxnToken, Undo};

/// Identifies a segment (one per class in the object model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u32);

/// Identifies a record: a slot within a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// Segment holding the record.
    pub segment: SegmentId,
    /// Slot index inside the segment.
    pub slot: u32,
}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Simulated page size in bytes.
    pub page_size: usize,
    /// Buffer pool capacity in pages.
    pub buffer_pages: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { page_size: 4096, buffer_pages: 256 }
    }
}

#[derive(Debug, Default)]
struct AtomicStats {
    record_reads: AtomicU64,
    record_writes: AtomicU64,
    page_hits: AtomicU64,
    page_misses: AtomicU64,
    records_allocated: AtomicU64,
    records_freed: AtomicU64,
    record_moves: AtomicU64,
}

impl AtomicStats {
    fn from_snapshot(s: StoreStats) -> Self {
        AtomicStats {
            record_reads: AtomicU64::new(s.record_reads),
            record_writes: AtomicU64::new(s.record_writes),
            page_hits: AtomicU64::new(s.page_hits),
            page_misses: AtomicU64::new(s.page_misses),
            records_allocated: AtomicU64::new(s.records_allocated),
            records_freed: AtomicU64::new(s.records_freed),
            record_moves: AtomicU64::new(s.record_moves),
        }
    }

    fn snapshot(&self) -> StoreStats {
        StoreStats {
            record_reads: self.record_reads.load(Ordering::Relaxed),
            record_writes: self.record_writes.load(Ordering::Relaxed),
            page_hits: self.page_hits.load(Ordering::Relaxed),
            page_misses: self.page_misses.load(Ordering::Relaxed),
            records_allocated: self.records_allocated.load(Ordering::Relaxed),
            records_freed: self.records_freed.load(Ordering::Relaxed),
            record_moves: self.record_moves.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.record_reads.store(0, Ordering::Relaxed);
        self.record_writes.store(0, Ordering::Relaxed);
        self.page_hits.store(0, Ordering::Relaxed);
        self.page_misses.store(0, Ordering::Relaxed);
        self.records_allocated.store(0, Ordering::Relaxed);
        self.records_freed.store(0, Ordering::Relaxed);
        self.record_moves.store(0, Ordering::Relaxed);
    }
}

/// The paged record store. Generic over the field payload type.
///
/// Reads take `&self` (buffer/counter state uses interior mutability so that
/// concurrent readers under an outer `RwLock` still account correctly);
/// mutations take `&mut self`.
#[derive(Debug)]
pub struct SliceStore<P: Payload> {
    config: StoreConfig,
    segments: Vec<Option<Segment<P>>>,
    buffer: Mutex<BufferPool>,
    stats: AtomicStats,
    txn: TxnState<P>,
    failpoints: FailpointRegistry,
}

impl<P: Payload> Default for SliceStore<P> {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl<P: Payload> SliceStore<P> {
    /// Create an empty store with the given configuration.
    pub fn new(config: StoreConfig) -> Self {
        SliceStore {
            config,
            segments: Vec::new(),
            buffer: Mutex::new(BufferPool::new(config.buffer_pages)),
            stats: AtomicStats::default(),
            txn: TxnState::default(),
            failpoints: FailpointRegistry::new(),
        }
    }

    /// The configuration this store was created with.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// The fault-injection registry consulted by this store's mutation
    /// paths (site `storage.insert`). The handle is cheap to clone and
    /// shared — arming it from a test affects this store immediately.
    pub fn failpoints(&self) -> &FailpointRegistry {
        &self.failpoints
    }

    /// Replace the registry (used to share one registry between a store,
    /// the durable layer, and the evolution pipeline of one system).
    pub fn set_failpoints(&mut self, failpoints: FailpointRegistry) {
        self.failpoints = failpoints;
    }

    // ----- segments -------------------------------------------------------

    /// Create a new segment (a per-class record arena).
    pub fn create_segment(&mut self, name: &str) -> SegmentId {
        let id = SegmentId(self.segments.len() as u32);
        self.segments.push(Some(Segment::new(name.to_string())));
        if self.txn.active.is_some() {
            self.txn.record(Undo::CreateSegment { seg: id });
        }
        id
    }

    /// Drop a segment and everything in it. Not permitted inside a
    /// transaction (segment drops are not undoable).
    pub fn drop_segment(&mut self, seg: SegmentId) -> StorageResult<()> {
        if self.txn.active.is_some() {
            return Err(StorageError::TxnState("drop_segment inside a transaction"));
        }
        let slot = self
            .segments
            .get_mut(seg.0 as usize)
            .ok_or(StorageError::UnknownSegment(seg.0))?;
        if slot.is_none() {
            return Err(StorageError::UnknownSegment(seg.0));
        }
        *slot = None;
        self.buffer.lock().evict_segment(seg.0);
        Ok(())
    }

    /// Name the segment was created with.
    pub fn segment_name(&self, seg: SegmentId) -> StorageResult<&str> {
        Ok(&self.segment(seg)?.name)
    }

    /// Number of live records in a segment.
    pub fn segment_len(&self, seg: SegmentId) -> StorageResult<usize> {
        Ok(self.segment(seg)?.len())
    }

    /// Number of pages a segment occupies.
    pub fn segment_pages(&self, seg: SegmentId) -> StorageResult<usize> {
        Ok(self.segment(seg)?.pages.page_count())
    }

    /// Bytes used by a segment's records (incl. record headers).
    pub fn segment_bytes(&self, seg: SegmentId) -> StorageResult<usize> {
        Ok(self.segment(seg)?.pages.bytes_used())
    }

    /// All live segment ids with their names.
    pub fn segments(&self) -> impl Iterator<Item = (SegmentId, &str)> {
        self.segments
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|seg| (SegmentId(i as u32), seg.name.as_str())))
    }

    fn segment(&self, seg: SegmentId) -> StorageResult<&Segment<P>> {
        self.segments
            .get(seg.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or(StorageError::UnknownSegment(seg.0))
    }

    fn segment_mut(&mut self, seg: SegmentId) -> StorageResult<&mut Segment<P>> {
        self.segments
            .get_mut(seg.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(StorageError::UnknownSegment(seg.0))
    }

    // ----- records --------------------------------------------------------

    /// Insert a record into a segment. Failpoint site: `storage.insert`
    /// (fires *before* the record is allocated, so an injected failure
    /// leaves no half-inserted state).
    pub fn insert(&mut self, seg: SegmentId, fields: Vec<P>) -> StorageResult<RecordId> {
        self.failpoints.check("storage.insert")?;
        let page_size = self.config.page_size;
        let segment = self.segment_mut(seg)?;
        let (slot, page) = segment.insert(fields, page_size);
        let rec = RecordId { segment: seg, slot };
        self.stats.records_allocated.fetch_add(1, Ordering::Relaxed);
        self.touch_page(seg, page);
        if self.txn.active.is_some() {
            self.txn.record(Undo::Insert { rec });
        }
        Ok(rec)
    }

    /// Free a record, returning its fields.
    pub fn free(&mut self, rec: RecordId) -> StorageResult<Vec<P>> {
        let segment = self.segment_mut(rec.segment)?;
        let fields = segment
            .free(rec.slot)
            .ok_or(StorageError::UnknownRecord { segment: rec.segment.0, slot: rec.slot })?;
        self.stats.records_freed.fetch_add(1, Ordering::Relaxed);
        if self.txn.active.is_some() {
            self.txn.record(Undo::Free { rec, fields: fields.clone() });
        }
        Ok(fields)
    }

    /// Read a whole record (counts one record read and one page touch).
    pub fn read(&self, rec: RecordId) -> StorageResult<Vec<P>> {
        let segment = self.segment(rec.segment)?;
        let record = segment
            .get(rec.slot)
            .ok_or(StorageError::UnknownRecord { segment: rec.segment.0, slot: rec.slot })?;
        self.stats.record_reads.fetch_add(1, Ordering::Relaxed);
        self.touch_page(rec.segment, record.page);
        Ok(record.fields.clone())
    }

    /// Read one field of a record.
    pub fn read_field(&self, rec: RecordId, idx: usize) -> StorageResult<P> {
        let segment = self.segment(rec.segment)?;
        let record = segment
            .get(rec.slot)
            .ok_or(StorageError::UnknownRecord { segment: rec.segment.0, slot: rec.slot })?;
        self.stats.record_reads.fetch_add(1, Ordering::Relaxed);
        self.touch_page(rec.segment, record.page);
        record
            .fields
            .get(idx)
            .cloned()
            .ok_or(StorageError::FieldOutOfBounds { index: idx, len: record.fields.len() })
    }

    /// Number of fields in a record (no page touch; catalog metadata).
    pub fn field_count(&self, rec: RecordId) -> StorageResult<usize> {
        let segment = self.segment(rec.segment)?;
        let record = segment
            .get(rec.slot)
            .ok_or(StorageError::UnknownRecord { segment: rec.segment.0, slot: rec.slot })?;
        Ok(record.fields.len())
    }

    /// Overwrite one field of a record.
    pub fn write_field(&mut self, rec: RecordId, idx: usize, value: P) -> StorageResult<()> {
        let page_size = self.config.page_size;
        let segment = self.segment_mut(rec.segment)?;
        let record = segment
            .get_mut(rec.slot)
            .ok_or(StorageError::UnknownRecord { segment: rec.segment.0, slot: rec.slot })?;
        let len = record.fields.len();
        let old = record
            .fields
            .get_mut(idx)
            .ok_or(StorageError::FieldOutOfBounds { index: idx, len })?;
        let old_value = std::mem::replace(old, value);
        let (page, moved) = segment.resize(rec.slot, page_size);
        self.stats.record_writes.fetch_add(1, Ordering::Relaxed);
        if moved {
            self.stats.record_moves.fetch_add(1, Ordering::Relaxed);
        }
        self.touch_page(rec.segment, page);
        if self.txn.active.is_some() {
            self.txn.record(Undo::WriteField { rec, idx, old: old_value });
        }
        Ok(())
    }

    /// Append a field to a record (dynamic restructuring: a slice acquiring
    /// storage for a newly added stored attribute).
    pub fn append_field(&mut self, rec: RecordId, value: P) -> StorageResult<usize> {
        let page_size = self.config.page_size;
        let segment = self.segment_mut(rec.segment)?;
        let record = segment
            .get_mut(rec.slot)
            .ok_or(StorageError::UnknownRecord { segment: rec.segment.0, slot: rec.slot })?;
        record.fields.push(value);
        let new_idx = record.fields.len() - 1;
        let (page, moved) = segment.resize(rec.slot, page_size);
        self.stats.record_writes.fetch_add(1, Ordering::Relaxed);
        if moved {
            self.stats.record_moves.fetch_add(1, Ordering::Relaxed);
        }
        self.touch_page(rec.segment, page);
        if self.txn.active.is_some() {
            self.txn.record(Undo::PopField { rec });
        }
        Ok(new_idx)
    }

    /// Scan all live records of a segment in slot (≈ page) order, invoking
    /// `f` for each. Counts one record read + page touch per record.
    pub fn scan<F: FnMut(RecordId, &[P])>(&self, seg: SegmentId, mut f: F) -> StorageResult<()> {
        let segment = self.segment(seg)?;
        for (slot, record) in segment.iter() {
            self.stats.record_reads.fetch_add(1, Ordering::Relaxed);
            self.touch_page(seg, record.page);
            f(RecordId { segment: seg, slot }, &record.fields);
        }
        Ok(())
    }

    fn touch_page(&self, seg: SegmentId, page: u32) {
        let hit = self.buffer.lock().touch((seg.0, page));
        if hit {
            self.stats.page_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.page_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    // ----- forking --------------------------------------------------------

    /// A private copy of this store for control-plane work: same segments
    /// and records, cumulative counters carried over, a cold buffer pool,
    /// no open transaction, and the **same** (shared) failpoint registry.
    ///
    /// The TSE control plane forks the store so a schema change can run
    /// against a private copy while readers keep using the original; the
    /// evolved fork is swapped in under a short exclusive section. Forking
    /// while a transaction is open would silently drop the fork's undo
    /// history, so it is rejected.
    pub fn fork(&self) -> StorageResult<Self> {
        if self.txn.active.is_some() {
            return Err(StorageError::TxnState("fork inside a transaction"));
        }
        Ok(SliceStore {
            config: self.config,
            segments: self.segments.clone(),
            buffer: Mutex::new(BufferPool::new(self.config.buffer_pages)),
            stats: AtomicStats::from_snapshot(self.stats.snapshot()),
            txn: TxnState::default(),
            failpoints: self.failpoints.clone(),
        })
    }

    // ----- stats ----------------------------------------------------------

    /// Snapshot of the access counters. Each counter is loaded atomically;
    /// the snapshot as a whole is coherent for a quiescent store and
    /// monotone under concurrent readers (every counter is add-only), so
    /// `&self` reads from parallel threads never observe values going
    /// backwards.
    pub fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    /// Zero all access counters (does not evict the buffer pool).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Evict the whole buffer pool (cold-cache measurements).
    pub fn clear_buffer(&self) {
        self.buffer.lock().clear();
    }

    /// Total bytes used across all segments.
    pub fn total_bytes(&self) -> usize {
        self.segments
            .iter()
            .flatten()
            .map(|s| s.pages.bytes_used())
            .sum()
    }

    /// Total pages across all segments.
    pub fn total_pages(&self) -> usize {
        self.segments.iter().flatten().map(|s| s.pages.page_count()).sum()
    }

    // ----- transactions ---------------------------------------------------

    /// Begin a transaction. Errors if one is already open.
    pub fn begin_txn(&mut self) -> StorageResult<TxnToken> {
        if self.txn.active.is_some() {
            return Err(StorageError::TxnState("transaction already active"));
        }
        let id = self.txn.next_id;
        self.txn.next_id += 1;
        self.txn.active = Some(id);
        self.txn.log.clear();
        Ok(TxnToken(id))
    }

    /// Whether a transaction is currently open.
    pub fn in_txn(&self) -> bool {
        self.txn.active.is_some()
    }

    /// Commit: discard the undo log, making all mutations permanent.
    pub fn commit_txn(&mut self, token: TxnToken) -> StorageResult<()> {
        self.check_token(token)?;
        self.txn.active = None;
        self.txn.log.clear();
        Ok(())
    }

    /// Abort: roll every logged mutation back, in reverse order.
    pub fn abort_txn(&mut self, token: TxnToken) -> StorageResult<()> {
        self.check_token(token)?;
        self.txn.active = None;
        let log = std::mem::take(&mut self.txn.log);
        let page_size = self.config.page_size;
        for undo in log.into_iter().rev() {
            match undo {
                Undo::WriteField { rec, idx, old } => {
                    let segment = self.segment_mut(rec.segment)?;
                    if let Some(record) = segment.get_mut(rec.slot) {
                        record.fields[idx] = old;
                        segment.resize(rec.slot, page_size);
                    }
                }
                Undo::PopField { rec } => {
                    let segment = self.segment_mut(rec.segment)?;
                    if let Some(record) = segment.get_mut(rec.slot) {
                        record.fields.pop();
                        segment.resize(rec.slot, page_size);
                    }
                }
                Undo::Insert { rec } => {
                    let segment = self.segment_mut(rec.segment)?;
                    segment.free(rec.slot);
                    self.stats.records_freed.fetch_add(1, Ordering::Relaxed);
                }
                Undo::Free { rec, fields } => {
                    let segment = self.segment_mut(rec.segment)?;
                    segment.restore(rec.slot, fields, page_size);
                    self.stats.records_allocated.fetch_add(1, Ordering::Relaxed);
                }
                Undo::CreateSegment { seg } => {
                    if let Some(slot) = self.segments.get_mut(seg.0 as usize) {
                        *slot = None;
                    }
                    self.buffer.lock().evict_segment(seg.0);
                }
            }
        }
        Ok(())
    }

    fn check_token(&self, token: TxnToken) -> StorageResult<()> {
        match self.txn.active {
            Some(id) if id == token.0 => Ok(()),
            Some(_) => Err(StorageError::TxnState("token does not match active transaction")),
            None => Err(StorageError::TxnState("no active transaction")),
        }
    }
}

// Snapshot support needs access to internals; see `snapshot.rs`.
impl<P: Payload> SliceStore<P> {
    pub(crate) fn raw_segments(&self) -> &Vec<Option<Segment<P>>> {
        &self.segments
    }

    pub(crate) fn rebuild(config: StoreConfig, segments: Vec<Option<Segment<P>>>) -> Self {
        SliceStore {
            config,
            segments,
            buffer: Mutex::new(BufferPool::new(config.buffer_pages)),
            stats: AtomicStats::default(),
            txn: TxnState::default(),
            failpoints: FailpointRegistry::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::SimplePayload as SP;

    fn store() -> SliceStore<SP> {
        SliceStore::new(StoreConfig { page_size: 128, buffer_pages: 4 })
    }

    #[test]
    fn insert_read_write_field() {
        let mut st = store();
        let seg = st.create_segment("Person");
        let rec = st.insert(seg, vec![SP::Str("ann".into()), SP::Int(31)]).unwrap();
        assert_eq!(st.read_field(rec, 0).unwrap(), SP::Str("ann".into()));
        st.write_field(rec, 1, SP::Int(32)).unwrap();
        assert_eq!(st.read(rec).unwrap(), vec![SP::Str("ann".into()), SP::Int(32)]);
        assert_eq!(st.segment_len(seg).unwrap(), 1);
    }

    #[test]
    fn append_field_supports_dynamic_restructuring() {
        let mut st = store();
        let seg = st.create_segment("Student");
        let rec = st.insert(seg, vec![SP::Int(1)]).unwrap();
        let idx = st.append_field(rec, SP::Str("registered".into())).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(st.field_count(rec).unwrap(), 2);
        assert_eq!(st.read_field(rec, 1).unwrap(), SP::Str("registered".into()));
    }

    #[test]
    fn unknown_ids_error() {
        let mut st = store();
        let seg = st.create_segment("s");
        let rec = st.insert(seg, vec![SP::Int(1)]).unwrap();
        assert!(st.read(RecordId { segment: SegmentId(9), slot: 0 }).is_err());
        assert!(st.read(RecordId { segment: seg, slot: 99 }).is_err());
        assert!(st.read_field(rec, 5).is_err());
        st.free(rec).unwrap();
        assert!(st.read(rec).is_err());
        assert!(st.free(rec).is_err());
    }

    #[test]
    fn scan_visits_all_live_records() {
        let mut st = store();
        let seg = st.create_segment("s");
        let a = st.insert(seg, vec![SP::Int(1)]).unwrap();
        st.insert(seg, vec![SP::Int(2)]).unwrap();
        st.insert(seg, vec![SP::Int(3)]).unwrap();
        st.free(a).unwrap();
        let mut seen = Vec::new();
        st.scan(seg, |_, fields| seen.push(fields[0].clone())).unwrap();
        assert_eq!(seen, vec![SP::Int(2), SP::Int(3)]);
    }

    #[test]
    fn clustered_scan_touches_few_pages() {
        let mut st = SliceStore::<SP>::new(StoreConfig { page_size: 4096, buffer_pages: 64 });
        let seg = st.create_segment("clustered");
        for i in 0..200 {
            st.insert(seg, vec![SP::Int(i)]).unwrap();
        }
        st.reset_stats();
        st.clear_buffer();
        st.scan(seg, |_, _| {}).unwrap();
        let stats = st.stats();
        assert_eq!(stats.record_reads, 200);
        // 200 records * 25 bytes ≈ 5000 bytes → 2 pages → 2 misses.
        assert!(stats.page_misses <= 3, "expected ≤3 cold pages, got {}", stats.page_misses);
        assert!(stats.page_hits >= 190);
    }

    #[test]
    fn txn_commit_keeps_mutations() {
        let mut st = store();
        let seg = st.create_segment("s");
        let rec = st.insert(seg, vec![SP::Int(1)]).unwrap();
        let t = st.begin_txn().unwrap();
        st.write_field(rec, 0, SP::Int(2)).unwrap();
        st.commit_txn(t).unwrap();
        assert_eq!(st.read_field(rec, 0).unwrap(), SP::Int(2));
    }

    #[test]
    fn txn_abort_rolls_back_everything() {
        let mut st = store();
        let seg = st.create_segment("s");
        let keep = st.insert(seg, vec![SP::Int(1), SP::Str("x".into())]).unwrap();
        let doomed = st.insert(seg, vec![SP::Int(9)]).unwrap();

        let t = st.begin_txn().unwrap();
        st.write_field(keep, 0, SP::Int(42)).unwrap();
        st.append_field(keep, SP::Int(7)).unwrap();
        let created = st.insert(seg, vec![SP::Int(100)]).unwrap();
        st.free(doomed).unwrap();
        let new_seg = st.create_segment("temp");
        st.insert(new_seg, vec![SP::Int(5)]).unwrap();
        st.abort_txn(t).unwrap();

        assert_eq!(st.read(keep).unwrap(), vec![SP::Int(1), SP::Str("x".into())]);
        assert_eq!(st.read(doomed).unwrap(), vec![SP::Int(9)], "freed record restored");
        assert!(st.read(created).is_err(), "inserted record rolled back");
        assert!(st.segment_name(new_seg).is_err(), "created segment rolled back");
    }

    #[test]
    fn txn_state_errors() {
        let mut st = store();
        let t = st.begin_txn().unwrap();
        assert!(st.begin_txn().is_err(), "nested txn rejected");
        assert!(st.drop_segment(SegmentId(0)).is_err(), "drop inside txn rejected");
        st.commit_txn(t).unwrap();
        assert!(st.commit_txn(t).is_err(), "double commit rejected");
        assert!(st.abort_txn(t).is_err(), "abort after commit rejected");
    }

    #[test]
    fn stale_token_is_rejected() {
        let mut st = store();
        let t1 = st.begin_txn().unwrap();
        st.commit_txn(t1).unwrap();
        let _t2 = st.begin_txn().unwrap();
        assert!(st.commit_txn(t1).is_err(), "old token must not commit new txn");
    }

    #[test]
    fn drop_segment_frees_and_invalidates() {
        let mut st = store();
        let seg = st.create_segment("s");
        let rec = st.insert(seg, vec![SP::Int(1)]).unwrap();
        st.drop_segment(seg).unwrap();
        assert!(st.read(rec).is_err());
        assert!(st.drop_segment(seg).is_err());
        // Ids are not recycled: a new segment gets a fresh id.
        let seg2 = st.create_segment("s2");
        assert_ne!(seg.0, seg2.0);
    }

    #[test]
    fn total_bytes_tracks_content() {
        let mut st = store();
        let seg = st.create_segment("s");
        assert_eq!(st.total_bytes(), 0);
        st.insert(seg, vec![SP::Int(1)]).unwrap();
        let b1 = st.total_bytes();
        assert!(b1 > 0);
        st.insert(seg, vec![SP::Str("hello".into())]).unwrap();
        assert!(st.total_bytes() > b1);
    }
}
