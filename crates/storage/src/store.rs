//! The store: lock-striped multi-versioned segments + per-stripe buffer
//! pools + counters + transactions.
//!
//! Segments (one per class in the object model) are partitioned across
//! `StoreConfig::write_stripes` lock stripes keyed by `SegmentId % N`, so
//! record operations on different class segments proceed concurrently from
//! `&self`. Cross-stripe operations (physical fork, totals, snapshot
//! encoding, GC) acquire stripes in canonical (index) order, which keeps
//! them deadlock-free against any set of single-stripe writers.
//!
//! Every mutation installs a new record version stamped by the shared
//! [`EpochClock`]; reads resolve against the calling thread's pinned epoch
//! (see [`crate::mvcc`]) or the latest version when unpinned. The store's
//! contents live behind an `Arc` so [`SliceStore::fork_shared`] is a
//! handle clone — the control plane's copy-free fork — while the legacy
//! physical [`SliceStore::fork`] (deep copy, all stripes quiesced)
//! remains for single-owner embedded use and as a benchmark baseline.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock, RwLockWriteGuard};
use tse_telemetry::Telemetry;

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::failpoint::FailpointRegistry;
use crate::mvcc::{current_read_epoch, current_write_stamp, EpochClock, ReadPin};
use crate::payload::Payload;
use crate::segment::{PopOutcome, Segment};
use crate::stats::StoreStats;
use crate::txn::{TxnState, TxnToken, Undo};

/// Identifies a segment (one per class in the object model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u32);

/// Identifies a record: a slot within a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// Segment holding the record.
    pub segment: SegmentId,
    /// Slot index inside the segment.
    pub slot: u32,
}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Simulated page size in bytes.
    pub page_size: usize,
    /// Buffer pool capacity in pages (each stripe gets a pool of this
    /// capacity, so single-segment locality measurements are unaffected by
    /// the stripe count).
    pub buffer_pages: usize,
    /// Number of lock stripes the segments are partitioned across
    /// (clamped to ≥ 1). A runtime tuning knob — not persisted in
    /// snapshots; restored stores use the decoding process's value. The
    /// default adapts to the host: `available_parallelism`, clamped to
    /// [1, 64].
    pub write_stripes: usize,
    /// WAL size (bytes) past which a durable system checkpoints in its
    /// next exclusive section, bounding the log and recovery time. A
    /// runtime knob, not persisted; 0 disables auto-checkpointing.
    pub wal_autocheckpoint_bytes: u64,
    /// Bounded retry-with-backoff policy for transient durable-path I/O
    /// faults (WAL append/fsync, snapshot and manifest writes, scrub
    /// reads). Retries always run *before* a write is acknowledged. A
    /// runtime knob, not persisted.
    pub retry: crate::fault::RetryPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            page_size: 4096,
            buffer_pages: 256,
            write_stripes: default_write_stripes(),
            wal_autocheckpoint_bytes: 4 * 1024 * 1024,
            retry: crate::fault::RetryPolicy::default(),
        }
    }
}

/// Stripe-count default: one stripe per hardware thread, clamped to
/// [1, 64]. More stripes than threads buys nothing (writers can't run
/// concurrently anyway); the cap bounds per-store memory on huge hosts.
fn default_write_stripes() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8).clamp(1, 64)
}

#[derive(Debug, Default)]
struct AtomicStats {
    record_reads: AtomicU64,
    record_writes: AtomicU64,
    page_hits: AtomicU64,
    page_misses: AtomicU64,
    records_allocated: AtomicU64,
    records_freed: AtomicU64,
    record_moves: AtomicU64,
}

impl AtomicStats {
    fn from_snapshot(s: StoreStats) -> Self {
        AtomicStats {
            record_reads: AtomicU64::new(s.record_reads),
            record_writes: AtomicU64::new(s.record_writes),
            page_hits: AtomicU64::new(s.page_hits),
            page_misses: AtomicU64::new(s.page_misses),
            records_allocated: AtomicU64::new(s.records_allocated),
            records_freed: AtomicU64::new(s.records_freed),
            record_moves: AtomicU64::new(s.record_moves),
        }
    }

    fn snapshot(&self) -> StoreStats {
        StoreStats {
            record_reads: self.record_reads.load(Ordering::Relaxed),
            record_writes: self.record_writes.load(Ordering::Relaxed),
            page_hits: self.page_hits.load(Ordering::Relaxed),
            page_misses: self.page_misses.load(Ordering::Relaxed),
            records_allocated: self.records_allocated.load(Ordering::Relaxed),
            records_freed: self.records_freed.load(Ordering::Relaxed),
            record_moves: self.record_moves.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.record_reads.store(0, Ordering::Relaxed);
        self.record_writes.store(0, Ordering::Relaxed);
        self.page_hits.store(0, Ordering::Relaxed);
        self.page_misses.store(0, Ordering::Relaxed);
        self.records_allocated.store(0, Ordering::Relaxed);
        self.records_freed.store(0, Ordering::Relaxed);
        self.record_moves.store(0, Ordering::Relaxed);
    }
}

/// One lock stripe: the segments whose id hashes here, plus this stripe's
/// own buffer pool (a shared pool would re-serialize every page touch).
#[derive(Debug)]
struct Stripe<P: Payload> {
    segments: RwLock<std::collections::BTreeMap<u32, Segment<P>>>,
    buffer: Mutex<BufferPool>,
}

impl<P: Payload> Stripe<P> {
    fn new(buffer_pages: usize) -> Self {
        Stripe {
            segments: RwLock::new(std::collections::BTreeMap::new()),
            buffer: Mutex::new(BufferPool::new(buffer_pages)),
        }
    }

    /// Contention-aware write acquisition: the uncontended fast path takes
    /// no telemetry lock at all; a failed `try_write` counts one
    /// `stripe.conflicts` and times the blocking acquisition into
    /// `lock.stripe_wait_ns`.
    fn write_segments(
        &self,
        telemetry: &Telemetry,
    ) -> RwLockWriteGuard<'_, std::collections::BTreeMap<u32, Segment<P>>> {
        match self.segments.try_write() {
            Some(guard) => guard,
            None => {
                telemetry.incr("stripe.conflicts", 1);
                let begun = Instant::now();
                let guard = self.segments.write();
                telemetry
                    .observe_ns("lock.stripe_wait_ns", (begun.elapsed().as_nanos() as u64).max(1));
                guard
            }
        }
    }
}

/// The shared contents of a store family: everything except the per-handle
/// failpoint/telemetry attachments. `SliceStore::fork_shared` clones the
/// `Arc` around this, so a live system and its evolution fork mutate the
/// same stripes — isolation comes from version stamps, not from copying.
#[derive(Debug)]
struct StoreInner<P: Payload> {
    config: StoreConfig,
    stripes: Vec<Stripe<P>>,
    next_segment: AtomicU32,
    stats: AtomicStats,
    /// Undo log for the (single, control-plane) transaction. `txn_active`
    /// mirrors `txn.active.is_some()` so the data-plane fast path can skip
    /// the mutex entirely when no transaction is open.
    txn: Mutex<TxnState>,
    txn_active: AtomicBool,
    /// The stamp source shared by every handle (and every physical fork)
    /// of this store family.
    clock: Arc<EpochClock>,
    /// Superseded version entries awaiting GC, maintained incrementally by
    /// the mutation paths and recomputed authoritatively by `gc`.
    superseded: AtomicU64,
}

/// The paged record store. Generic over the field payload type.
///
/// All record and segment operations take `&self`: reads go through stripe
/// read locks, mutations through stripe write locks, and counters are
/// atomics — so independent writers on different class segments run in
/// parallel with no outer `&mut` required.
#[derive(Debug)]
pub struct SliceStore<P: Payload> {
    inner: Arc<StoreInner<P>>,
    failpoints: FailpointRegistry,
    telemetry: Telemetry,
}

impl<P: Payload> Default for SliceStore<P> {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl<P: Payload> SliceStore<P> {
    /// Create an empty store with the given configuration.
    pub fn new(config: StoreConfig) -> Self {
        let n = config.write_stripes.max(1);
        SliceStore {
            inner: Arc::new(StoreInner {
                config,
                stripes: (0..n).map(|_| Stripe::new(config.buffer_pages)).collect(),
                next_segment: AtomicU32::new(0),
                stats: AtomicStats::default(),
                txn: Mutex::new(TxnState::default()),
                txn_active: AtomicBool::new(false),
                clock: Arc::new(EpochClock::new()),
                superseded: AtomicU64::new(0),
            }),
            failpoints: FailpointRegistry::new(),
            telemetry: Telemetry::new(),
        }
    }

    /// The configuration this store was created with.
    pub fn config(&self) -> StoreConfig {
        self.inner.config
    }

    /// Number of lock stripes actually in use.
    pub fn stripe_count(&self) -> usize {
        self.inner.stripes.len()
    }

    /// The MVCC stamp clock shared by this store family. Sessions pin read
    /// epochs and write batches register tickets here.
    pub fn clock(&self) -> &Arc<EpochClock> {
        &self.inner.clock
    }

    /// Pin the current stable epoch for repeatable reads (shorthand for
    /// `store.clock().pin()`).
    pub fn pin_read(&self) -> ReadPin {
        self.inner.clock.pin()
    }

    /// The fault-injection registry consulted by this store's mutation
    /// paths (site `storage.insert`). The handle is cheap to clone and
    /// shared — arming it from a test affects this store immediately.
    pub fn failpoints(&self) -> &FailpointRegistry {
        &self.failpoints
    }

    /// Replace the registry (used to share one registry between a store,
    /// the durable layer, and the evolution pipeline of one system).
    pub fn set_failpoints(&mut self, failpoints: FailpointRegistry) {
        self.failpoints = failpoints;
    }

    /// Attach the owning system's telemetry domain so stripe contention
    /// surfaces as `stripe.conflicts` / `lock.stripe_wait_ns` and MVCC
    /// reclamation as `mvcc.gc_reclaimed` / `mvcc.versions`. Registers
    /// the metrics immediately (at zero / empty) so snapshots always carry
    /// them.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        telemetry.incr("stripe.conflicts", 0);
        telemetry.incr("mvcc.gc_reclaimed", 0);
        telemetry.set_gauge("mvcc.versions", self.inner.superseded.load(Ordering::Relaxed));
        telemetry.set_gauge("store.write_stripes", self.inner.stripes.len() as u64);
        self.telemetry = telemetry;
    }

    fn stripe(&self, seg: SegmentId) -> &Stripe<P> {
        &self.inner.stripes[seg.0 as usize % self.inner.stripes.len()]
    }

    /// The stamp for one mutation: the ambient batch ticket's stamp when a
    /// `WriteStampGuard` is active on this thread, else a fresh solo stamp
    /// (immediately stable — single-record mutations need no all-or-none
    /// window).
    fn mutation_stamp(&self) -> u64 {
        current_write_stamp().unwrap_or_else(|| self.inner.clock.solo_stamp())
    }

    fn superseded_add(&self, n: u64) {
        self.inner.superseded.fetch_add(n, Ordering::Relaxed);
    }

    fn superseded_sub(&self, n: u64) {
        let _ = self
            .inner
            .superseded
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(n)));
    }

    // ----- segments -------------------------------------------------------

    /// Create a new segment (a per-class record arena).
    pub fn create_segment(&self, name: &str) -> SegmentId {
        let id = SegmentId(self.inner.next_segment.fetch_add(1, Ordering::AcqRel));
        self.stripe(id)
            .write_segments(&self.telemetry)
            .insert(id.0, Segment::new(name.to_string()));
        if self.inner.txn_active.load(Ordering::Acquire) {
            self.inner.txn.lock().record(Undo::CreateSegment { seg: id });
        }
        id
    }

    /// Drop a segment and everything in it. Not permitted inside a
    /// transaction (segment drops are not undoable).
    pub fn drop_segment(&self, seg: SegmentId) -> StorageResult<()> {
        if self.inner.txn_active.load(Ordering::Acquire) {
            return Err(StorageError::TxnState("drop_segment inside a transaction"));
        }
        let stripe = self.stripe(seg);
        let removed = stripe.write_segments(&self.telemetry).remove(&seg.0);
        if removed.is_none() {
            return Err(StorageError::UnknownSegment(seg.0));
        }
        stripe.buffer.lock().evict_segment(seg.0);
        Ok(())
    }

    /// Name the segment was created with.
    pub fn segment_name(&self, seg: SegmentId) -> StorageResult<String> {
        self.with_segment(seg, |s| s.name.clone())
    }

    /// Number of records live at the latest epoch in a segment.
    pub fn segment_len(&self, seg: SegmentId) -> StorageResult<usize> {
        self.with_segment(seg, |s| s.len())
    }

    /// Number of pages a segment occupies.
    pub fn segment_pages(&self, seg: SegmentId) -> StorageResult<usize> {
        self.with_segment(seg, |s| s.pages.page_count())
    }

    /// Bytes used by a segment's records (incl. record headers).
    pub fn segment_bytes(&self, seg: SegmentId) -> StorageResult<usize> {
        self.with_segment(seg, |s| s.pages.bytes_used())
    }

    /// All live segment ids with their names, in id order.
    pub fn segments(&self) -> Vec<(SegmentId, String)> {
        let mut out = Vec::new();
        for stripe in &self.inner.stripes {
            let guard = stripe.segments.read();
            out.extend(guard.iter().map(|(id, seg)| (SegmentId(*id), seg.name.clone())));
        }
        out.sort_by_key(|(id, _)| *id);
        out
    }

    fn with_segment<R>(
        &self,
        seg: SegmentId,
        f: impl FnOnce(&Segment<P>) -> R,
    ) -> StorageResult<R> {
        let guard = self.stripe(seg).segments.read();
        let segment = guard.get(&seg.0).ok_or(StorageError::UnknownSegment(seg.0))?;
        Ok(f(segment))
    }

    fn with_segment_mut<R>(
        &self,
        seg: SegmentId,
        f: impl FnOnce(&mut Segment<P>) -> R,
    ) -> StorageResult<R> {
        let mut guard = self.stripe(seg).write_segments(&self.telemetry);
        let segment = guard.get_mut(&seg.0).ok_or(StorageError::UnknownSegment(seg.0))?;
        Ok(f(segment))
    }

    // ----- records --------------------------------------------------------

    /// Insert a record into a segment. Failpoint site: `storage.insert`
    /// (fires *before* the record is allocated, so an injected failure
    /// leaves no half-inserted state).
    pub fn insert(&self, seg: SegmentId, fields: Vec<P>) -> StorageResult<RecordId> {
        self.failpoints.check("storage.insert")?;
        let page_size = self.inner.config.page_size;
        let stamp = self.mutation_stamp();
        let (slot, page) = self.with_segment_mut(seg, |s| s.insert(fields, page_size, stamp))?;
        let rec = RecordId { segment: seg, slot };
        self.inner.stats.records_allocated.fetch_add(1, Ordering::Relaxed);
        self.touch_page(seg, page);
        if self.inner.txn_active.load(Ordering::Acquire) {
            self.inner.txn.lock().record(Undo::PopVersion { rec });
        }
        Ok(rec)
    }

    /// Delete a record by installing a tombstone version, returning the
    /// fields it superseded. Pinned readers keep resolving the record's
    /// history; the slot is reclaimed by [`SliceStore::gc`] once no epoch
    /// can reach it.
    pub fn free(&self, rec: RecordId) -> StorageResult<Vec<P>> {
        let stamp = self.mutation_stamp();
        let fields = self
            .with_segment_mut(rec.segment, |s| s.free(rec.slot, stamp))?
            .ok_or(StorageError::UnknownRecord { segment: rec.segment.0, slot: rec.slot })?;
        self.inner.stats.records_freed.fetch_add(1, Ordering::Relaxed);
        // The superseded live version plus the tombstone itself are both
        // reclaimable once the watermark passes the tombstone.
        self.superseded_add(2);
        if self.inner.txn_active.load(Ordering::Acquire) {
            self.inner.txn.lock().record(Undo::PopVersion { rec });
        }
        Ok(fields)
    }

    /// Read a whole record at the calling thread's pinned epoch — latest
    /// when unpinned (counts one record read and one page touch).
    pub fn read(&self, rec: RecordId) -> StorageResult<Vec<P>> {
        let epoch = current_read_epoch();
        let (fields, page) = self.with_segment(rec.segment, |s| {
            s.record(rec.slot).and_then(|r| r.fields_at(epoch).map(|f| (f.clone(), r.page)))
        })?
        .ok_or(StorageError::UnknownRecord { segment: rec.segment.0, slot: rec.slot })?;
        self.inner.stats.record_reads.fetch_add(1, Ordering::Relaxed);
        self.touch_page(rec.segment, page);
        Ok(fields)
    }

    /// Read one field of a record at the calling thread's pinned epoch.
    pub fn read_field(&self, rec: RecordId, idx: usize) -> StorageResult<P> {
        let epoch = current_read_epoch();
        let (field, len, page) = self.with_segment(rec.segment, |s| {
            s.record(rec.slot).and_then(|r| {
                r.fields_at(epoch).map(|f| (f.get(idx).cloned(), f.len(), r.page))
            })
        })?
        .ok_or(StorageError::UnknownRecord { segment: rec.segment.0, slot: rec.slot })?;
        self.inner.stats.record_reads.fetch_add(1, Ordering::Relaxed);
        self.touch_page(rec.segment, page);
        field.ok_or(StorageError::FieldOutOfBounds { index: idx, len })
    }

    /// Number of fields in a record at the calling thread's pinned epoch
    /// (no page touch; catalog metadata).
    pub fn field_count(&self, rec: RecordId) -> StorageResult<usize> {
        let epoch = current_read_epoch();
        self.with_segment(rec.segment, |s| s.fields_at(rec.slot, epoch).map(|f| f.len()))?
            .ok_or(StorageError::UnknownRecord { segment: rec.segment.0, slot: rec.slot })
    }

    /// Overwrite one field of a record. Installs a new version — readers
    /// pinned to earlier epochs keep seeing the old value.
    pub fn write_field(&self, rec: RecordId, idx: usize, value: P) -> StorageResult<()> {
        let page_size = self.inner.config.page_size;
        let stamp = self.mutation_stamp();
        let outcome = self.with_segment_mut(rec.segment, |segment| {
            segment.modify(rec.slot, stamp, page_size, move |fields| {
                let len = fields.len();
                let slot =
                    fields.get_mut(idx).ok_or(StorageError::FieldOutOfBounds { index: idx, len })?;
                *slot = value;
                Ok::<_, StorageError>(())
            })
        })?;
        let (_, page, moved) = outcome
            .ok_or(StorageError::UnknownRecord { segment: rec.segment.0, slot: rec.slot })??;
        self.inner.stats.record_writes.fetch_add(1, Ordering::Relaxed);
        if moved {
            self.inner.stats.record_moves.fetch_add(1, Ordering::Relaxed);
        }
        self.superseded_add(1);
        self.touch_page(rec.segment, page);
        if self.inner.txn_active.load(Ordering::Acquire) {
            self.inner.txn.lock().record(Undo::PopVersion { rec });
        }
        Ok(())
    }

    /// Append a field to a record (dynamic restructuring: a slice acquiring
    /// storage for a newly added stored attribute). Installs a new version.
    pub fn append_field(&self, rec: RecordId, value: P) -> StorageResult<usize> {
        let page_size = self.inner.config.page_size;
        let stamp = self.mutation_stamp();
        let outcome = self.with_segment_mut(rec.segment, |segment| {
            segment.modify(rec.slot, stamp, page_size, move |fields| {
                fields.push(value);
                Ok::<_, StorageError>(fields.len() - 1)
            })
        })?;
        let (new_idx, page, moved) = outcome
            .ok_or(StorageError::UnknownRecord { segment: rec.segment.0, slot: rec.slot })??;
        self.inner.stats.record_writes.fetch_add(1, Ordering::Relaxed);
        if moved {
            self.inner.stats.record_moves.fetch_add(1, Ordering::Relaxed);
        }
        self.superseded_add(1);
        self.touch_page(rec.segment, page);
        if self.inner.txn_active.load(Ordering::Acquire) {
            self.inner.txn.lock().record(Undo::PopVersion { rec });
        }
        Ok(new_idx)
    }

    /// Scan the records of a segment visible at the calling thread's
    /// pinned epoch in slot (≈ page) order, invoking `f` for each. Counts
    /// one record read + page touch per record. The stripe read lock is
    /// held across the whole scan, so `f` must not call back into this
    /// store.
    pub fn scan<F: FnMut(RecordId, &[P])>(&self, seg: SegmentId, mut f: F) -> StorageResult<()> {
        let epoch = current_read_epoch();
        let guard = self.stripe(seg).segments.read();
        let segment = guard.get(&seg.0).ok_or(StorageError::UnknownSegment(seg.0))?;
        let mut touches: Vec<u32> = Vec::new();
        for (slot, record) in segment.iter_records() {
            let Some(fields) = record.fields_at(epoch) else { continue };
            self.inner.stats.record_reads.fetch_add(1, Ordering::Relaxed);
            touches.push(record.page);
            f(RecordId { segment: seg, slot }, fields);
        }
        drop(guard);
        for page in touches {
            self.touch_page(seg, page);
        }
        Ok(())
    }

    fn touch_page(&self, seg: SegmentId, page: u32) {
        let hit = self.stripe(seg).buffer.lock().touch((seg.0, page));
        if hit {
            self.inner.stats.page_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.stats.page_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    // ----- forking --------------------------------------------------------

    /// A **copy-free fork**: a new handle onto the *same* store contents
    /// (same `Arc`), with this handle's failpoint registry and telemetry
    /// attached. The control plane uses this for evolution — the fork's
    /// mutations are stamped by an unfinished write ticket, so readers
    /// pinned to earlier epochs never observe them, and nothing is copied.
    /// Forking while a transaction is open is rejected (the fork would
    /// share, and could interleave with, the open undo log).
    pub fn fork_shared(&self) -> StorageResult<Self> {
        if self.inner.txn_active.load(Ordering::Acquire) {
            return Err(StorageError::TxnState("fork inside a transaction"));
        }
        Ok(SliceStore {
            inner: Arc::clone(&self.inner),
            failpoints: self.failpoints.clone(),
            telemetry: self.telemetry.clone(),
        })
    }

    /// A private **physical copy** of this store: same segments and
    /// records, cumulative counters carried over, cold buffer pools, no
    /// open transaction, the **same** (shared) failpoint registry,
    /// telemetry domain, and — so stamps stay monotone across copies —
    /// the same epoch clock.
    ///
    /// The fork quiesces all stripes — write locks acquired in canonical
    /// (index) order — so the copy is a consistent point-in-time image
    /// even while data-plane writers are running; the quiesce latency is
    /// observed as `lock.stripe_wait_ns`. The shared control plane no
    /// longer uses this path for evolution (see
    /// [`SliceStore::fork_shared`]); it remains for single-owner embedded
    /// systems and as the benchmark baseline for the fork-cost delta.
    /// Forking while a transaction is open would silently drop the fork's
    /// undo history, so it is rejected.
    pub fn fork(&self) -> StorageResult<Self> {
        if self.inner.txn_active.load(Ordering::Acquire) {
            return Err(StorageError::TxnState("fork inside a transaction"));
        }
        let begun = Instant::now();
        let guards: Vec<_> = self.inner.stripes.iter().map(|s| s.segments.write()).collect();
        self.telemetry
            .observe_ns("lock.stripe_wait_ns", (begun.elapsed().as_nanos() as u64).max(1));
        let stripes: Vec<Stripe<P>> = guards
            .iter()
            .map(|g| Stripe {
                segments: RwLock::new((**g).clone()),
                buffer: Mutex::new(BufferPool::new(self.inner.config.buffer_pages)),
            })
            .collect();
        drop(guards);
        Ok(SliceStore {
            inner: Arc::new(StoreInner {
                config: self.inner.config,
                stripes,
                next_segment: AtomicU32::new(self.inner.next_segment.load(Ordering::Acquire)),
                stats: AtomicStats::from_snapshot(self.inner.stats.snapshot()),
                txn: Mutex::new(TxnState::default()),
                txn_active: AtomicBool::new(false),
                clock: Arc::clone(&self.inner.clock),
                superseded: AtomicU64::new(self.inner.superseded.load(Ordering::Relaxed)),
            }),
            failpoints: self.failpoints.clone(),
            telemetry: self.telemetry.clone(),
        })
    }

    /// Whether two handles share the same store contents (true for
    /// [`SliceStore::fork_shared`] pairs, false for physical forks).
    pub fn shares_contents_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    // ----- garbage collection --------------------------------------------

    /// Prune version history unreachable from `watermark` (normally
    /// `store.clock().gc_watermark()`): superseded versions older than the
    /// watermark-visible one are dropped, and slots whose surviving chain
    /// is a single watermark-visible tombstone are recycled. Stripes are
    /// locked one at a time, so GC never stalls the whole store. Returns
    /// the number of version entries reclaimed and refreshes the
    /// `mvcc.gc_reclaimed` counter and `mvcc.versions` gauge.
    pub fn gc(&self, watermark: u64) -> u64 {
        let mut reclaimed = 0u64;
        for stripe in &self.inner.stripes {
            let mut guard = stripe.write_segments(&self.telemetry);
            for segment in guard.values_mut() {
                reclaimed += segment.gc(watermark);
            }
        }
        // Recompute the backlog authoritatively (incremental accounting
        // can drift across rollbacks).
        let backlog = self.version_backlog();
        self.inner.superseded.store(backlog, Ordering::Relaxed);
        self.telemetry.incr("mvcc.gc_reclaimed", reclaimed);
        self.telemetry.set_gauge("mvcc.versions", backlog);
        reclaimed
    }

    /// Superseded version entries currently awaiting GC (incrementally
    /// maintained estimate; exact right after a [`SliceStore::gc`]).
    pub fn superseded_versions(&self) -> u64 {
        self.inner.superseded.load(Ordering::Relaxed)
    }

    /// Count superseded version entries by scanning every segment.
    pub fn version_backlog(&self) -> u64 {
        self.inner
            .stripes
            .iter()
            .map(|s| s.segments.read().values().map(|seg| seg.version_backlog()).sum::<u64>())
            .sum()
    }

    // ----- stats ----------------------------------------------------------

    /// Snapshot of the access counters. Each counter is loaded atomically;
    /// the snapshot as a whole is coherent for a quiescent store and
    /// monotone under concurrent readers (every counter is add-only), so
    /// `&self` reads from parallel threads never observe values going
    /// backwards.
    pub fn stats(&self) -> StoreStats {
        self.inner.stats.snapshot()
    }

    /// Zero all access counters (does not evict the buffer pools).
    pub fn reset_stats(&self) {
        self.inner.stats.reset();
    }

    /// Evict every stripe's buffer pool (cold-cache measurements).
    pub fn clear_buffer(&self) {
        for stripe in &self.inner.stripes {
            stripe.buffer.lock().clear();
        }
    }

    /// Total bytes used across all segments.
    pub fn total_bytes(&self) -> usize {
        self.inner
            .stripes
            .iter()
            .map(|s| s.segments.read().values().map(|seg| seg.pages.bytes_used()).sum::<usize>())
            .sum()
    }

    /// Total pages across all segments.
    pub fn total_pages(&self) -> usize {
        self.inner
            .stripes
            .iter()
            .map(|s| s.segments.read().values().map(|seg| seg.pages.page_count()).sum::<usize>())
            .sum()
    }

    // ----- transactions ---------------------------------------------------

    /// Begin a transaction. Errors if one is already open.
    ///
    /// The transaction machinery serves the single-threaded control plane:
    /// the undo log is one global journal, not per-stripe, and concurrent
    /// data-plane writers must not be active on this store while a
    /// transaction is open. The shared control plane guarantees this by
    /// holding the swap latch exclusively for the whole logged evolution.
    pub fn begin_txn(&self) -> StorageResult<TxnToken> {
        let mut txn = self.inner.txn.lock();
        if txn.active.is_some() {
            return Err(StorageError::TxnState("transaction already active"));
        }
        let id = txn.next_id;
        txn.next_id += 1;
        txn.active = Some(id);
        txn.log.clear();
        self.inner.txn_active.store(true, Ordering::Release);
        Ok(TxnToken(id))
    }

    /// Whether a transaction is currently open.
    pub fn in_txn(&self) -> bool {
        self.inner.txn_active.load(Ordering::Acquire)
    }

    /// Commit: discard the undo log, making all mutations permanent.
    pub fn commit_txn(&self, token: TxnToken) -> StorageResult<()> {
        let mut txn = self.inner.txn.lock();
        Self::check_token(&txn, token)?;
        txn.active = None;
        txn.log.clear();
        self.inner.txn_active.store(false, Ordering::Release);
        Ok(())
    }

    /// Abort: roll every logged mutation back, in reverse order, by
    /// popping the version each one pushed.
    pub fn abort_txn(&self, token: TxnToken) -> StorageResult<()> {
        let log = {
            let mut txn = self.inner.txn.lock();
            Self::check_token(&txn, token)?;
            txn.active = None;
            self.inner.txn_active.store(false, Ordering::Release);
            std::mem::take(&mut txn.log)
        };
        let page_size = self.inner.config.page_size;
        for undo in log.into_iter().rev() {
            match undo {
                Undo::PopVersion { rec } => {
                    let outcome = self
                        .with_segment_mut(rec.segment, |s| s.pop_version(rec.slot, page_size))?;
                    match outcome {
                        PopOutcome::Removed => {
                            self.inner.stats.records_freed.fetch_add(1, Ordering::Relaxed);
                        }
                        PopOutcome::Undeleted => {
                            self.inner.stats.records_allocated.fetch_add(1, Ordering::Relaxed);
                            self.superseded_sub(2);
                        }
                        PopOutcome::Reverted => self.superseded_sub(1),
                        PopOutcome::Missing => {}
                    }
                }
                Undo::CreateSegment { seg } => {
                    let stripe = self.stripe(seg);
                    stripe.write_segments(&self.telemetry).remove(&seg.0);
                    stripe.buffer.lock().evict_segment(seg.0);
                }
            }
        }
        Ok(())
    }

    fn check_token(txn: &TxnState, token: TxnToken) -> StorageResult<()> {
        match txn.active {
            Some(id) if id == token.0 => Ok(()),
            Some(_) => Err(StorageError::TxnState("token does not match active transaction")),
            None => Err(StorageError::TxnState("no active transaction")),
        }
    }
}

// Snapshot support needs access to internals; see `snapshot.rs`.
impl<P: Payload> SliceStore<P> {
    /// Run `f` over the dense segment-slot view (index = segment id, `None`
    /// for dropped/never-created holes), with every stripe read-locked in
    /// canonical order for a consistent image.
    pub(crate) fn with_segment_slots<R>(&self, f: impl FnOnce(&[Option<&Segment<P>>]) -> R) -> R {
        let guards: Vec<_> = self.inner.stripes.iter().map(|s| s.segments.read()).collect();
        let n = self.inner.next_segment.load(Ordering::Acquire) as usize;
        let slots: Vec<Option<&Segment<P>>> =
            (0..n).map(|i| guards[i % guards.len()].get(&(i as u32))).collect();
        f(&slots)
    }

    pub(crate) fn rebuild(config: StoreConfig, segments: Vec<Option<Segment<P>>>) -> Self {
        let store = Self::new(config);
        store.inner.next_segment.store(segments.len() as u32, Ordering::Release);
        for (i, seg) in segments.into_iter().enumerate() {
            if let Some(seg) = seg {
                store.stripe(SegmentId(i as u32)).segments.write().insert(i as u32, seg);
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvcc::ReadEpochGuard;
    use crate::payload::SimplePayload as SP;

    fn store() -> SliceStore<SP> {
        SliceStore::new(StoreConfig {
            page_size: 128,
            buffer_pages: 4,
            write_stripes: 4,
            ..StoreConfig::default()
        })
    }

    #[test]
    fn insert_read_write_field() {
        let st = store();
        let seg = st.create_segment("Person");
        let rec = st.insert(seg, vec![SP::Str("ann".into()), SP::Int(31)]).unwrap();
        assert_eq!(st.read_field(rec, 0).unwrap(), SP::Str("ann".into()));
        st.write_field(rec, 1, SP::Int(32)).unwrap();
        assert_eq!(st.read(rec).unwrap(), vec![SP::Str("ann".into()), SP::Int(32)]);
        assert_eq!(st.segment_len(seg).unwrap(), 1);
    }

    #[test]
    fn append_field_supports_dynamic_restructuring() {
        let st = store();
        let seg = st.create_segment("Student");
        let rec = st.insert(seg, vec![SP::Int(1)]).unwrap();
        let idx = st.append_field(rec, SP::Str("registered".into())).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(st.field_count(rec).unwrap(), 2);
        assert_eq!(st.read_field(rec, 1).unwrap(), SP::Str("registered".into()));
    }

    #[test]
    fn unknown_ids_error() {
        let st = store();
        let seg = st.create_segment("s");
        let rec = st.insert(seg, vec![SP::Int(1)]).unwrap();
        assert!(st.read(RecordId { segment: SegmentId(9), slot: 0 }).is_err());
        assert!(st.read(RecordId { segment: seg, slot: 99 }).is_err());
        assert!(st.read_field(rec, 5).is_err());
        st.free(rec).unwrap();
        assert!(st.read(rec).is_err(), "deleted at latest");
        assert!(st.free(rec).is_err(), "double free rejected");
        assert!(st.write_field(rec, 0, SP::Int(2)).is_err(), "write to deleted rejected");
    }

    #[test]
    fn scan_visits_all_live_records() {
        let st = store();
        let seg = st.create_segment("s");
        let a = st.insert(seg, vec![SP::Int(1)]).unwrap();
        st.insert(seg, vec![SP::Int(2)]).unwrap();
        st.insert(seg, vec![SP::Int(3)]).unwrap();
        st.free(a).unwrap();
        let mut seen = Vec::new();
        st.scan(seg, |_, fields| seen.push(fields[0].clone())).unwrap();
        assert_eq!(seen, vec![SP::Int(2), SP::Int(3)]);
    }

    #[test]
    fn clustered_scan_touches_few_pages() {
        let st = SliceStore::<SP>::new(StoreConfig {
            page_size: 4096,
            buffer_pages: 64,
            ..StoreConfig::default()
        });
        let seg = st.create_segment("clustered");
        for i in 0..200 {
            st.insert(seg, vec![SP::Int(i)]).unwrap();
        }
        st.reset_stats();
        st.clear_buffer();
        st.scan(seg, |_, _| {}).unwrap();
        let stats = st.stats();
        assert_eq!(stats.record_reads, 200);
        // 200 records * 25 bytes ≈ 5000 bytes → 2 pages → 2 misses.
        assert!(stats.page_misses <= 3, "expected ≤3 cold pages, got {}", stats.page_misses);
        assert!(stats.page_hits >= 190);
    }

    #[test]
    fn txn_commit_keeps_mutations() {
        let st = store();
        let seg = st.create_segment("s");
        let rec = st.insert(seg, vec![SP::Int(1)]).unwrap();
        let t = st.begin_txn().unwrap();
        st.write_field(rec, 0, SP::Int(2)).unwrap();
        st.commit_txn(t).unwrap();
        assert_eq!(st.read_field(rec, 0).unwrap(), SP::Int(2));
    }

    #[test]
    fn txn_abort_rolls_back_everything() {
        let st = store();
        let seg = st.create_segment("s");
        let keep = st.insert(seg, vec![SP::Int(1), SP::Str("x".into())]).unwrap();
        let doomed = st.insert(seg, vec![SP::Int(9)]).unwrap();

        let t = st.begin_txn().unwrap();
        st.write_field(keep, 0, SP::Int(42)).unwrap();
        st.append_field(keep, SP::Int(7)).unwrap();
        let created = st.insert(seg, vec![SP::Int(100)]).unwrap();
        st.free(doomed).unwrap();
        let new_seg = st.create_segment("temp");
        st.insert(new_seg, vec![SP::Int(5)]).unwrap();
        st.abort_txn(t).unwrap();

        assert_eq!(st.read(keep).unwrap(), vec![SP::Int(1), SP::Str("x".into())]);
        assert_eq!(st.read(doomed).unwrap(), vec![SP::Int(9)], "freed record restored");
        assert!(st.read(created).is_err(), "inserted record rolled back");
        assert!(st.segment_name(new_seg).is_err(), "created segment rolled back");
    }

    #[test]
    fn txn_state_errors() {
        let st = store();
        let t = st.begin_txn().unwrap();
        assert!(st.begin_txn().is_err(), "nested txn rejected");
        assert!(st.drop_segment(SegmentId(0)).is_err(), "drop inside txn rejected");
        st.commit_txn(t).unwrap();
        assert!(st.commit_txn(t).is_err(), "double commit rejected");
        assert!(st.abort_txn(t).is_err(), "abort after commit rejected");
    }

    #[test]
    fn stale_token_is_rejected() {
        let st = store();
        let t1 = st.begin_txn().unwrap();
        st.commit_txn(t1).unwrap();
        let _t2 = st.begin_txn().unwrap();
        assert!(st.commit_txn(t1).is_err(), "old token must not commit new txn");
    }

    #[test]
    fn drop_segment_frees_and_invalidates() {
        let st = store();
        let seg = st.create_segment("s");
        let rec = st.insert(seg, vec![SP::Int(1)]).unwrap();
        st.drop_segment(seg).unwrap();
        assert!(st.read(rec).is_err());
        assert!(st.drop_segment(seg).is_err());
        // Ids are not recycled: a new segment gets a fresh id.
        let seg2 = st.create_segment("s2");
        assert_ne!(seg.0, seg2.0);
    }

    #[test]
    fn total_bytes_tracks_content() {
        let st = store();
        let seg = st.create_segment("s");
        assert_eq!(st.total_bytes(), 0);
        st.insert(seg, vec![SP::Int(1)]).unwrap();
        let b1 = st.total_bytes();
        assert!(b1 > 0);
        st.insert(seg, vec![SP::Str("hello".into())]).unwrap();
        assert!(st.total_bytes() > b1);
    }

    #[test]
    fn single_stripe_store_still_works() {
        let st = SliceStore::<SP>::new(StoreConfig {
            page_size: 128,
            buffer_pages: 4,
            write_stripes: 1,
            ..StoreConfig::default()
        });
        let a = st.create_segment("a");
        let b = st.create_segment("b");
        let ra = st.insert(a, vec![SP::Int(1)]).unwrap();
        let rb = st.insert(b, vec![SP::Int(2)]).unwrap();
        assert_eq!(st.read_field(ra, 0).unwrap(), SP::Int(1));
        assert_eq!(st.read_field(rb, 0).unwrap(), SP::Int(2));
    }

    #[test]
    fn zero_stripes_clamps_to_one() {
        let st = SliceStore::<SP>::new(StoreConfig {
            page_size: 128,
            buffer_pages: 4,
            write_stripes: 0,
            ..StoreConfig::default()
        });
        assert_eq!(st.stripe_count(), 1);
        let seg = st.create_segment("s");
        st.insert(seg, vec![SP::Int(1)]).unwrap();
    }

    #[test]
    fn concurrent_inserts_on_disjoint_segments_lose_nothing() {
        let st = std::sync::Arc::new(store());
        let segs: Vec<SegmentId> =
            (0..4).map(|i| st.create_segment(&format!("c{i}"))).collect();
        std::thread::scope(|scope| {
            for &seg in &segs {
                let st = std::sync::Arc::clone(&st);
                scope.spawn(move || {
                    for i in 0..500 {
                        st.insert(seg, vec![SP::Int(i)]).unwrap();
                    }
                });
            }
        });
        for &seg in &segs {
            assert_eq!(st.segment_len(seg).unwrap(), 500);
        }
        assert_eq!(st.stats().records_allocated, 2000);
    }

    #[test]
    fn fork_quiesces_concurrent_writers_to_a_consistent_image() {
        let st = std::sync::Arc::new(store());
        let seg_a = st.create_segment("a");
        let seg_b = st.create_segment("b");
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for seg in [seg_a, seg_b] {
                let st = std::sync::Arc::clone(&st);
                let stop = std::sync::Arc::clone(&stop);
                scope.spawn(move || {
                    let mut i = 0i64;
                    while !stop.load(Ordering::Relaxed) {
                        st.insert(seg, vec![SP::Int(i)]).unwrap();
                        i += 1;
                    }
                });
            }
            for _ in 0..20 {
                let fork = st.fork().unwrap();
                // Each forked segment is a coherent point-in-time copy:
                // every slot below len is live with a well-formed record.
                for seg in [seg_a, seg_b] {
                    let n = fork.segment_len(seg).unwrap();
                    let mut seen = 0;
                    fork.scan(seg, |_, fields| {
                        assert_eq!(fields.len(), 1);
                        seen += 1;
                    })
                    .unwrap();
                    assert_eq!(seen, n);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn pinned_epoch_reads_are_repeatable() {
        let st = store();
        let seg = st.create_segment("s");
        let rec = st.insert(seg, vec![SP::Int(1)]).unwrap();
        let victim = st.insert(seg, vec![SP::Int(2)]).unwrap();
        let pin = st.pin_read();
        st.write_field(rec, 0, SP::Int(99)).unwrap();
        st.free(victim).unwrap();
        let late = st.insert(seg, vec![SP::Int(3)]).unwrap();
        {
            let _g = ReadEpochGuard::new(pin.epoch());
            assert_eq!(st.read_field(rec, 0).unwrap(), SP::Int(1), "pre-write value");
            assert_eq!(st.read(victim).unwrap(), vec![SP::Int(2)], "deleted record still visible");
            assert!(st.read(late).is_err(), "post-pin insert invisible");
            let mut seen = Vec::new();
            st.scan(seg, |_, f| seen.push(f[0].clone())).unwrap();
            assert_eq!(seen, vec![SP::Int(1), SP::Int(2)]);
        }
        // Unpinned reads see the latest state.
        assert_eq!(st.read_field(rec, 0).unwrap(), SP::Int(99));
        assert!(st.read(victim).is_err());
        assert_eq!(st.read(late).unwrap(), vec![SP::Int(3)]);
    }

    #[test]
    fn write_tickets_make_batches_all_or_none_for_new_pins() {
        let st = store();
        let seg = st.create_segment("s");
        let a = st.insert(seg, vec![SP::Int(1)]).unwrap();
        let b = st.insert(seg, vec![SP::Int(2)]).unwrap();
        let ticket = st.clock().begin_write();
        {
            let _g = crate::mvcc::WriteStampGuard::new(ticket.stamp());
            st.write_field(a, 0, SP::Int(10)).unwrap();
            // A pin taken mid-batch sees *neither* write.
            let pin = st.pin_read();
            let _r = ReadEpochGuard::new(pin.epoch());
            assert_eq!(st.read_field(a, 0).unwrap(), SP::Int(1));
            drop(_r);
            st.write_field(b, 0, SP::Int(20)).unwrap();
        }
        ticket.end();
        let pin = st.pin_read();
        let _r = ReadEpochGuard::new(pin.epoch());
        assert_eq!(st.read_field(a, 0).unwrap(), SP::Int(10));
        assert_eq!(st.read_field(b, 0).unwrap(), SP::Int(20));
    }

    #[test]
    fn fork_shared_is_a_handle_onto_the_same_contents() {
        let st = store();
        let seg = st.create_segment("s");
        let rec = st.insert(seg, vec![SP::Int(1)]).unwrap();
        let fork = st.fork_shared().unwrap();
        assert!(st.shares_contents_with(&fork));
        fork.write_field(rec, 0, SP::Int(2)).unwrap();
        assert_eq!(st.read_field(rec, 0).unwrap(), SP::Int(2), "mutation visible via original");
        let physical = st.fork().unwrap();
        assert!(!st.shares_contents_with(&physical));
    }

    #[test]
    fn gc_reclaims_superseded_versions_once_unpinned() {
        let st = store();
        let seg = st.create_segment("s");
        let rec = st.insert(seg, vec![SP::Int(0)]).unwrap();
        let pin = st.pin_read();
        for i in 1..=10 {
            st.write_field(rec, 0, SP::Int(i)).unwrap();
        }
        let victim = st.insert(seg, vec![SP::Int(100)]).unwrap();
        st.free(victim).unwrap();
        assert!(st.superseded_versions() >= 10);
        // The pin protects everything visible at its epoch.
        let early = st.gc(st.clock().gc_watermark());
        {
            let _g = ReadEpochGuard::new(pin.epoch());
            assert_eq!(st.read_field(rec, 0).unwrap(), SP::Int(0), "pinned view survives GC");
        }
        drop(pin);
        let late = st.gc(st.clock().gc_watermark());
        assert!(late > 0, "superseded versions reclaimed after unpin (early={early}, late={late})");
        assert_eq!(st.version_backlog(), 0);
        assert_eq!(st.read_field(rec, 0).unwrap(), SP::Int(10));
    }
}
