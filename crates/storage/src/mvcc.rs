//! Multi-version concurrency control: the epoch clock, write tickets,
//! read pins, and the thread-local epoch threading that gives the store
//! snapshot visibility without changing any call signature above it.
//!
//! Every record mutation is stamped with a **write stamp** drawn from one
//! monotone [`EpochClock`] shared by a store and all of its shared forks.
//! A batch of mutations that must become visible atomically (a
//! `WriteSession` operation, an evolution) registers a [`WriteTicket`]
//! before its first mutation: while the ticket is open, the clock's
//! *stable* epoch stalls just below the ticket's stamp, so no reader can
//! pin an epoch that would observe a half-installed batch. Unbatched
//! ("solo") mutations take a plain stamp with no ticket — they are
//! single-record and need no all-or-none window.
//!
//! Readers call [`EpochClock::pin`] (via `SliceStore::pin_read`) to hold a
//! [`ReadPin`] on the current stable epoch. Everything the pinning session
//! reads resolves against that epoch, for as long as the pin lives —
//! repeatable reads across concurrent write batches and evolution
//! swap-ins. [`EpochClock::gc_watermark`] is the oldest epoch any current
//! or future reader can observe; version-chain entries superseded at the
//! watermark are reclaimable.
//!
//! The epoch a store operation resolves against travels in **thread-local
//! state**, not in arguments: [`ReadEpochGuard`] pins the calling thread's
//! reads to an epoch, [`WriteStampGuard`] routes the calling thread's
//! mutations to a ticket's stamp. Both are RAII and nest (the previous
//! value is restored on drop), which lets the session layer thread epochs
//! through the object model and algebra without touching their signatures.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

thread_local! {
    static READ_EPOCH: Cell<Option<u64>> = const { Cell::new(None) };
    static WRITE_STAMP: Cell<Option<u64>> = const { Cell::new(None) };
}

/// The epoch the current thread's store reads resolve against, if pinned.
/// `None` means "latest committed version". Public so layers above the
/// store (the object model's membership map, extent caches) can resolve
/// their own versioned state against the same ambient epoch.
pub fn current_read_epoch() -> Option<u64> {
    READ_EPOCH.with(|c| c.get())
}

/// The write stamp the current thread's store mutations install under, if
/// a batch guard is active. `None` means the mutation is solo-stamped.
pub fn current_write_stamp() -> Option<u64> {
    WRITE_STAMP.with(|c| c.get())
}

/// RAII guard pinning the current thread's store reads to one epoch.
/// Nested guards shadow and restore the previous epoch on drop.
#[derive(Debug)]
pub struct ReadEpochGuard {
    prev: Option<u64>,
}

impl ReadEpochGuard {
    /// Pin this thread's reads to `epoch` until the guard drops.
    pub fn new(epoch: u64) -> Self {
        let prev = READ_EPOCH.with(|c| c.replace(Some(epoch)));
        ReadEpochGuard { prev }
    }
}

impl Drop for ReadEpochGuard {
    fn drop(&mut self) {
        READ_EPOCH.with(|c| c.set(self.prev));
    }
}

/// RAII guard routing the current thread's store mutations to one write
/// stamp (a [`WriteTicket`]'s). Nested guards shadow and restore.
#[derive(Debug)]
pub struct WriteStampGuard {
    prev: Option<u64>,
}

impl WriteStampGuard {
    /// Stamp this thread's mutations with `stamp` until the guard drops.
    pub fn new(stamp: u64) -> Self {
        let prev = WRITE_STAMP.with(|c| c.replace(Some(stamp)));
        WriteStampGuard { prev }
    }
}

impl Drop for WriteStampGuard {
    fn drop(&mut self) {
        WRITE_STAMP.with(|c| c.set(self.prev));
    }
}

/// The shared monotone stamp source for one store family (a store plus
/// every shared or physical fork of it).
#[derive(Debug)]
pub struct EpochClock {
    /// Next stamp to hand out. Stamps start at 1; stamp 0 is reserved for
    /// bootstrap/restored records, visible at every epoch.
    next: AtomicU64,
    /// Stamps of write tickets whose batches are still installing.
    inflight: Mutex<BTreeSet<u64>>,
    /// Multiset of epochs held by live [`ReadPin`]s.
    pinned: Mutex<BTreeMap<u64, usize>>,
}

impl Default for EpochClock {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochClock {
    /// A fresh clock: stable epoch 0, first stamp 1.
    pub fn new() -> Self {
        EpochClock {
            next: AtomicU64::new(1),
            inflight: Mutex::new(BTreeSet::new()),
            pinned: Mutex::new(BTreeMap::new()),
        }
    }

    /// Take a stamp for a single unbatched mutation. The stamp is
    /// immediately below the stable frontier once taken (no all-or-none
    /// window is provided — use [`EpochClock::begin_write`] for batches).
    pub fn solo_stamp(&self) -> u64 {
        self.next.fetch_add(1, Ordering::AcqRel)
    }

    /// The newest epoch at which every stamped version is fully
    /// installed: just below the oldest in-flight ticket, or just below
    /// the next unissued stamp when no ticket is open.
    pub fn stable(&self) -> u64 {
        let inflight = self.inflight.lock();
        match inflight.iter().next() {
            Some(&oldest) => oldest - 1,
            None => self.next.load(Ordering::Acquire) - 1,
        }
    }

    /// Register a write batch. Mutations made under the returned ticket's
    /// stamp become visible atomically when the ticket drops (or
    /// [`WriteTicket::end`] is called): until then the stable epoch stays
    /// below the stamp, so no reader pins an epoch that sees a partial
    /// batch.
    pub fn begin_write(self: &Arc<Self>) -> WriteTicket {
        let mut inflight = self.inflight.lock();
        let stamp = self.next.fetch_add(1, Ordering::AcqRel);
        inflight.insert(stamp);
        WriteTicket { clock: Arc::clone(self), stamp }
    }

    /// Pin the current stable epoch for repeatable reads. The pin holds
    /// the GC watermark at or below the pinned epoch until dropped.
    pub fn pin(self: &Arc<Self>) -> ReadPin {
        // Hold the pin table across the stable() computation so a
        // concurrent `gc_watermark` cannot slip between reading the
        // frontier and registering the pin.
        let mut pinned = self.pinned.lock();
        let epoch = self.stable_locked();
        *pinned.entry(epoch).or_insert(0) += 1;
        drop(pinned);
        ReadPin { clock: Arc::clone(self), epoch }
    }

    /// `stable()` without taking the pin table (caller holds it).
    fn stable_locked(&self) -> u64 {
        let inflight = self.inflight.lock();
        match inflight.iter().next() {
            Some(&oldest) => oldest - 1,
            None => self.next.load(Ordering::Acquire) - 1,
        }
    }

    /// The oldest epoch any live or future reader can resolve against:
    /// versions superseded at this epoch are unreachable and reclaimable.
    pub fn gc_watermark(&self) -> u64 {
        let pinned = self.pinned.lock();
        let stable = self.stable_locked();
        match pinned.keys().next() {
            Some(&oldest_pin) => oldest_pin.min(stable),
            None => stable,
        }
    }

    /// Number of distinct epochs currently held by read pins.
    pub fn pinned_epochs(&self) -> usize {
        self.pinned.lock().len()
    }

    fn end_write(&self, stamp: u64) {
        self.inflight.lock().remove(&stamp);
    }

    fn unpin(&self, epoch: u64) {
        let mut pinned = self.pinned.lock();
        if let Some(n) = pinned.get_mut(&epoch) {
            *n -= 1;
            if *n == 0 {
                pinned.remove(&epoch);
            }
        }
    }
}

/// An open write batch: holds the stable frontier below its stamp until
/// dropped, making everything installed under the stamp visible at once.
#[derive(Debug)]
pub struct WriteTicket {
    clock: Arc<EpochClock>,
    stamp: u64,
}

impl WriteTicket {
    /// The stamp every mutation of this batch installs under.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Publish the batch: equivalent to dropping the ticket.
    pub fn end(self) {}
}

impl Drop for WriteTicket {
    fn drop(&mut self) {
        self.clock.end_write(self.stamp);
    }
}

/// A pinned read epoch. While alive, versions visible at the epoch are
/// protected from garbage collection.
#[derive(Debug)]
pub struct ReadPin {
    clock: Arc<EpochClock>,
    epoch: u64,
}

impl ReadPin {
    /// The pinned epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for ReadPin {
    fn drop(&mut self) {
        self.clock.unpin(self.epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_stalls_below_open_tickets() {
        let clock = Arc::new(EpochClock::new());
        assert_eq!(clock.stable(), 0);
        let s1 = clock.solo_stamp();
        assert_eq!(s1, 1);
        assert_eq!(clock.stable(), 1, "solo stamps are immediately stable");

        let ticket = clock.begin_write();
        assert_eq!(ticket.stamp(), 2);
        assert_eq!(clock.stable(), 1, "open ticket holds the frontier");
        // Later solo stamps do not advance stability past the ticket.
        let s3 = clock.solo_stamp();
        assert_eq!(s3, 3);
        assert_eq!(clock.stable(), 1);
        ticket.end();
        assert_eq!(clock.stable(), 3, "frontier catches up once the batch publishes");
    }

    #[test]
    fn pins_hold_the_gc_watermark() {
        let clock = Arc::new(EpochClock::new());
        for _ in 0..5 {
            clock.solo_stamp();
        }
        let pin = clock.pin();
        assert_eq!(pin.epoch(), 5);
        for _ in 0..5 {
            clock.solo_stamp();
        }
        assert_eq!(clock.stable(), 10);
        assert_eq!(clock.gc_watermark(), 5, "pin holds the watermark");
        assert_eq!(clock.pinned_epochs(), 1);
        drop(pin);
        assert_eq!(clock.gc_watermark(), 10);
        assert_eq!(clock.pinned_epochs(), 0);
    }

    #[test]
    fn pins_never_observe_an_open_batch() {
        let clock = Arc::new(EpochClock::new());
        let ticket = clock.begin_write();
        let pin = clock.pin();
        assert!(pin.epoch() < ticket.stamp());
        ticket.end();
        let pin2 = clock.pin();
        assert!(pin2.epoch() >= 1);
    }

    #[test]
    fn thread_local_guards_nest_and_restore() {
        assert_eq!(current_read_epoch(), None);
        {
            let _outer = ReadEpochGuard::new(7);
            assert_eq!(current_read_epoch(), Some(7));
            {
                let _inner = ReadEpochGuard::new(3);
                assert_eq!(current_read_epoch(), Some(3));
            }
            assert_eq!(current_read_epoch(), Some(7));
        }
        assert_eq!(current_read_epoch(), None);

        assert_eq!(current_write_stamp(), None);
        {
            let _g = WriteStampGuard::new(42);
            assert_eq!(current_write_stamp(), Some(42));
        }
        assert_eq!(current_write_stamp(), None);
    }

    #[test]
    fn watermark_is_min_of_pins_and_stable() {
        let clock = Arc::new(EpochClock::new());
        clock.solo_stamp();
        let old = clock.pin(); // epoch 1
        clock.solo_stamp();
        clock.solo_stamp();
        let newer = clock.pin(); // epoch 3
        assert_eq!(clock.gc_watermark(), 1);
        drop(old);
        assert_eq!(clock.gc_watermark(), 3);
        drop(newer);
        assert_eq!(clock.gc_watermark(), 3);
    }
}
