//! Error type for the storage layer.

use std::fmt;

/// Result alias used across the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the paged store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The referenced segment does not exist (never created or dropped).
    UnknownSegment(u32),
    /// The referenced record slot does not exist or has been freed.
    UnknownRecord {
        /// Segment the record was looked up in.
        segment: u32,
        /// Slot index inside the segment.
        slot: u32,
    },
    /// A field index was out of bounds for the record.
    FieldOutOfBounds {
        /// Requested field index.
        index: usize,
        /// Actual number of fields in the record.
        len: usize,
    },
    /// A transaction was required but none is active, or one is already
    /// active when a new one was requested.
    TxnState(&'static str),
    /// Snapshot bytes were malformed.
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownSegment(s) => write!(f, "unknown segment {s}"),
            StorageError::UnknownRecord { segment, slot } => {
                write!(f, "unknown record {segment}:{slot}")
            }
            StorageError::FieldOutOfBounds { index, len } => {
                write!(f, "field index {index} out of bounds (record has {len} fields)")
            }
            StorageError::TxnState(msg) => write!(f, "transaction state error: {msg}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(StorageError::UnknownSegment(3).to_string(), "unknown segment 3");
        assert_eq!(
            StorageError::UnknownRecord { segment: 1, slot: 2 }.to_string(),
            "unknown record 1:2"
        );
        assert_eq!(
            StorageError::FieldOutOfBounds { index: 9, len: 2 }.to_string(),
            "field index 9 out of bounds (record has 2 fields)"
        );
        assert!(StorageError::TxnState("nested").to_string().contains("nested"));
        assert!(StorageError::Corrupt("bad magic".into()).to_string().contains("bad magic"));
    }
}
