//! Error type for the storage layer.

use std::fmt;

/// Result alias used across the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the paged store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The referenced segment does not exist (never created or dropped).
    UnknownSegment(u32),
    /// The referenced record slot does not exist or has been freed.
    UnknownRecord {
        /// Segment the record was looked up in.
        segment: u32,
        /// Slot index inside the segment.
        slot: u32,
    },
    /// A field index was out of bounds for the record.
    FieldOutOfBounds {
        /// Requested field index.
        index: usize,
        /// Actual number of fields in the record.
        len: usize,
    },
    /// A transaction was required but none is active, or one is already
    /// active when a new one was requested.
    TxnState(&'static str),
    /// Snapshot bytes were malformed.
    Corrupt(String),
    /// An operating-system I/O failure in the durable layer.
    Io(String),
    /// The write-ahead log refused an operation because an earlier fsync
    /// failed. After a failed fsync the kernel may have dropped the dirty
    /// pages, so the log's durable contents are unknowable — the only safe
    /// behavior is fail-stop: no further appends, reopen from disk.
    Poisoned(String),
    /// A failpoint fired with [`crate::FailAction::Error`]: a clean,
    /// injected failure the caller is expected to recover from by rolling
    /// back. Carries the site name.
    Injected(String),
    /// A failpoint simulated a process crash at this site. Callers must
    /// propagate it without cleanup — in-memory state is considered torn,
    /// like after a real crash; tests then re-open the system from disk.
    SimulatedCrash(String),
    /// A transient I/O failure (e.g. `EINTR`, a momentary device stall, or
    /// an injected [`crate::FailAction::TransientError`]). Nothing was
    /// written; retrying the same operation may succeed. The retry loop in
    /// [`crate::fault::with_retries`] only retries this kind.
    Transient(String),
    /// The device is out of space (`ENOSPC` or an injected
    /// [`crate::FailAction::DiskFull`]). Retrying without freeing space is
    /// pointless — callers should degrade to read-only and reclaim space
    /// (checkpoint + log reset) before healing.
    DiskFull(String),
}

impl StorageError {
    /// True for [`StorageError::SimulatedCrash`] — callers that normally
    /// roll back cleanly use this to leave state torn, as a real crash
    /// would.
    pub fn is_crash(&self) -> bool {
        matches!(self, StorageError::SimulatedCrash(_))
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownSegment(s) => write!(f, "unknown segment {s}"),
            StorageError::UnknownRecord { segment, slot } => {
                write!(f, "unknown record {segment}:{slot}")
            }
            StorageError::FieldOutOfBounds { index, len } => {
                write!(f, "field index {index} out of bounds (record has {len} fields)")
            }
            StorageError::TxnState(msg) => write!(f, "transaction state error: {msg}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            StorageError::Io(msg) => write!(f, "durable i/o error: {msg}"),
            StorageError::Poisoned(msg) => write!(f, "wal poisoned: {msg}"),
            StorageError::Injected(site) => write!(f, "injected fault at {site}"),
            StorageError::SimulatedCrash(site) => write!(f, "simulated crash at {site}"),
            StorageError::Transient(msg) => write!(f, "transient i/o error: {msg}"),
            StorageError::DiskFull(msg) => write!(f, "disk full: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(StorageError::UnknownSegment(3).to_string(), "unknown segment 3");
        assert_eq!(
            StorageError::UnknownRecord { segment: 1, slot: 2 }.to_string(),
            "unknown record 1:2"
        );
        assert_eq!(
            StorageError::FieldOutOfBounds { index: 9, len: 2 }.to_string(),
            "field index 9 out of bounds (record has 2 fields)"
        );
        assert!(StorageError::TxnState("nested").to_string().contains("nested"));
        assert!(StorageError::Corrupt("bad magic".into()).to_string().contains("bad magic"));
    }
}
