//! Durable file mechanics: atomic snapshot generations, a CRC32-framed
//! write-ahead log, and the manifest that names the current generation.
//!
//! This module owns the *byte and file* level of crash safety; the policy
//! level (what goes in the WAL, how recovery replays it) lives in
//! `tse-core`'s durable system. On-disk layout of a system directory:
//!
//! ```text
//! <dir>/MANIFEST        "TSEMANI1" | u64 generation | u32 crc(generation)
//! <dir>/snap-<gen>.tse  "TSEDURS1" | u64 wal_lsn | u64 len | u32 crc(payload) | payload
//! <dir>/wal.log         frames: u32 len | u32 crc(lsn‖payload) | u64 lsn | payload
//! ```
//!
//! Invariants:
//! * snapshot and manifest files are written via **temp file + fsync +
//!   atomic rename + directory fsync** — a crash leaves either the old or
//!   the new file, never a torn one;
//! * every WAL frame is **fsync'd before the logged change is applied**;
//! * a torn final WAL frame (crash mid-append) is detected by its length or
//!   CRC and truncated on open — everything before it remains valid;
//! * snapshot payloads are validated by CRC at read time, so a corrupt
//!   generation is *detected* and the caller can fall back to an older one.
//!
//! All write paths consult the [`FailpointRegistry`] (sites
//! `durable.snapshot_write`, `durable.manifest_write`, `durable.wal_append`)
//! so crash tests can kill the system at any byte offset of any write.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::{crc32, Crc32};
use crate::error::{StorageError, StorageResult};
use crate::failpoint::{FailAction, FailpointRegistry};

const MANIFEST_MAGIC: &[u8; 8] = b"TSEMANI1";
const SNAPSHOT_MAGIC: &[u8; 8] = b"TSEDURS1";

/// Name of the manifest file inside a system directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Name of the write-ahead log inside a system directory.
pub const WAL_FILE: &str = "wal.log";

fn io_err(ctx: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{ctx}: {e}"))
}

fn sync_dir(dir: &Path) -> StorageResult<()> {
    // Directory fsync makes the rename itself durable (POSIX requires it for
    // the new directory entry to survive a crash).
    let d = File::open(dir).map_err(|e| io_err("open dir for fsync", e))?;
    d.sync_all().map_err(|e| io_err("fsync dir", e))
}

/// Write `bytes` to `path` crash-atomically: temp file in the same
/// directory, fsync, rename over the target, fsync the directory. The
/// failpoint `site` can turn this into a clean error, a no-op crash, or a
/// torn write (first `keep_bytes` bytes land in the temp file, which is
/// never renamed — exactly what a mid-write power cut leaves).
pub fn write_atomic(
    path: &Path,
    bytes: &[u8],
    fp: &FailpointRegistry,
    site: &str,
) -> StorageResult<()> {
    let dir = path.parent().ok_or_else(|| StorageError::Io("path has no parent".into()))?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    match fp.hit(site) {
        Some(FailAction::Error) => return Err(StorageError::Injected(site.to_string())),
        Some(FailAction::Crash) => return Err(StorageError::SimulatedCrash(site.to_string())),
        Some(FailAction::TornWrite { keep_bytes }) => {
            let keep = keep_bytes.min(bytes.len());
            let mut f = File::create(&tmp).map_err(|e| io_err("create tmp", e))?;
            f.write_all(&bytes[..keep]).map_err(|e| io_err("torn write", e))?;
            f.sync_all().ok();
            return Err(StorageError::SimulatedCrash(site.to_string()));
        }
        None => {}
    }
    let mut f = File::create(&tmp).map_err(|e| io_err("create tmp", e))?;
    f.write_all(bytes).map_err(|e| io_err("write tmp", e))?;
    f.sync_all().map_err(|e| io_err("fsync tmp", e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err("rename tmp", e))?;
    sync_dir(dir)
}

// ----- manifest -------------------------------------------------------------

/// Atomically record `generation` as current in `<dir>/MANIFEST`.
pub fn write_manifest(
    dir: &Path,
    generation: u64,
    fp: &FailpointRegistry,
) -> StorageResult<()> {
    let mut buf = Vec::with_capacity(20);
    buf.extend_from_slice(MANIFEST_MAGIC);
    buf.extend_from_slice(&generation.to_be_bytes());
    buf.extend_from_slice(&crc32(&generation.to_be_bytes()).to_be_bytes());
    write_atomic(&dir.join(MANIFEST_FILE), &buf, fp, "durable.manifest_write")
}

/// Read the current generation from the manifest. `Ok(None)` when the file
/// does not exist (fresh directory); `Err` when it exists but is invalid —
/// the caller then falls back to scanning snapshot files.
pub fn read_manifest(dir: &Path) -> StorageResult<Option<u64>> {
    let bytes = match fs::read(dir.join(MANIFEST_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("read manifest", e)),
    };
    if bytes.len() != 20 || &bytes[..8] != MANIFEST_MAGIC {
        return Err(StorageError::Corrupt("bad manifest".into()));
    }
    let generation = u64::from_be_bytes(bytes[8..16].try_into().unwrap());
    let crc = u32::from_be_bytes(bytes[16..20].try_into().unwrap());
    if crc != crc32(&bytes[8..16]) {
        return Err(StorageError::Corrupt("manifest crc mismatch".into()));
    }
    Ok(Some(generation))
}

// ----- snapshot generations -------------------------------------------------

/// Path of snapshot generation `gen` inside `dir`.
pub fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation:016}.tse"))
}

/// All snapshot generations present in `dir`, descending (newest first).
/// Temp files from torn writes are ignored.
pub fn list_snapshot_generations(dir: &Path) -> StorageResult<Vec<u64>> {
    let mut gens = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err("read dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir entry", e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name.strip_prefix("snap-") {
            if let Some(num) = rest.strip_suffix(".tse") {
                if let Ok(g) = num.parse::<u64>() {
                    gens.push(g);
                }
            }
        }
    }
    gens.sort_unstable_by(|a, b| b.cmp(a));
    Ok(gens)
}

/// Write snapshot generation `generation`: the payload is framed with a
/// length and CRC plus the WAL LSN the snapshot covers, then written
/// atomically. Failpoint site: `durable.snapshot_write`.
pub fn write_snapshot_file(
    dir: &Path,
    generation: u64,
    wal_lsn: u64,
    payload: &[u8],
    fp: &FailpointRegistry,
) -> StorageResult<()> {
    let mut buf = Vec::with_capacity(payload.len() + 28);
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    buf.extend_from_slice(&wal_lsn.to_be_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    // CRC covers the header fields after the magic plus the payload, so a
    // flipped LSN or length is caught as surely as flipped payload bytes.
    let mut h = Crc32::new();
    h.update(&buf[8..24]);
    h.update(payload);
    buf.extend_from_slice(&h.finalize().to_be_bytes());
    buf.extend_from_slice(payload);
    write_atomic(&snapshot_path(dir, generation), &buf, fp, "durable.snapshot_write")
}

/// Read and validate snapshot generation `generation`; returns the WAL LSN
/// it covers and the raw payload. Any framing or CRC violation is
/// [`StorageError::Corrupt`] — the caller falls back to an older generation.
pub fn read_snapshot_file(dir: &Path, generation: u64) -> StorageResult<(u64, Vec<u8>)> {
    let bytes = fs::read(snapshot_path(dir, generation))
        .map_err(|e| io_err("read snapshot", e))?;
    if bytes.len() < 28 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(StorageError::Corrupt("bad snapshot header".into()));
    }
    let wal_lsn = u64::from_be_bytes(bytes[8..16].try_into().unwrap());
    let len = u64::from_be_bytes(bytes[16..24].try_into().unwrap()) as usize;
    let crc = u32::from_be_bytes(bytes[24..28].try_into().unwrap());
    let payload = &bytes[28..];
    if payload.len() != len {
        return Err(StorageError::Corrupt(format!(
            "snapshot payload length {} != framed {len}",
            payload.len()
        )));
    }
    let mut h = Crc32::new();
    h.update(&bytes[8..24]);
    h.update(payload);
    if h.finalize() != crc {
        return Err(StorageError::Corrupt("snapshot crc mismatch".into()));
    }
    Ok((wal_lsn, payload.to_vec()))
}

// ----- write-ahead log ------------------------------------------------------

/// One recovered WAL frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalFrame {
    /// Log sequence number (strictly increasing across the log).
    pub lsn: u64,
    /// Opaque logical record (the durable system stores evolve commands).
    pub payload: Vec<u8>,
}

/// Result of opening a WAL: the valid frames plus how many torn tail bytes
/// were truncated (0 on a clean log).
#[derive(Debug)]
pub struct WalRecovery {
    /// Every frame with a valid length and CRC, in log order.
    pub frames: Vec<WalFrame>,
    /// Bytes discarded from the tail (a frame a crash left incomplete).
    pub torn_bytes: u64,
}

/// Append-only, CRC32-framed write-ahead log.
///
/// Frame layout: `u32 payload_len | u32 crc(lsn ‖ payload) | u64 lsn |
/// payload`. Appends are fsync'd before returning, so a frame the caller
/// has seen acknowledged survives any later crash.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
    next_lsn: u64,
    failpoints: FailpointRegistry,
}

impl Wal {
    /// Open (or create) the log at `<dir>/wal.log`, validating every frame.
    /// A torn or corrupt tail is truncated; everything before it is
    /// returned. Frames are *not* interpreted here.
    pub fn open(dir: &Path, failpoints: FailpointRegistry) -> StorageResult<(Wal, WalRecovery)> {
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open wal", e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| io_err("read wal", e))?;

        let mut frames = Vec::new();
        let mut offset = 0usize;
        let mut next_lsn = 1u64;
        loop {
            let rest = &bytes[offset..];
            if rest.is_empty() {
                break;
            }
            if rest.len() < 16 {
                break; // torn header
            }
            let payload_len = u32::from_be_bytes(rest[..4].try_into().unwrap()) as usize;
            let crc = u32::from_be_bytes(rest[4..8].try_into().unwrap());
            if rest.len() < 16 + payload_len {
                break; // torn payload
            }
            let body = &rest[8..16 + payload_len]; // lsn ‖ payload
            if crc32(body) != crc {
                break; // corrupt frame: everything from here on is suspect
            }
            let lsn = u64::from_be_bytes(body[..8].try_into().unwrap());
            frames.push(WalFrame { lsn, payload: body[8..].to_vec() });
            next_lsn = lsn + 1;
            offset += 16 + payload_len;
        }
        let torn_bytes = (bytes.len() - offset) as u64;
        if torn_bytes > 0 {
            file.set_len(offset as u64).map_err(|e| io_err("truncate torn wal", e))?;
            file.sync_all().map_err(|e| io_err("fsync wal", e))?;
        }
        file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek wal", e))?;
        let wal = Wal { file, path, len: offset as u64, next_lsn, failpoints };
        Ok((wal, WalRecovery { frames, torn_bytes }))
    }

    /// Current log size in bytes (offset the next frame lands at).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The LSN the next appended frame will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Append one frame and fsync it. Returns the frame's LSN. Failpoint
    /// site `durable.wal_append` supports torn writes: only the first
    /// `keep_bytes` bytes of the frame reach the file before the simulated
    /// crash, which `open` must then detect and truncate.
    pub fn append(&mut self, payload: &[u8]) -> StorageResult<u64> {
        let lsn = self.next_lsn;
        let mut frame = Vec::with_capacity(16 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        let mut h = Crc32::new();
        h.update(&lsn.to_be_bytes());
        h.update(payload);
        frame.extend_from_slice(&h.finalize().to_be_bytes());
        frame.extend_from_slice(&lsn.to_be_bytes());
        frame.extend_from_slice(payload);

        match self.failpoints.hit("durable.wal_append") {
            Some(FailAction::Error) => {
                return Err(StorageError::Injected("durable.wal_append".into()))
            }
            Some(FailAction::Crash) => {
                return Err(StorageError::SimulatedCrash("durable.wal_append".into()))
            }
            Some(FailAction::TornWrite { keep_bytes }) => {
                let keep = keep_bytes.min(frame.len());
                self.file
                    .write_all(&frame[..keep])
                    .map_err(|e| io_err("torn wal append", e))?;
                self.file.sync_data().ok();
                self.len += keep as u64;
                return Err(StorageError::SimulatedCrash("durable.wal_append".into()));
            }
            None => {}
        }
        self.file.write_all(&frame).map_err(|e| io_err("wal append", e))?;
        self.file.sync_data().map_err(|e| io_err("wal fsync", e))?;
        self.len += frame.len() as u64;
        self.next_lsn = lsn + 1;
        Ok(lsn)
    }

    /// Truncate the log back to `offset` (undo of an appended frame whose
    /// logged change failed cleanly and was rolled back — the frame must
    /// not replay on recovery).
    pub fn truncate_to(&mut self, offset: u64) -> StorageResult<()> {
        self.file.set_len(offset).map_err(|e| io_err("truncate wal", e))?;
        self.file.sync_all().map_err(|e| io_err("fsync wal", e))?;
        self.file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek wal", e))?;
        self.len = offset;
        Ok(())
    }

    /// Drop every frame (after a checkpoint has made them redundant).
    /// The LSN counter keeps counting — LSNs are never reused.
    pub fn reset(&mut self) -> StorageResult<()> {
        self.truncate_to(0)?;
        Ok(())
    }

    /// Raise the next LSN to at least `min`. `open` derives its counter
    /// from the surviving frames, so after a checkpoint emptied the log
    /// the counter would restart at 1 — below the snapshot's covered LSN,
    /// making later frames look already-applied. Recovery calls this with
    /// `snapshot_lsn + 1` to keep LSNs monotonic across checkpoints.
    pub fn ensure_next_lsn(&mut self, min: u64) {
        if self.next_lsn < min {
            self.next_lsn = min;
        }
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("tse_durable_{}_{}", name, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn wal_roundtrip_and_lsn_continuity() {
        let dir = tmpdir("wal_rt");
        let fp = FailpointRegistry::new();
        let (mut wal, rec) = Wal::open(&dir, fp.clone()).unwrap();
        assert!(rec.frames.is_empty());
        assert_eq!(wal.append(b"alpha").unwrap(), 1);
        assert_eq!(wal.append(b"beta").unwrap(), 2);
        drop(wal);
        let (mut wal, rec) = Wal::open(&dir, fp).unwrap();
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(
            rec.frames,
            vec![
                WalFrame { lsn: 1, payload: b"alpha".to_vec() },
                WalFrame { lsn: 2, payload: b"beta".to_vec() },
            ]
        );
        assert_eq!(wal.append(b"gamma").unwrap(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_append_is_truncated_on_open() {
        let dir = tmpdir("wal_torn");
        let fp = FailpointRegistry::new();
        let (mut wal, _) = Wal::open(&dir, fp.clone()).unwrap();
        wal.append(b"keep me").unwrap();
        // Tear the next frame at every offset inside it.
        for keep in 0..(16 + 9) {
            fp.arm("durable.wal_append", 1, FailAction::TornWrite { keep_bytes: keep });
            let err = wal.append(b"lost data").unwrap_err();
            assert!(matches!(err, StorageError::SimulatedCrash(_)));
            drop(wal);
            let (w, rec) = Wal::open(&dir, fp.clone()).unwrap();
            wal = w;
            assert_eq!(rec.frames.len(), 1, "torn frame (keep={keep}) must vanish");
            assert_eq!(rec.frames[0].payload, b"keep me");
            assert_eq!(rec.torn_bytes, keep as u64, "exactly the torn bytes discarded");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_bit_flips_cut_the_log_at_the_corruption() {
        let dir = tmpdir("wal_flip");
        let fp = FailpointRegistry::new();
        let (mut wal, _) = Wal::open(&dir, fp.clone()).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"second").unwrap();
        drop(wal);
        let good = fs::read(dir.join(WAL_FILE)).unwrap();
        let first_frame = 16 + 5;
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x40;
            fs::write(dir.join(WAL_FILE), &bad).unwrap();
            let (_, rec) = Wal::open(&dir, fp.clone()).unwrap();
            let expect = if byte < first_frame { 0 } else { 1 };
            assert_eq!(rec.frames.len(), expect, "flip at byte {byte}");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_to_removes_the_last_frame() {
        let dir = tmpdir("wal_trunc");
        let fp = FailpointRegistry::new();
        let (mut wal, _) = Wal::open(&dir, fp.clone()).unwrap();
        wal.append(b"keep").unwrap();
        let before = wal.len();
        wal.append(b"drop").unwrap();
        wal.truncate_to(before).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, fp).unwrap();
        assert_eq!(rec.frames.len(), 1);
        assert_eq!(rec.frames[0].payload, b"keep");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_roundtrip_and_corruption() {
        let dir = tmpdir("manifest");
        let fp = FailpointRegistry::new();
        assert_eq!(read_manifest(&dir).unwrap(), None);
        write_manifest(&dir, 7, &fp).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(7));
        write_manifest(&dir, 8, &fp).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(8));
        let good = fs::read(dir.join(MANIFEST_FILE)).unwrap();
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x01;
            fs::write(dir.join(MANIFEST_FILE), &bad).unwrap();
            assert!(read_manifest(&dir).is_err(), "flip at byte {byte} accepted");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_file_validates_crc_and_lists_generations() {
        let dir = tmpdir("snapfile");
        let fp = FailpointRegistry::new();
        write_snapshot_file(&dir, 1, 10, b"payload one", &fp).unwrap();
        write_snapshot_file(&dir, 2, 20, b"payload two", &fp).unwrap();
        assert_eq!(list_snapshot_generations(&dir).unwrap(), vec![2, 1]);
        let (lsn, payload) = read_snapshot_file(&dir, 2).unwrap();
        assert_eq!((lsn, payload.as_slice()), (20, b"payload two".as_slice()));
        // Corrupt generation 2: every bit flip must be detected.
        let path = snapshot_path(&dir, 2);
        let good = fs::read(&path).unwrap();
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            fs::write(&path, &bad).unwrap();
            assert!(read_snapshot_file(&dir, 2).is_err(), "flip at byte {byte} accepted");
        }
        // Generation 1 is untouched — the fallback read succeeds.
        assert!(read_snapshot_file(&dir, 1).is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_snapshot_write_never_replaces_the_target() {
        let dir = tmpdir("snaptorn");
        let fp = FailpointRegistry::new();
        write_snapshot_file(&dir, 1, 5, b"generation one", &fp).unwrap();
        for keep in [0usize, 1, 8, 20, 27, 30] {
            fp.arm("durable.snapshot_write", 1, FailAction::TornWrite { keep_bytes: keep });
            let err = write_snapshot_file(&dir, 1, 6, b"generation two", &fp).unwrap_err();
            assert!(matches!(err, StorageError::SimulatedCrash(_)));
            let (lsn, payload) = read_snapshot_file(&dir, 1).unwrap();
            assert_eq!((lsn, payload.as_slice()), (5, b"generation one".as_slice()));
        }
        fs::remove_dir_all(&dir).ok();
    }
}
