//! Durable file mechanics: atomic snapshot generations, a CRC32-framed
//! write-ahead log, and the manifest that names the current generation.
//!
//! This module owns the *byte and file* level of crash safety; the policy
//! level (what goes in the WAL, how recovery replays it) lives in
//! `tse-core`'s durable system. On-disk layout of a system directory:
//!
//! ```text
//! <dir>/MANIFEST        "TSEMANI1" | u64 generation | u32 crc(generation)
//! <dir>/snap-<gen>.tse  "TSEDURS1" | u64 wal_lsn | u64 len | u32 crc(payload) | payload
//! <dir>/wal.log         frames: u32 len | u32 crc(lsn‖payload) | u64 lsn | payload
//! ```
//!
//! Invariants:
//! * snapshot and manifest files are written via **temp file + fsync +
//!   atomic rename + directory fsync** — a crash leaves either the old or
//!   the new file, never a torn one;
//! * every WAL frame is **fsync'd before the logged change is applied**;
//! * a torn final WAL frame (crash mid-append) is detected by its length or
//!   CRC and truncated on open — everything before it remains valid;
//! * snapshot payloads are validated by CRC at read time, so a corrupt
//!   generation is *detected* and the caller can fall back to an older one.
//!
//! All write paths consult the [`FailpointRegistry`] (sites
//! `durable.snapshot_write`, `durable.manifest_write`, `durable.wal_append`)
//! so crash tests can kill the system at any byte offset of any write.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use tse_telemetry::Telemetry;

use crate::crc::{crc32, Crc32};
use crate::error::{StorageError, StorageResult};
use crate::failpoint::{FailAction, FailpointRegistry};
use crate::fault::{IoFaultKind, RetryPolicy};

const MANIFEST_MAGIC: &[u8; 8] = b"TSEMANI1";
const SNAPSHOT_MAGIC: &[u8; 8] = b"TSEDURS1";

/// Name of the manifest file inside a system directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Name of the write-ahead log inside a system directory.
pub const WAL_FILE: &str = "wal.log";

fn io_err(ctx: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{ctx}: {e}"))
}

pub(crate) fn sync_dir(dir: &Path) -> StorageResult<()> {
    // Directory fsync makes the rename itself durable (POSIX requires it for
    // the new directory entry to survive a crash).
    let d = File::open(dir).map_err(|e| io_err("open dir for fsync", e))?;
    d.sync_all().map_err(|e| io_err("fsync dir", e))
}

/// Write `bytes` to `path` crash-atomically: temp file in the same
/// directory, fsync, rename over the target, fsync the directory. The
/// failpoint `site` can turn this into a clean error, a no-op crash, or a
/// torn write (first `keep_bytes` bytes land in the temp file, which is
/// never renamed — exactly what a mid-write power cut leaves).
pub fn write_atomic(
    path: &Path,
    bytes: &[u8],
    fp: &FailpointRegistry,
    site: &str,
) -> StorageResult<()> {
    let dir = path.parent().ok_or_else(|| StorageError::Io("path has no parent".into()))?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    match fp.hit(site) {
        Some(FailAction::Error) => return Err(StorageError::Injected(site.to_string())),
        Some(FailAction::Crash) => return Err(StorageError::SimulatedCrash(site.to_string())),
        Some(FailAction::TornWrite { keep_bytes }) => {
            let keep = keep_bytes.min(bytes.len());
            let mut f = File::create(&tmp).map_err(|e| io_err("create tmp", e))?;
            f.write_all(&bytes[..keep]).map_err(|e| io_err("torn write", e))?;
            f.sync_all().ok();
            return Err(StorageError::SimulatedCrash(site.to_string()));
        }
        // Transient/disk-full injections fail before any byte is written —
        // the target file is untouched, so retrying (transient) or degrading
        // (disk-full) is safe.
        Some(a @ FailAction::TransientError { .. }) | Some(a @ FailAction::DiskFull) => {
            return Err(a.to_error(site));
        }
        None => {}
    }
    let mut f = File::create(&tmp).map_err(|e| io_err("create tmp", e))?;
    f.write_all(bytes).map_err(|e| io_err("write tmp", e))?;
    f.sync_all().map_err(|e| io_err("fsync tmp", e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err("rename tmp", e))?;
    sync_dir(dir)
}

// ----- manifest -------------------------------------------------------------

/// Atomically record `generation` as current in `<dir>/MANIFEST`.
pub fn write_manifest(
    dir: &Path,
    generation: u64,
    fp: &FailpointRegistry,
) -> StorageResult<()> {
    let mut buf = Vec::with_capacity(20);
    buf.extend_from_slice(MANIFEST_MAGIC);
    buf.extend_from_slice(&generation.to_be_bytes());
    buf.extend_from_slice(&crc32(&generation.to_be_bytes()).to_be_bytes());
    write_atomic(&dir.join(MANIFEST_FILE), &buf, fp, "durable.manifest_write")
}

/// Read the current generation from the manifest. `Ok(None)` when the file
/// does not exist (fresh directory); `Err` when it exists but is invalid —
/// the caller then falls back to scanning snapshot files.
pub fn read_manifest(dir: &Path) -> StorageResult<Option<u64>> {
    let bytes = match fs::read(dir.join(MANIFEST_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("read manifest", e)),
    };
    if bytes.len() != 20 || &bytes[..8] != MANIFEST_MAGIC {
        return Err(StorageError::Corrupt("bad manifest".into()));
    }
    let generation = u64::from_be_bytes(bytes[8..16].try_into().unwrap());
    let crc = u32::from_be_bytes(bytes[16..20].try_into().unwrap());
    if crc != crc32(&bytes[8..16]) {
        return Err(StorageError::Corrupt("manifest crc mismatch".into()));
    }
    Ok(Some(generation))
}

// ----- snapshot generations -------------------------------------------------

/// Path of snapshot generation `gen` inside `dir`.
pub fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation:016}.tse"))
}

/// All snapshot generations present in `dir`, descending (newest first).
/// Temp files from torn writes are ignored.
pub fn list_snapshot_generations(dir: &Path) -> StorageResult<Vec<u64>> {
    let mut gens = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err("read dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir entry", e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name.strip_prefix("snap-") {
            if let Some(num) = rest.strip_suffix(".tse") {
                if let Ok(g) = num.parse::<u64>() {
                    gens.push(g);
                }
            }
        }
    }
    gens.sort_unstable_by(|a, b| b.cmp(a));
    Ok(gens)
}

/// Write snapshot generation `generation`: the payload is framed with a
/// length and CRC plus the WAL LSN the snapshot covers, then written
/// atomically. Failpoint site: `durable.snapshot_write`.
pub fn write_snapshot_file(
    dir: &Path,
    generation: u64,
    wal_lsn: u64,
    payload: &[u8],
    fp: &FailpointRegistry,
) -> StorageResult<()> {
    let mut buf = Vec::with_capacity(payload.len() + 28);
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    buf.extend_from_slice(&wal_lsn.to_be_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    // CRC covers the header fields after the magic plus the payload, so a
    // flipped LSN or length is caught as surely as flipped payload bytes.
    let mut h = Crc32::new();
    h.update(&buf[8..24]);
    h.update(payload);
    buf.extend_from_slice(&h.finalize().to_be_bytes());
    buf.extend_from_slice(payload);
    write_atomic(&snapshot_path(dir, generation), &buf, fp, "durable.snapshot_write")
}

/// Read and validate snapshot generation `generation`; returns the WAL LSN
/// it covers and the raw payload. Any framing or CRC violation is
/// [`StorageError::Corrupt`] — the caller falls back to an older generation.
pub fn read_snapshot_file(dir: &Path, generation: u64) -> StorageResult<(u64, Vec<u8>)> {
    let bytes = fs::read(snapshot_path(dir, generation))
        .map_err(|e| io_err("read snapshot", e))?;
    if bytes.len() < 28 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(StorageError::Corrupt("bad snapshot header".into()));
    }
    let wal_lsn = u64::from_be_bytes(bytes[8..16].try_into().unwrap());
    let len = u64::from_be_bytes(bytes[16..24].try_into().unwrap()) as usize;
    let crc = u32::from_be_bytes(bytes[24..28].try_into().unwrap());
    let payload = &bytes[28..];
    if payload.len() != len {
        return Err(StorageError::Corrupt(format!(
            "snapshot payload length {} != framed {len}",
            payload.len()
        )));
    }
    let mut h = Crc32::new();
    h.update(&bytes[8..24]);
    h.update(payload);
    if h.finalize() != crc {
        return Err(StorageError::Corrupt("snapshot crc mismatch".into()));
    }
    Ok((wal_lsn, payload.to_vec()))
}

// ----- write-ahead log ------------------------------------------------------

/// One recovered WAL frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalFrame {
    /// Log sequence number (strictly increasing across the log).
    pub lsn: u64,
    /// Opaque logical record (the durable system stores evolve commands).
    pub payload: Vec<u8>,
}

/// Result of opening a WAL: the valid frames plus how many torn tail bytes
/// were truncated (0 on a clean log).
#[derive(Debug)]
pub struct WalRecovery {
    /// Every frame with a valid length and CRC, in log order.
    pub frames: Vec<WalFrame>,
    /// Bytes discarded from the tail (a frame a crash left incomplete).
    pub torn_bytes: u64,
}

/// Append-only, CRC32-framed write-ahead log.
///
/// Frame layout: `u32 payload_len | u32 crc(lsn ‖ payload) | u64 lsn |
/// payload`. Appends are fsync'd before returning, so a frame the caller
/// has seen acknowledged survives any later crash.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
    next_lsn: u64,
    poisoned: bool,
    failpoints: FailpointRegistry,
}

impl Wal {
    /// Open (or create) the log at `<dir>/wal.log`, validating every frame.
    /// A torn or corrupt tail is truncated; everything before it is
    /// returned. Frames are *not* interpreted here.
    pub fn open(dir: &Path, failpoints: FailpointRegistry) -> StorageResult<(Wal, WalRecovery)> {
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open wal", e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| io_err("read wal", e))?;

        let mut frames = Vec::new();
        let mut offset = 0usize;
        let mut next_lsn = 1u64;
        loop {
            let rest = &bytes[offset..];
            if rest.is_empty() {
                break;
            }
            if rest.len() < 16 {
                break; // torn header
            }
            let payload_len = u32::from_be_bytes(rest[..4].try_into().unwrap()) as usize;
            let crc = u32::from_be_bytes(rest[4..8].try_into().unwrap());
            if rest.len() < 16 + payload_len {
                break; // torn payload
            }
            let body = &rest[8..16 + payload_len]; // lsn ‖ payload
            if crc32(body) != crc {
                break; // corrupt frame: everything from here on is suspect
            }
            let lsn = u64::from_be_bytes(body[..8].try_into().unwrap());
            frames.push(WalFrame { lsn, payload: body[8..].to_vec() });
            next_lsn = lsn + 1;
            offset += 16 + payload_len;
        }
        let torn_bytes = (bytes.len() - offset) as u64;
        if torn_bytes > 0 {
            file.set_len(offset as u64).map_err(|e| io_err("truncate torn wal", e))?;
            file.sync_all().map_err(|e| io_err("fsync wal", e))?;
        }
        file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek wal", e))?;
        let wal = Wal { file, path, len: offset as u64, next_lsn, poisoned: false, failpoints };
        Ok((wal, WalRecovery { frames, torn_bytes }))
    }

    /// Current log size in bytes (offset the next frame lands at).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The LSN the next appended frame will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Append one frame and fsync it. Returns the frame's LSN. Equivalent
    /// to [`Wal::append_nosync`] followed by [`Wal::sync`].
    pub fn append(&mut self, payload: &[u8]) -> StorageResult<u64> {
        let lsn = self.append_nosync(payload)?;
        self.sync()?;
        Ok(lsn)
    }

    /// [`Wal::append`] with bounded retry of *transient* faults, before the
    /// frame is acknowledged. The append is retried while nothing has
    /// reached the file; a transient fsync stall is retried on the same
    /// descriptor. If the sync retries are exhausted the log is poisoned —
    /// an appended-but-unsynced frame has unknowable durability, the same
    /// fail-stop rule as a real failed fsync.
    pub fn append_retry(&mut self, payload: &[u8], policy: &RetryPolicy) -> StorageResult<u64> {
        let fp = self.failpoints.clone();
        let mut attempt = 0u32;
        let lsn = loop {
            match self.append_nosync(payload) {
                Ok(l) => break l,
                Err(e)
                    if IoFaultKind::of(&e) == IoFaultKind::Transient
                        && attempt < policy.max_retries =>
                {
                    fp.backoff_sleep(policy.backoff_ns(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        };
        let mut attempt = 0u32;
        loop {
            match self.sync() {
                Ok(()) => return Ok(lsn),
                Err(e)
                    if IoFaultKind::of(&e) == IoFaultKind::Transient
                        && attempt < policy.max_retries =>
                {
                    fp.backoff_sleep(policy.backoff_ns(attempt));
                    attempt += 1;
                }
                Err(e) => {
                    self.poisoned = true;
                    return Err(e);
                }
            }
        }
    }

    /// Append one frame **without** fsyncing it. The frame is durable only
    /// after a subsequent [`Wal::sync`] succeeds — group commit uses this
    /// to batch many frames under one fsync. Returns the frame's LSN.
    ///
    /// Failpoint site `durable.wal_append` supports torn writes: only the
    /// first `keep_bytes` bytes of the frame reach the file before the
    /// simulated crash, which `open` must then detect and truncate. Crash
    /// and torn-write injections also poison the log, so other threads of a
    /// "dead" process cannot keep appending past the tear.
    pub fn append_nosync(&mut self, payload: &[u8]) -> StorageResult<u64> {
        if self.poisoned {
            return Err(poisoned_err());
        }
        let lsn = self.next_lsn;
        let mut frame = Vec::with_capacity(16 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        let mut h = Crc32::new();
        h.update(&lsn.to_be_bytes());
        h.update(payload);
        frame.extend_from_slice(&h.finalize().to_be_bytes());
        frame.extend_from_slice(&lsn.to_be_bytes());
        frame.extend_from_slice(payload);

        match self.failpoints.hit("durable.wal_append") {
            Some(FailAction::Error) => {
                // Clean injected failure: nothing reached the file, the log
                // is intact and stays usable.
                return Err(StorageError::Injected("durable.wal_append".into()));
            }
            Some(FailAction::Crash) => {
                self.poisoned = true;
                return Err(StorageError::SimulatedCrash("durable.wal_append".into()));
            }
            Some(FailAction::TornWrite { keep_bytes }) => {
                let keep = keep_bytes.min(frame.len());
                self.file
                    .write_all(&frame[..keep])
                    .map_err(|e| io_err("torn wal append", e))?;
                self.file.sync_data().ok();
                self.len += keep as u64;
                self.poisoned = true;
                return Err(StorageError::SimulatedCrash("durable.wal_append".into()));
            }
            // Nothing reached the file: the log stays intact and usable, so
            // neither action poisons. Transient is retried by the caller's
            // bounded backoff loop; disk-full degrades the system instead.
            Some(a @ FailAction::TransientError { .. }) | Some(a @ FailAction::DiskFull) => {
                return Err(a.to_error("durable.wal_append"));
            }
            None => {}
        }
        if let Err(e) = self.file.write_all(&frame) {
            // A partial write leaves the tail in an unknown state.
            self.poisoned = true;
            return Err(io_err("wal append", e));
        }
        self.len += frame.len() as u64;
        self.next_lsn = lsn + 1;
        Ok(lsn)
    }

    /// Fsync all appended frames. A failure **poisons** the log: after a
    /// failed fsync the kernel may have discarded the dirty pages, so
    /// retrying could silently ack frames that never reach disk — the only
    /// safe response is fail-stop (every later append or sync returns
    /// [`StorageError::Poisoned`]; recovery re-opens from disk). Failpoint
    /// site: `durable.wal_fsync`.
    pub fn sync(&mut self) -> StorageResult<()> {
        if self.poisoned {
            return Err(poisoned_err());
        }
        match self.failpoints.hit("durable.wal_fsync") {
            Some(FailAction::Error) => {
                self.poisoned = true;
                return Err(StorageError::Injected("durable.wal_fsync".into()));
            }
            Some(FailAction::Crash) | Some(FailAction::TornWrite { .. }) => {
                self.poisoned = true;
                return Err(StorageError::SimulatedCrash("durable.wal_fsync".into()));
            }
            // An injected transient fsync failure simulates a stall where
            // the fsync never ran — no pages were dropped, so the log is
            // not poisoned and the *pre-ack* retry loop may try again.
            // (A real fsync failure below still poisons: after the kernel
            // reports an fsync error the dirty pages may be gone.)
            Some(a @ FailAction::TransientError { .. }) => {
                return Err(a.to_error("durable.wal_fsync"));
            }
            // Disk-full at fsync: the batch's durability is unknowable,
            // exactly like a failed fsync — fail-stop until healed.
            Some(a @ FailAction::DiskFull) => {
                self.poisoned = true;
                return Err(a.to_error("durable.wal_fsync"));
            }
            None => {}
        }
        if let Err(e) = self.file.sync_data() {
            self.poisoned = true;
            return Err(io_err("wal fsync", e));
        }
        Ok(())
    }

    /// True once a failed fsync (or torn append) has switched the log to
    /// fail-stop mode.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Switch the log to fail-stop mode explicitly. [`GroupWal`] calls this
    /// when its out-of-lock fsync on a cloned handle fails.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// A second handle to the log file, for fsyncing outside the owner's
    /// lock (the kernel flushes per file, not per descriptor).
    pub fn try_clone_file(&self) -> StorageResult<File> {
        self.file.try_clone().map_err(|e| io_err("clone wal handle", e))
    }

    /// Truncate the log back to `offset` (undo of an appended frame whose
    /// logged change failed cleanly and was rolled back — the frame must
    /// not replay on recovery).
    pub fn truncate_to(&mut self, offset: u64) -> StorageResult<()> {
        self.file.set_len(offset).map_err(|e| io_err("truncate wal", e))?;
        self.file.sync_all().map_err(|e| io_err("fsync wal", e))?;
        self.file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek wal", e))?;
        self.len = offset;
        Ok(())
    }

    /// Drop every frame (after a checkpoint has made them redundant).
    /// The LSN counter keeps counting — LSNs are never reused.
    pub fn reset(&mut self) -> StorageResult<()> {
        self.truncate_to(0)?;
        Ok(())
    }

    /// Raise the next LSN to at least `min`. `open` derives its counter
    /// from the surviving frames, so after a checkpoint emptied the log
    /// the counter would restart at 1 — below the snapshot's covered LSN,
    /// making later frames look already-applied. Recovery calls this with
    /// `snapshot_lsn + 1` to keep LSNs monotonic across checkpoints.
    pub fn ensure_next_lsn(&mut self, min: u64) {
        if self.next_lsn < min {
            self.next_lsn = min;
        }
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn poisoned_err() -> StorageError {
    StorageError::Poisoned("an earlier fsync failed; reopen the log from disk".into())
}

// ----- group commit ---------------------------------------------------------

struct GroupState {
    wal: Wal,
    /// Sequence number of the newest appended (possibly unsynced) frame.
    append_seq: u64,
    /// Every append with sequence ≤ this is on disk.
    flushed_seq: u64,
    /// A leader is fsyncing outside the lock right now.
    syncing: bool,
}

struct GroupInner {
    state: Mutex<GroupState>,
    flushed: Condvar,
    failpoints: FailpointRegistry,
    telemetry: Telemetry,
    /// Pre-ack retry policy for transient append/fsync faults.
    policy: RetryPolicy,
}

/// Group-commit wrapper around [`Wal`], shared by concurrent appenders.
///
/// [`GroupWal::append`] writes the frame under a short mutex hold, then one
/// appender becomes the *flush leader*: it clones the file handle, releases
/// the lock, and fsyncs the whole batch while followers wait on a condvar
/// (and new appenders keep writing frames for the *next* batch). The fsync
/// happening outside the lock is what makes batches form: with the lock
/// held, appends and fsyncs would interleave 1:1.
///
/// Per-flush telemetry: `wal.group_size` (frames per fsync, the batching
/// evidence) and `wal.fsync_ns`. A failed fsync poisons the underlying log
/// (`wal.poisoned` counter) and wakes every waiter with
/// [`StorageError::Poisoned`].
#[derive(Clone)]
pub struct GroupWal {
    inner: Arc<GroupInner>,
}

impl GroupWal {
    /// Wrap `wal` for group commit. `failpoints` guards the leader's fsync
    /// (site `durable.wal_fsync`); flush telemetry lands in `telemetry`;
    /// transient append/fsync faults are retried per `policy` *before* any
    /// caller's append is acknowledged.
    pub fn new(
        wal: Wal,
        failpoints: FailpointRegistry,
        telemetry: Telemetry,
        policy: RetryPolicy,
    ) -> GroupWal {
        GroupWal {
            inner: Arc::new(GroupInner {
                state: Mutex::new(GroupState {
                    wal,
                    append_seq: 0,
                    flushed_seq: 0,
                    syncing: false,
                }),
                flushed: Condvar::new(),
                failpoints,
                telemetry,
                policy,
            }),
        }
    }

    /// Append one frame and return once it is **durable** (its batch has
    /// been fsynced). Returns the frame's LSN.
    pub fn append(&self, payload: &[u8]) -> StorageResult<u64> {
        let inner = &*self.inner;
        let begun = Instant::now();
        let mut st = inner.state.lock().unwrap();
        // Transient append faults are retried under the mutex — nothing has
        // reached the file, and the retry must observe the same log tail.
        // Backoff goes through the failpoint clock, so tests are instant.
        let mut attempt = 0u32;
        let lsn = loop {
            match st.wal.append_nosync(payload) {
                Ok(l) => break l,
                Err(e)
                    if IoFaultKind::of(&e) == IoFaultKind::Transient
                        && attempt < inner.policy.max_retries =>
                {
                    inner.telemetry.incr("fault.retries", 1);
                    inner.failpoints.backoff_sleep(inner.policy.backoff_ns(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        };
        st.append_seq += 1;
        let my_seq = st.append_seq;
        while st.flushed_seq < my_seq {
            if st.wal.is_poisoned() {
                return Err(poisoned_err());
            }
            if st.syncing {
                // A leader is already flushing (possibly a batch that does
                // not cover us yet) — wait for its verdict.
                st = inner.flushed.wait(st).unwrap();
                continue;
            }
            // Become the flush leader for everything appended so far.
            st.syncing = true;
            let target = st.append_seq;
            let batch = target - st.flushed_seq;
            let file = st.wal.try_clone_file();
            drop(st);
            let result = file.and_then(|f| self.fsync_outside_lock(&f));
            st = inner.state.lock().unwrap();
            st.syncing = false;
            match result {
                Ok(()) => {
                    if st.flushed_seq < target {
                        st.flushed_seq = target;
                    }
                    inner.telemetry.observe_ns("wal.group_size", batch);
                    inner.flushed.notify_all();
                }
                Err(e) => {
                    st.wal.poison();
                    inner.telemetry.incr("wal.poisoned", 1);
                    inner.flushed.notify_all();
                    return Err(e);
                }
            }
        }
        drop(st);
        // Total time from append to durability ack — lock wait + queueing
        // behind a leader's fsync + our own flush. Attributed to the calling
        // thread so a slow op can cite its commit wait.
        inner
            .telemetry
            .observe_ns("wal.commit_wait_ns", (begun.elapsed().as_nanos() as u64).max(1));
        Ok(lsn)
    }

    fn fsync_outside_lock(&self, file: &File) -> StorageResult<()> {
        // Transient fsync stalls are retried here, outside the lock, before
        // any waiter of this batch is acknowledged. Non-transient failures
        // (and exhausted retries) propagate to the leader, which poisons
        // the log.
        let mut attempt = 0u32;
        loop {
            match self.fsync_once(file) {
                Ok(()) => return Ok(()),
                Err(e)
                    if IoFaultKind::of(&e) == IoFaultKind::Transient
                        && attempt < self.inner.policy.max_retries =>
                {
                    self.inner.telemetry.incr("fault.retries", 1);
                    self.inner.failpoints.backoff_sleep(self.inner.policy.backoff_ns(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn fsync_once(&self, file: &File) -> StorageResult<()> {
        match self.inner.failpoints.hit("durable.wal_fsync") {
            Some(FailAction::Error) => {
                return Err(StorageError::Injected("durable.wal_fsync".into()));
            }
            Some(FailAction::Crash) | Some(FailAction::TornWrite { .. }) => {
                return Err(StorageError::SimulatedCrash("durable.wal_fsync".into()));
            }
            Some(a @ FailAction::TransientError { .. }) | Some(a @ FailAction::DiskFull) => {
                return Err(a.to_error("durable.wal_fsync"));
            }
            None => {}
        }
        let begun = Instant::now();
        file.sync_data().map_err(|e| io_err("group wal fsync", e))?;
        self.inner.telemetry.observe_ns("wal.fsync_ns", begun.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Run `f` on the underlying log with no flush in flight. Exclusive
    /// sections (evolve, checkpoint) use this for append/truncate/reset
    /// sequences that must not interleave with a leader's fsync.
    pub fn with_wal<R>(&self, f: impl FnOnce(&mut Wal) -> R) -> R {
        let mut st = self.inner.state.lock().unwrap();
        while st.syncing {
            st = self.inner.flushed.wait(st).unwrap();
        }
        f(&mut st.wal)
    }

    /// Current log size in bytes.
    pub fn len(&self) -> u64 {
        self.inner.state.lock().unwrap().wal.len()
    }

    /// True when the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the underlying log is in fail-stop mode.
    pub fn is_poisoned(&self) -> bool {
        self.inner.state.lock().unwrap().wal.is_poisoned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("tse_durable_{}_{}", name, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn wal_roundtrip_and_lsn_continuity() {
        let dir = tmpdir("wal_rt");
        let fp = FailpointRegistry::new();
        let (mut wal, rec) = Wal::open(&dir, fp.clone()).unwrap();
        assert!(rec.frames.is_empty());
        assert_eq!(wal.append(b"alpha").unwrap(), 1);
        assert_eq!(wal.append(b"beta").unwrap(), 2);
        drop(wal);
        let (mut wal, rec) = Wal::open(&dir, fp).unwrap();
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(
            rec.frames,
            vec![
                WalFrame { lsn: 1, payload: b"alpha".to_vec() },
                WalFrame { lsn: 2, payload: b"beta".to_vec() },
            ]
        );
        assert_eq!(wal.append(b"gamma").unwrap(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_append_is_truncated_on_open() {
        let dir = tmpdir("wal_torn");
        let fp = FailpointRegistry::new();
        let (mut wal, _) = Wal::open(&dir, fp.clone()).unwrap();
        wal.append(b"keep me").unwrap();
        // Tear the next frame at every offset inside it.
        for keep in 0..(16 + 9) {
            fp.arm("durable.wal_append", 1, FailAction::TornWrite { keep_bytes: keep });
            let err = wal.append(b"lost data").unwrap_err();
            assert!(matches!(err, StorageError::SimulatedCrash(_)));
            drop(wal);
            let (w, rec) = Wal::open(&dir, fp.clone()).unwrap();
            wal = w;
            assert_eq!(rec.frames.len(), 1, "torn frame (keep={keep}) must vanish");
            assert_eq!(rec.frames[0].payload, b"keep me");
            assert_eq!(rec.torn_bytes, keep as u64, "exactly the torn bytes discarded");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_bit_flips_cut_the_log_at_the_corruption() {
        let dir = tmpdir("wal_flip");
        let fp = FailpointRegistry::new();
        let (mut wal, _) = Wal::open(&dir, fp.clone()).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"second").unwrap();
        drop(wal);
        let good = fs::read(dir.join(WAL_FILE)).unwrap();
        let first_frame = 16 + 5;
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x40;
            fs::write(dir.join(WAL_FILE), &bad).unwrap();
            let (_, rec) = Wal::open(&dir, fp.clone()).unwrap();
            let expect = if byte < first_frame { 0 } else { 1 };
            assert_eq!(rec.frames.len(), expect, "flip at byte {byte}");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_to_removes_the_last_frame() {
        let dir = tmpdir("wal_trunc");
        let fp = FailpointRegistry::new();
        let (mut wal, _) = Wal::open(&dir, fp.clone()).unwrap();
        wal.append(b"keep").unwrap();
        let before = wal.len();
        wal.append(b"drop").unwrap();
        wal.truncate_to(before).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, fp).unwrap();
        assert_eq!(rec.frames.len(), 1);
        assert_eq!(rec.frames[0].payload, b"keep");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_failure_poisons_the_log() {
        let dir = tmpdir("wal_poison");
        let fp = FailpointRegistry::new();
        let (mut wal, _) = Wal::open(&dir, fp.clone()).unwrap();
        wal.append(b"good").unwrap();
        fp.arm("durable.wal_fsync", 1, FailAction::Error);
        let err = wal.append(b"doomed").unwrap_err();
        assert!(matches!(err, StorageError::Injected(_)));
        assert!(wal.is_poisoned());
        // Fail-stop: every further append/sync refuses without touching
        // the file. Poisoning promises "no further acks", not that the
        // doomed frame is absent (its bytes may sit in the page cache).
        assert!(matches!(wal.append(b"after").unwrap_err(), StorageError::Poisoned(_)));
        assert!(matches!(wal.sync().unwrap_err(), StorageError::Poisoned(_)));
        drop(wal);
        let (wal, rec) = Wal::open(&dir, fp).unwrap();
        assert!(!wal.is_poisoned());
        assert!(rec.frames.iter().any(|f| f.payload == b"good"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_appends_from_many_threads() {
        let dir = tmpdir("wal_group");
        let fp = FailpointRegistry::new();
        let telemetry = Telemetry::new();
        let (wal, _) = Wal::open(&dir, fp.clone()).unwrap();
        let group = GroupWal::new(wal, fp.clone(), telemetry.clone(), RetryPolicy::default());
        let (threads, per) = (8usize, 25usize);
        std::thread::scope(|s| {
            for t in 0..threads {
                let group = group.clone();
                s.spawn(move || {
                    for i in 0..per {
                        group.append(format!("t{t}i{i}").as_bytes()).unwrap();
                    }
                });
            }
        });
        assert_eq!(group.with_wal(|w| w.next_lsn()), (threads * per) as u64 + 1);
        drop(group);
        let (_, rec) = Wal::open(&dir, fp).unwrap();
        assert_eq!(rec.frames.len(), threads * per, "every acked append is on disk");
        let snap = telemetry.snapshot();
        let sizes = snap.histograms.get("wal.group_size").expect("group_size recorded");
        assert!(sizes.count >= 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_fsync_failure_poisons_and_fails_stop() {
        let dir = tmpdir("wal_group_poison");
        let fp = FailpointRegistry::new();
        let telemetry = Telemetry::new();
        let (wal, _) = Wal::open(&dir, fp.clone()).unwrap();
        let group = GroupWal::new(wal, fp.clone(), telemetry.clone(), RetryPolicy::none());
        group.append(b"fine").unwrap();
        fp.arm("durable.wal_fsync", 1, FailAction::Error);
        assert!(matches!(group.append(b"doomed").unwrap_err(), StorageError::Injected(_)));
        assert!(group.is_poisoned());
        assert!(matches!(group.append(b"later").unwrap_err(), StorageError::Poisoned(_)));
        assert_eq!(telemetry.snapshot().counter("wal.poisoned"), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_append_rides_out_transient_fsync_faults() {
        let dir = tmpdir("wal_group_transient");
        let fp = FailpointRegistry::new();
        fp.set_virtual_clock(true);
        let telemetry = Telemetry::new();
        let (wal, _) = Wal::open(&dir, fp.clone()).unwrap();
        let policy = RetryPolicy { max_retries: 4, base_backoff_ns: 1000, max_backoff_ns: 8000 };
        let group = GroupWal::new(wal, fp.clone(), telemetry.clone(), policy);
        // Three consecutive fsync stalls, then the device recovers: the
        // append must succeed with no poisoning and no lost ack.
        fp.arm("durable.wal_fsync", 1, FailAction::TransientError { succeed_after: 3 });
        group.append(b"survives").unwrap();
        assert!(!group.is_poisoned());
        assert_eq!(telemetry.snapshot().counter("fault.retries"), 3);
        assert_eq!(fp.virtual_slept_ns(), 1000 + 2000 + 4000, "exponential backoff schedule");
        drop(group);
        let (_, rec) = Wal::open(&dir, fp).unwrap();
        assert_eq!(rec.frames.len(), 1, "the acked frame is durable");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhausted_transient_fsync_retries_poison_fail_stop() {
        let dir = tmpdir("wal_group_exhaust");
        let fp = FailpointRegistry::new();
        fp.set_virtual_clock(true);
        let telemetry = Telemetry::new();
        let (wal, _) = Wal::open(&dir, fp.clone()).unwrap();
        let policy = RetryPolicy { max_retries: 2, base_backoff_ns: 1, max_backoff_ns: 8 };
        let group = GroupWal::new(wal, fp.clone(), telemetry.clone(), policy);
        // The stall outlasts the retry budget: the append fails with a
        // transient error and the log is poisoned (the frame is appended
        // but of unknowable durability — fail-stop, never ack).
        fp.arm("durable.wal_fsync", 1, FailAction::TransientError { succeed_after: 10 });
        assert!(matches!(group.append(b"doomed").unwrap_err(), StorageError::Transient(_)));
        assert!(group.is_poisoned());
        assert_eq!(telemetry.snapshot().counter("wal.poisoned"), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_full_append_leaves_log_usable_after_disarm() {
        let dir = tmpdir("wal_disk_full");
        let fp = FailpointRegistry::new();
        let telemetry = Telemetry::new();
        let (wal, _) = Wal::open(&dir, fp.clone()).unwrap();
        let group = GroupWal::new(wal, fp.clone(), telemetry, RetryPolicy::default());
        group.append(b"before").unwrap();
        fp.arm("durable.wal_append", 1, FailAction::DiskFull);
        // Disk-full is sticky and not retried: every append fails cleanly
        // with nothing written and no poisoning.
        assert!(matches!(group.append(b"a").unwrap_err(), StorageError::DiskFull(_)));
        assert!(matches!(group.append(b"b").unwrap_err(), StorageError::DiskFull(_)));
        assert!(!group.is_poisoned());
        fp.disarm("durable.wal_append");
        group.append(b"after").unwrap();
        drop(group);
        let (_, rec) = Wal::open(&dir, fp).unwrap();
        let payloads: Vec<&[u8]> = rec.frames.iter().map(|f| f.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"before".as_slice(), b"after".as_slice()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_retry_rides_out_transient_append_faults() {
        let dir = tmpdir("wal_append_retry");
        let fp = FailpointRegistry::new();
        fp.set_virtual_clock(true);
        let (mut wal, _) = Wal::open(&dir, fp.clone()).unwrap();
        let policy = RetryPolicy { max_retries: 3, base_backoff_ns: 1, max_backoff_ns: 8 };
        fp.arm("durable.wal_append", 1, FailAction::TransientError { succeed_after: 2 });
        assert_eq!(wal.append_retry(b"ok", &policy).unwrap(), 1);
        assert!(!wal.is_poisoned());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_roundtrip_and_corruption() {
        let dir = tmpdir("manifest");
        let fp = FailpointRegistry::new();
        assert_eq!(read_manifest(&dir).unwrap(), None);
        write_manifest(&dir, 7, &fp).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(7));
        write_manifest(&dir, 8, &fp).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(8));
        let good = fs::read(dir.join(MANIFEST_FILE)).unwrap();
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x01;
            fs::write(dir.join(MANIFEST_FILE), &bad).unwrap();
            assert!(read_manifest(&dir).is_err(), "flip at byte {byte} accepted");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_file_validates_crc_and_lists_generations() {
        let dir = tmpdir("snapfile");
        let fp = FailpointRegistry::new();
        write_snapshot_file(&dir, 1, 10, b"payload one", &fp).unwrap();
        write_snapshot_file(&dir, 2, 20, b"payload two", &fp).unwrap();
        assert_eq!(list_snapshot_generations(&dir).unwrap(), vec![2, 1]);
        let (lsn, payload) = read_snapshot_file(&dir, 2).unwrap();
        assert_eq!((lsn, payload.as_slice()), (20, b"payload two".as_slice()));
        // Corrupt generation 2: every bit flip must be detected.
        let path = snapshot_path(&dir, 2);
        let good = fs::read(&path).unwrap();
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            fs::write(&path, &bad).unwrap();
            assert!(read_snapshot_file(&dir, 2).is_err(), "flip at byte {byte} accepted");
        }
        // Generation 1 is untouched — the fallback read succeeds.
        assert!(read_snapshot_file(&dir, 1).is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_snapshot_write_never_replaces_the_target() {
        let dir = tmpdir("snaptorn");
        let fp = FailpointRegistry::new();
        write_snapshot_file(&dir, 1, 5, b"generation one", &fp).unwrap();
        for keep in [0usize, 1, 8, 20, 27, 30] {
            fp.arm("durable.snapshot_write", 1, FailAction::TornWrite { keep_bytes: keep });
            let err = write_snapshot_file(&dir, 1, 6, b"generation two", &fp).unwrap_err();
            assert!(matches!(err, StorageError::SimulatedCrash(_)));
            let (lsn, payload) = read_snapshot_file(&dir, 1).unwrap();
            assert_eq!((lsn, payload.as_slice()), (5, b"generation one".as_slice()));
        }
        fs::remove_dir_all(&dir).ok();
    }
}
