//! # tse-storage — paged persistent object store
//!
//! The substrate layer of the TSE (Transparent Schema Evolution) system.
//! The original paper (Ra & Rundensteiner, ICDE 1995) builds its prototype on
//! GemStone 3.2, which it uses for "persistent storage, concurrency control,
//! etc.". This crate is the from-scratch replacement for that platform layer:
//!
//! * **Segments** — one per class, so that the *slices* of the object-slicing
//!   object model cluster together on disk. The paper's Table 1 argues that
//!   "slices of the objects of the same attributes tend to cluster and ...
//!   one page access should be sufficient"; segments make that claim
//!   measurable.
//! * **Pages** — fixed-size pages inside a segment. Every record access is
//!   routed through a small LRU buffer pool and counted, so benchmarks can
//!   report logical accesses, buffer hits, and simulated I/O misses.
//! * **Records** — a record is an ordered list of payload fields. The payload
//!   type is generic ([`Payload`]); the object model instantiates it with its
//!   `Value` type.
//! * **Transactions** — a single-writer undo log providing atomic multi-record
//!   updates with abort/rollback, mirroring the transactional platform the
//!   paper assumes.
//! * **MVCC** — every record carries a small version chain stamped by a
//!   shared [`EpochClock`]; readers pin an epoch ([`mvcc`]) and resolve
//!   the version visible at it, so writers install new versions without
//!   ever blocking readers, `fork_shared` makes the control plane's fork a
//!   copy-free handle clone, and `SliceStore::gc` reclaims superseded
//!   versions once the oldest pin advances.
//! * **Snapshots** — a hand-rolled binary codec (over [`bytes`]) that can
//!   persist and restore an entire store, with per-section CRC32s so torn
//!   or bit-rotted blobs are rejected instead of mis-decoded.
//! * **Durability** — the [`durable`] module: checksummed snapshot
//!   generations written via temp-file + atomic rename + fsync, a
//!   CRC32-framed write-ahead log with torn-tail truncation, and the
//!   manifest naming the current generation.
//! * **Failpoints** — a [`FailpointRegistry`] of deterministic fault
//!   injection sites threaded through mutation and persistence paths, so
//!   crash-recovery tests can kill the system at any point.
//!
//! The store is internally synchronised: segments are partitioned across
//! `StoreConfig::write_stripes` lock stripes (keyed by `SegmentId % N`, each
//! stripe with its own buffer pool), so record operations on different class
//! segments run concurrently from `&self`. Cross-stripe operations — fork,
//! totals, snapshot encoding — acquire stripes in canonical index order,
//! keeping them deadlock-free against single-stripe writers. Stripe
//! contention is observable as `stripe.conflicts` / `lock.stripe_wait_ns`
//! once a telemetry domain is attached via `SliceStore::set_telemetry`.

#![warn(missing_docs)]

mod buffer;
mod crc;
pub mod durable;
mod error;
mod failpoint;
pub mod fault;
pub mod mvcc;
mod page;
mod payload;
mod segment;
pub mod scrub;
mod snapshot;
mod stats;
mod store;
mod txn;

pub use crc::{crc32, Crc32};
pub use error::{StorageError, StorageResult};
pub use failpoint::{FailAction, FailpointRegistry};
pub use fault::{with_retries, IoFaultKind, RetryPolicy};
pub use mvcc::{
    current_read_epoch, current_write_stamp, EpochClock, ReadEpochGuard, ReadPin,
    WriteStampGuard, WriteTicket,
};
pub use scrub::{scrub_dir, GenerationStatus, ScrubReport};
pub use payload::{Payload, SimplePayload};
pub use snapshot::{decode_store, decode_store_with, encode_store};
pub use stats::StoreStats;
pub use store::{RecordId, SegmentId, SliceStore, StoreConfig};
pub use txn::TxnToken;
