//! Access counters for the store.
//!
//! Every figure the benchmark harness reports about storage behaviour
//! (Table 1's query-performance and storage rows) is derived from these
//! counters, so they are deliberately simple, cheap, and exhaustive.

/// Cumulative access statistics for a [`crate::SliceStore`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Logical record reads (every `read`/`read_field`/scan element).
    pub record_reads: u64,
    /// Logical record writes (every `write_field`/`append_field`).
    pub record_writes: u64,
    /// Page touches that hit the buffer pool.
    pub page_hits: u64,
    /// Page touches that missed the buffer pool (simulated I/O reads).
    pub page_misses: u64,
    /// Records allocated over the store's lifetime.
    pub records_allocated: u64,
    /// Records freed over the store's lifetime.
    pub records_freed: u64,
    /// Records relocated to another page because an in-place grow failed.
    pub record_moves: u64,
}

impl StoreStats {
    /// Total page touches (hits + misses).
    pub fn page_touches(&self) -> u64 {
        self.page_hits + self.page_misses
    }

    /// Buffer hit ratio in `[0, 1]`; `1.0` for an untouched store.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.page_touches();
        if total == 0 {
            1.0
        } else {
            self.page_hits as f64 / total as f64
        }
    }

    /// Difference `self - earlier`, for windowed measurements. Saturating:
    /// a stale baseline (taken before a store reset) yields zeros instead of
    /// a `u64` underflow panic.
    pub fn delta_since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            record_reads: self.record_reads.saturating_sub(earlier.record_reads),
            record_writes: self.record_writes.saturating_sub(earlier.record_writes),
            page_hits: self.page_hits.saturating_sub(earlier.page_hits),
            page_misses: self.page_misses.saturating_sub(earlier.page_misses),
            records_allocated: self.records_allocated.saturating_sub(earlier.records_allocated),
            records_freed: self.records_freed.saturating_sub(earlier.records_freed),
            record_moves: self.record_moves.saturating_sub(earlier.record_moves),
        }
    }

    /// Publish every counter (plus the derived page-touch and hit-ratio
    /// figures) into a telemetry registry under `<prefix>.<field>`. Gauge
    /// semantics: call with cumulative stats, or with a
    /// [`StoreStats::delta_since`] window.
    pub fn publish(&self, telemetry: &tse_telemetry::Telemetry, prefix: &str) {
        telemetry.set_gauge(&format!("{prefix}.record_reads"), self.record_reads);
        telemetry.set_gauge(&format!("{prefix}.record_writes"), self.record_writes);
        telemetry.set_gauge(&format!("{prefix}.page_hits"), self.page_hits);
        telemetry.set_gauge(&format!("{prefix}.page_misses"), self.page_misses);
        telemetry.set_gauge(&format!("{prefix}.page_touches"), self.page_touches());
        telemetry.set_gauge(&format!("{prefix}.records_allocated"), self.records_allocated);
        telemetry.set_gauge(&format!("{prefix}.records_freed"), self.records_freed);
        telemetry.set_gauge(&format!("{prefix}.record_moves"), self.record_moves);
        // Basis points so the ratio survives integer gauges (10000 = all hits).
        telemetry.set_gauge(
            &format!("{prefix}.hit_ratio_bp"),
            (self.hit_ratio() * 10_000.0).round() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_handles_zero_and_mixed() {
        let mut s = StoreStats::default();
        assert_eq!(s.hit_ratio(), 1.0);
        s.page_hits = 3;
        s.page_misses = 1;
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(s.page_touches(), 4);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = StoreStats { record_reads: 10, page_misses: 4, ..Default::default() };
        let b = StoreStats { record_reads: 25, page_misses: 9, page_hits: 2, ..Default::default() };
        let d = b.delta_since(&a);
        assert_eq!(d.record_reads, 15);
        assert_eq!(d.page_misses, 5);
        assert_eq!(d.page_hits, 2);
    }
}
