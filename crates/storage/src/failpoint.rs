//! Deterministic failpoints for crash testing.
//!
//! A [`FailpointRegistry`] maps *site names* (e.g. `storage.insert`,
//! `durable.wal_append`, `evolve.classify`) to a one-shot action that fires
//! on the Nth time execution reaches the site. Sites are threaded through
//! storage mutation paths, the durable persistence layer, and each phase of
//! the evolution pipeline, so a test can kill the system at any point in a
//! schema change and then prove recovery restores a consistent state.
//!
//! The registry is a cheap clonable handle (`Arc` inside); every layer of
//! one system shares the same registry. When nothing is armed, a site check
//! is a single relaxed atomic load — the hooks cost effectively nothing in
//! production and in benches.
//!
//! Determinism: a site fires on an exact hit count after arming, never on
//! wall-clock or randomness, so every injected fault is replayable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::StorageError;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Return an [`StorageError::Injected`] error from the site: a clean,
    /// recoverable failure the caller is expected to handle (rollback).
    Error,
    /// Return [`StorageError::SimulatedCrash`]: the process is considered
    /// dead at this point. Callers propagate it without cleanup; the test
    /// drops the in-memory system and re-opens from disk.
    Crash,
    /// For file-writing sites only: persist the first `keep_bytes` bytes of
    /// the write, then crash — a torn write, exactly what a power cut
    /// mid-`write(2)` leaves behind. Non-file sites treat it as
    /// [`FailAction::Crash`].
    TornWrite {
        /// Bytes of the attempted write that reach the disk.
        keep_bytes: usize,
    },
    /// Return [`StorageError::Transient`] for `succeed_after` consecutive
    /// hits starting at the trigger hit, then pass forever: a momentary
    /// device stall that a bounded retry loop rides out. Unlike the other
    /// actions this one is multi-shot — it fires on hits
    /// `[trigger, trigger + succeed_after)`.
    TransientError {
        /// Number of consecutive hits that fail before the site recovers.
        succeed_after: u64,
    },
    /// Return [`StorageError::DiskFull`] on every hit from the trigger on,
    /// until the site is disarmed — a full disk stays full until space is
    /// reclaimed. Sticky, not one-shot.
    DiskFull,
}

impl FailAction {
    /// The error a firing site returns.
    pub fn to_error(self, site: &str) -> StorageError {
        match self {
            FailAction::Error => StorageError::Injected(site.to_string()),
            FailAction::Crash | FailAction::TornWrite { .. } => {
                StorageError::SimulatedCrash(site.to_string())
            }
            FailAction::TransientError { .. } => {
                StorageError::Transient(format!("injected transient fault at {site}"))
            }
            FailAction::DiskFull => {
                StorageError::DiskFull(format!("injected disk-full at {site}"))
            }
        }
    }
}

#[derive(Debug)]
struct Armed {
    action: FailAction,
    /// 1-based hit index on which the action fires.
    trigger_on_hit: u64,
    /// Hits observed since arming.
    hits: u64,
    /// Whether the action has already fired (one-shot).
    fired: bool,
}

#[derive(Default)]
struct Inner {
    /// Fast path: false ⇒ no site is armed, `hit` returns immediately.
    any_armed: AtomicBool,
    map: Mutex<HashMap<String, Armed>>,
    /// When true, [`FailpointRegistry::backoff_sleep`] accumulates into
    /// `virtual_slept_ns` instead of blocking the thread — deterministic,
    /// instant backoff for tests.
    virtual_clock: AtomicBool,
    /// Total nanoseconds "slept" while the virtual clock was on.
    virtual_slept_ns: AtomicU64,
}

/// Shared registry of armed failpoints. Clones share state.
#[derive(Clone, Default)]
pub struct FailpointRegistry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for FailpointRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.inner.map.lock();
        f.debug_struct("FailpointRegistry").field("armed", &map.len()).finish()
    }
}

impl FailpointRegistry {
    /// A registry with nothing armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm `site` to perform `action` on its `on_hit`-th hit (1-based;
    /// 0 is treated as 1). One-shot: after firing, the site counts hits but
    /// never fires again until re-armed. Re-arming resets the hit counter.
    pub fn arm(&self, site: &str, on_hit: u64, action: FailAction) {
        let mut map = self.inner.map.lock();
        map.insert(
            site.to_string(),
            Armed { action, trigger_on_hit: on_hit.max(1), hits: 0, fired: false },
        );
        self.inner.any_armed.store(true, Ordering::Release);
    }

    /// Count hits at `site` without ever firing — used to discover how many
    /// times a workload passes a site before choosing where to crash it.
    pub fn observe(&self, site: &str) {
        self.arm(site, u64::MAX, FailAction::Error);
    }

    /// Disarm one site (its hit count is discarded).
    pub fn disarm(&self, site: &str) {
        let mut map = self.inner.map.lock();
        map.remove(site);
        if map.is_empty() {
            self.inner.any_armed.store(false, Ordering::Release);
        }
    }

    /// Disarm everything.
    pub fn clear(&self) {
        let mut map = self.inner.map.lock();
        map.clear();
        self.inner.any_armed.store(false, Ordering::Release);
    }

    /// Hits observed at `site` since it was (last) armed.
    pub fn hits(&self, site: &str) -> u64 {
        self.inner.map.lock().get(site).map(|a| a.hits).unwrap_or(0)
    }

    /// Has `site` fired since it was armed?
    pub fn fired(&self, site: &str) -> bool {
        self.inner.map.lock().get(site).map(|a| a.fired).unwrap_or(false)
    }

    /// Instrumentation call placed at each site: count the hit and return
    /// the action to perform if the site fires now.
    pub fn hit(&self, site: &str) -> Option<FailAction> {
        if !self.inner.any_armed.load(Ordering::Acquire) {
            return None;
        }
        let mut map = self.inner.map.lock();
        let armed = map.get_mut(site)?;
        armed.hits += 1;
        match armed.action {
            // Multi-shot: fail on hits [trigger, trigger + succeed_after),
            // then pass forever — the device "recovered".
            FailAction::TransientError { succeed_after } => {
                let window_end = armed.trigger_on_hit.saturating_add(succeed_after);
                if armed.hits >= armed.trigger_on_hit && armed.hits < window_end {
                    armed.fired = true;
                    return Some(armed.action);
                }
            }
            // Sticky: a full disk stays full until disarmed.
            FailAction::DiskFull => {
                if armed.hits >= armed.trigger_on_hit {
                    armed.fired = true;
                    return Some(armed.action);
                }
            }
            // One-shot actions fire exactly on the trigger hit.
            _ => {
                if !armed.fired && armed.hits == armed.trigger_on_hit {
                    armed.fired = true;
                    return Some(armed.action);
                }
            }
        }
        None
    }

    /// Convenience: check the site and convert a firing into an `Err`.
    pub fn check(&self, site: &str) -> Result<(), StorageError> {
        match self.hit(site) {
            Some(action) => Err(action.to_error(site)),
            None => Ok(()),
        }
    }

    /// Switch retry-backoff sleeps to a virtual clock (tests) or back to
    /// real `thread::sleep` (production default).
    pub fn set_virtual_clock(&self, on: bool) {
        self.inner.virtual_clock.store(on, Ordering::Release);
    }

    /// Sleep `ns` nanoseconds before a retry. Under the virtual clock the
    /// duration is accumulated instead of slept, so deterministic tests run
    /// at full speed while still asserting the schedule production would
    /// follow.
    pub fn backoff_sleep(&self, ns: u64) {
        if self.inner.virtual_clock.load(Ordering::Acquire) {
            self.inner.virtual_slept_ns.fetch_add(ns, Ordering::Relaxed);
        } else if ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }

    /// Total nanoseconds accumulated by [`Self::backoff_sleep`] while the
    /// virtual clock was on.
    pub fn virtual_slept_ns(&self) -> u64 {
        self.inner.virtual_slept_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_on_nth_hit_once() {
        let fp = FailpointRegistry::new();
        fp.arm("s", 3, FailAction::Error);
        assert_eq!(fp.hit("s"), None);
        assert_eq!(fp.hit("s"), None);
        assert_eq!(fp.hit("s"), Some(FailAction::Error));
        assert_eq!(fp.hit("s"), None, "one-shot");
        assert_eq!(fp.hits("s"), 4);
        assert!(fp.fired("s"));
    }

    #[test]
    fn unarmed_sites_are_free_and_silent() {
        let fp = FailpointRegistry::new();
        assert_eq!(fp.hit("nothing"), None);
        fp.arm("a", 1, FailAction::Crash);
        assert_eq!(fp.hit("b"), None, "other sites unaffected");
        assert!(fp.check("a").is_err());
        fp.clear();
        assert_eq!(fp.hit("a"), None);
    }

    #[test]
    fn observe_counts_without_firing() {
        let fp = FailpointRegistry::new();
        fp.observe("s");
        for _ in 0..10 {
            assert_eq!(fp.hit("s"), None);
        }
        assert_eq!(fp.hits("s"), 10);
    }

    #[test]
    fn clones_share_state() {
        let fp = FailpointRegistry::new();
        let other = fp.clone();
        other.arm("s", 1, FailAction::Crash);
        assert_eq!(fp.hit("s"), Some(FailAction::Crash));
    }

    #[test]
    fn transient_error_fires_for_window_then_passes() {
        let fp = FailpointRegistry::new();
        fp.arm("s", 2, FailAction::TransientError { succeed_after: 3 });
        assert_eq!(fp.hit("s"), None, "hit 1: before trigger");
        for i in 0..3 {
            assert!(
                matches!(fp.hit("s"), Some(FailAction::TransientError { .. })),
                "hit {} inside the failure window",
                i + 2
            );
        }
        assert_eq!(fp.hit("s"), None, "hit 5: device recovered");
        assert_eq!(fp.hit("s"), None, "stays recovered");
        assert!(fp.fired("s"));
    }

    #[test]
    fn disk_full_is_sticky_until_disarmed() {
        let fp = FailpointRegistry::new();
        fp.arm("s", 1, FailAction::DiskFull);
        for _ in 0..5 {
            assert_eq!(fp.hit("s"), Some(FailAction::DiskFull));
        }
        fp.disarm("s");
        assert_eq!(fp.hit("s"), None, "space reclaimed");
    }

    #[test]
    fn virtual_clock_accumulates_instead_of_sleeping() {
        let fp = FailpointRegistry::new();
        fp.set_virtual_clock(true);
        fp.backoff_sleep(5_000_000_000); // 5 s — would hang a real sleep
        fp.backoff_sleep(1);
        assert_eq!(fp.virtual_slept_ns(), 5_000_000_001);
    }

    #[test]
    fn actions_map_to_errors() {
        assert!(matches!(
            FailAction::Error.to_error("x"),
            StorageError::Injected(s) if s == "x"
        ));
        assert!(matches!(
            FailAction::Crash.to_error("x"),
            StorageError::SimulatedCrash(s) if s == "x"
        ));
        assert!(matches!(
            FailAction::TornWrite { keep_bytes: 4 }.to_error("x"),
            StorageError::SimulatedCrash(_)
        ));
        assert!(matches!(
            FailAction::TransientError { succeed_after: 1 }.to_error("x"),
            StorageError::Transient(s) if s.contains("x")
        ));
        assert!(matches!(
            FailAction::DiskFull.to_error("x"),
            StorageError::DiskFull(s) if s.contains("x")
        ));
    }
}
