//! Online integrity scrubber for a durable system directory.
//!
//! Recovery only discovers a corrupt snapshot generation when it tries to
//! restart from it — possibly weeks after the bytes rotted. The scrubber
//! moves that discovery online: [`scrub_dir`] re-validates the CRC of every
//! snapshot generation, cross-checks the MANIFEST pointer, and walks the WAL
//! frames, all without mutating live state. The one mutation it performs is
//! *quarantine*: a generation whose bytes fail validation is renamed to
//! `snap-<gen>.tse.quarantine` so that recovery's generation scan (which
//! matches only `snap-*.tse`) skips it outright and falls back to an older
//! valid generation instead of wasting a decode attempt — while the bytes
//! stay on disk for forensics.
//!
//! Scrub reads honour the `scrub.read` failpoint and retry transient faults
//! with the caller's [`RetryPolicy`]; a read that stays unreadable is
//! reported but **not** quarantined (an I/O stall is not evidence of
//! corruption).
//!
//! The WAL walk distinguishes a *torn tail* — trailing bytes too short to
//! frame, normal when a crash interrupted an append or when a live system is
//! appending concurrently — from *interior corruption*: a full-length frame
//! whose CRC fails. Callers scanning a live directory should bound the walk
//! with `wal_valid_len` (the log length under its lock) so in-flight appends
//! past that point are never misread.
//!
//! Telemetry: counter `scrub.runs` per scrub, `scrub.quarantined` per
//! quarantined generation, events `scrub.quarantined`, `scrub.manifest_stale`
//! and `scrub.wal_corrupt`, and a `scrub.complete` summary event.

use std::fs;
use std::path::Path;

use tse_telemetry::Telemetry;

use crate::crc::crc32;
use crate::durable::{
    list_snapshot_generations, read_manifest, read_snapshot_file, snapshot_path, sync_dir,
    WAL_FILE,
};
use crate::error::{StorageError, StorageResult};
use crate::failpoint::FailpointRegistry;
use crate::fault::{with_retries, RetryPolicy};

/// Verdict on one snapshot generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerationStatus {
    /// CRC and framing check out; the generation is a valid recovery target.
    Valid {
        /// WAL LSN the generation covers.
        wal_lsn: u64,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// The bytes failed validation; the file was renamed to
    /// `.quarantine` so recovery never considers it again.
    Quarantined {
        /// The validation error that condemned it.
        error: String,
    },
    /// The file could not be read even after retries (I/O, not corruption);
    /// left in place — an unreadable disk is not evidence of rot.
    Unreadable {
        /// The I/O error.
        error: String,
    },
}

/// Everything one scrub pass learned about a directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// Per-generation verdicts, newest generation first.
    pub generations: Vec<(u64, GenerationStatus)>,
    /// Generations quarantined by this pass.
    pub quarantined: Vec<u64>,
    /// Generation the MANIFEST points at, when it is readable.
    pub manifest_generation: Option<u64>,
    /// False when the MANIFEST is corrupt, or names a generation that is
    /// missing or was quarantined — recovery will fall back to scanning.
    pub manifest_ok: bool,
    /// Complete, CRC-valid WAL frames.
    pub wal_frames: u64,
    /// Trailing bytes too short to frame (in-flight or crash-torn append —
    /// expected, not corruption).
    pub wal_torn_bytes: u64,
    /// True when a *full-length* WAL frame failed its CRC: interior rot,
    /// not a torn tail. Recovery would truncate the log here.
    pub wal_corrupt: bool,
}

impl ScrubReport {
    /// True when nothing alarming was found.
    pub fn clean(&self) -> bool {
        self.quarantined.is_empty() && self.manifest_ok && !self.wal_corrupt
    }
}

/// One scrub pass over `dir`. `wal_valid_len` bounds the WAL walk for live
/// directories (pass the log length under its lock); `None` walks the whole
/// file. See the module docs for semantics.
pub fn scrub_dir(
    dir: &Path,
    fp: &FailpointRegistry,
    policy: &RetryPolicy,
    telemetry: &Telemetry,
    wal_valid_len: Option<u64>,
) -> StorageResult<ScrubReport> {
    telemetry.incr("scrub.runs", 1);
    let gens = list_snapshot_generations(dir)?;
    let mut generations = Vec::with_capacity(gens.len());
    let mut quarantined = Vec::new();
    for gen in gens {
        let verdict = scrub_generation(dir, gen, fp, policy, telemetry);
        if matches!(verdict, GenerationStatus::Quarantined { .. }) {
            quarantined.push(gen);
        }
        generations.push((gen, verdict));
    }

    let manifest_generation = read_manifest(dir).ok().flatten();
    let manifest_ok = match read_manifest(dir) {
        Ok(None) => true, // fresh directory: nothing to point at
        Ok(Some(g)) => generations
            .iter()
            .any(|(gen, st)| *gen == g && matches!(st, GenerationStatus::Valid { .. })),
        Err(_) => false,
    };
    if !manifest_ok {
        telemetry.event(
            "scrub.manifest_stale",
            &[("generation", format!("{manifest_generation:?}").into())],
        );
    }

    let (wal_frames, wal_torn_bytes, wal_corrupt) = scrub_wal(dir, wal_valid_len)?;
    if wal_corrupt {
        telemetry.event("scrub.wal_corrupt", &[("valid_frames", wal_frames.into())]);
    }

    let report = ScrubReport {
        generations,
        quarantined,
        manifest_generation,
        manifest_ok,
        wal_frames,
        wal_torn_bytes,
        wal_corrupt,
    };
    telemetry.event(
        "scrub.complete",
        &[
            ("quarantined", report.quarantined.len().into()),
            ("wal_frames", report.wal_frames.into()),
            ("clean", report.clean().into()),
        ],
    );
    Ok(report)
}

fn scrub_generation(
    dir: &Path,
    gen: u64,
    fp: &FailpointRegistry,
    policy: &RetryPolicy,
    telemetry: &Telemetry,
) -> GenerationStatus {
    let read = with_retries(
        policy,
        fp,
        |_, _, _| telemetry.incr("fault.retries", 1),
        || {
            fp.check("scrub.read")?;
            read_snapshot_file(dir, gen)
        },
    );
    match read {
        Ok((wal_lsn, payload)) => {
            GenerationStatus::Valid { wal_lsn, bytes: payload.len() as u64 }
        }
        Err(StorageError::Corrupt(msg)) => {
            let from = snapshot_path(dir, gen);
            let mut to = from.as_os_str().to_owned();
            to.push(".quarantine");
            // Rename + dir fsync so the quarantine itself survives a crash;
            // if the rename fails the file stays in place and the next
            // scrub (or recovery's own fallback) deals with it.
            let renamed = fs::rename(&from, std::path::PathBuf::from(to))
                .map_err(|e| StorageError::Io(format!("quarantine rename: {e}")))
                .and_then(|()| sync_dir(dir));
            telemetry.incr("scrub.quarantined", 1);
            telemetry.event(
                "scrub.quarantined",
                &[
                    ("generation", gen.into()),
                    ("error", msg.as_str().into()),
                    ("renamed", renamed.is_ok().into()),
                ],
            );
            GenerationStatus::Quarantined { error: msg }
        }
        Err(e) => GenerationStatus::Unreadable { error: e.to_string() },
    }
}

/// Walk WAL frames read-only; returns (valid frames, torn tail bytes,
/// interior corruption seen).
fn scrub_wal(dir: &Path, valid_len: Option<u64>) -> StorageResult<(u64, u64, bool)> {
    let bytes = match fs::read(dir.join(WAL_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((0, 0, false)),
        Err(e) => return Err(StorageError::Io(format!("scrub wal read: {e}"))),
    };
    let bound = valid_len.map(|n| (n as usize).min(bytes.len())).unwrap_or(bytes.len());
    let bytes = &bytes[..bound];
    let mut frames = 0u64;
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            return Ok((frames, 0, false));
        }
        if rest.len() < 16 {
            return Ok((frames, (bytes.len() - offset) as u64, false));
        }
        let payload_len = u32::from_be_bytes(rest[..4].try_into().unwrap()) as usize;
        let crc = u32::from_be_bytes(rest[4..8].try_into().unwrap());
        if rest.len() < 16 + payload_len {
            return Ok((frames, (bytes.len() - offset) as u64, false));
        }
        // The full frame is present: a CRC mismatch here is rot, not a tear.
        if crc32(&rest[8..16 + payload_len]) != crc {
            return Ok((frames, (bytes.len() - offset) as u64, true));
        }
        frames += 1;
        offset += 16 + payload_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::{write_manifest, write_snapshot_file, Wal};
    use crate::failpoint::FailAction;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tse_scrub_{}_{}", name, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn flip_byte(path: &Path, offset: usize) {
        let mut bytes = fs::read(path).unwrap();
        let i = offset.min(bytes.len() - 1);
        bytes[i] ^= 0x5a;
        fs::write(path, bytes).unwrap();
    }

    #[test]
    fn clean_directory_scrubs_clean() {
        let dir = tmpdir("clean");
        let fp = FailpointRegistry::new();
        let t = Telemetry::new();
        write_snapshot_file(&dir, 1, 5, b"one", &fp).unwrap();
        write_snapshot_file(&dir, 2, 9, b"two", &fp).unwrap();
        write_manifest(&dir, 2, &fp).unwrap();
        let (mut wal, _) = Wal::open(&dir, fp.clone()).unwrap();
        wal.append(b"frame").unwrap();
        drop(wal);
        let report = scrub_dir(&dir, &fp, &RetryPolicy::none(), &t, None).unwrap();
        assert!(report.clean());
        assert_eq!(report.generations.len(), 2);
        assert_eq!(report.manifest_generation, Some(2));
        assert_eq!(report.wal_frames, 1);
        assert_eq!(report.wal_torn_bytes, 0);
        assert_eq!(t.snapshot().counter("scrub.runs"), 1);
        assert_eq!(t.snapshot().counter("scrub.quarantined"), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_generation_is_quarantined_and_hidden_from_recovery() {
        let dir = tmpdir("quarantine");
        let fp = FailpointRegistry::new();
        let t = Telemetry::new();
        write_snapshot_file(&dir, 1, 5, b"good payload", &fp).unwrap();
        write_snapshot_file(&dir, 2, 9, b"doomed payload", &fp).unwrap();
        write_manifest(&dir, 2, &fp).unwrap();
        flip_byte(&snapshot_path(&dir, 2), 30);
        let report = scrub_dir(&dir, &fp, &RetryPolicy::none(), &t, None).unwrap();
        assert_eq!(report.quarantined, vec![2]);
        assert!(!report.manifest_ok, "manifest points at the quarantined generation");
        assert!(!report.clean());
        // The quarantined file no longer matches the snap-*.tse scan, so
        // recovery falls straight back to generation 1; the bytes survive
        // under the .quarantine name for forensics.
        assert_eq!(list_snapshot_generations(&dir).unwrap(), vec![1]);
        let q = dir.join(format!("snap-{:016}.tse.quarantine", 2u64));
        assert!(q.exists());
        assert_eq!(t.snapshot().counter("scrub.quarantined"), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_scrub_read_faults_are_retried() {
        let dir = tmpdir("retry");
        let fp = FailpointRegistry::new();
        fp.set_virtual_clock(true);
        let t = Telemetry::new();
        write_snapshot_file(&dir, 1, 5, b"payload", &fp).unwrap();
        fp.arm("scrub.read", 1, FailAction::TransientError { succeed_after: 2 });
        let policy = RetryPolicy { max_retries: 3, base_backoff_ns: 1, max_backoff_ns: 8 };
        let report = scrub_dir(&dir, &fp, &policy, &t, None).unwrap();
        assert!(matches!(report.generations[0].1, GenerationStatus::Valid { .. }));
        assert!(report.quarantined.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unreadable_generation_is_not_quarantined() {
        let dir = tmpdir("unreadable");
        let fp = FailpointRegistry::new();
        fp.set_virtual_clock(true);
        let t = Telemetry::new();
        write_snapshot_file(&dir, 1, 5, b"payload", &fp).unwrap();
        fp.arm("scrub.read", 1, FailAction::TransientError { succeed_after: u64::MAX });
        let policy = RetryPolicy { max_retries: 2, base_backoff_ns: 1, max_backoff_ns: 8 };
        let report = scrub_dir(&dir, &fp, &policy, &t, None).unwrap();
        assert!(matches!(report.generations[0].1, GenerationStatus::Unreadable { .. }));
        assert!(snapshot_path(&dir, 1).exists(), "file left in place");
        assert_eq!(t.snapshot().counter("scrub.quarantined"), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_interior_rot_vs_torn_tail() {
        let dir = tmpdir("wal_rot");
        let fp = FailpointRegistry::new();
        let t = Telemetry::new();
        let (mut wal, _) = Wal::open(&dir, fp.clone()).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"second").unwrap();
        drop(wal);
        // Append a torn tail by hand: half a header.
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = fs::read(&wal_path).unwrap();
        let clean_len = bytes.len();
        bytes.extend_from_slice(&[0xAA; 7]);
        fs::write(&wal_path, &bytes).unwrap();
        let report = scrub_dir(&dir, &fp, &RetryPolicy::none(), &t, None).unwrap();
        assert_eq!(report.wal_frames, 2);
        assert_eq!(report.wal_torn_bytes, 7);
        assert!(!report.wal_corrupt, "a torn tail is pending work, not rot");

        // Now flip a byte inside the *first* frame: interior corruption.
        flip_byte(&wal_path, 18);
        let report = scrub_dir(&dir, &fp, &RetryPolicy::none(), &t, None).unwrap();
        assert_eq!(report.wal_frames, 0);
        assert!(report.wal_corrupt);

        // A valid-length bound hides concurrent appends past it.
        fs::write(&wal_path, &bytes[..clean_len]).unwrap();
        let report = scrub_dir(&dir, &fp, &RetryPolicy::none(), &t, Some(21)).unwrap();
        assert_eq!(report.wal_frames, 1, "only the first frame is inside the bound");
        fs::remove_dir_all(&dir).ok();
    }
}
