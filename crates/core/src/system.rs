//! The Transparent Schema Evolution Manager (TSEM).
//!
//! The control module of Figure 6: it takes a schema-change request against
//! a view, calls the Translator, executes the generated algebra script, runs
//! the Classifier on every created class, asks the View Manager to generate
//! and register the new view version, and renames primed classes back to
//! their old names — so the user "will have the perception that she has
//! actually modified her original schema".

use std::collections::{BTreeMap, BTreeSet};

use tse_algebra::{define_vc, ClassRef, Query, Stmt, UpdatePolicy};
use tse_classifier::classify;
use tse_object_model::{
    ClassId, Database, EvolutionTxn, ModelError, ModelResult, Oid, PendingProp, Value,
};
use tse_storage::{FailpointRegistry, StorageError, StoreConfig};
use tse_view::{ViewId, ViewManager, ViewSchema};

use crate::change::{parse_change, SchemaChange};
use crate::translate::{translate, ChangePlan};

/// Outcome of one schema evolution.
#[derive(Debug, Clone)]
pub struct EvolutionReport {
    /// The new view version.
    pub view: ViewId,
    /// View family evolved.
    pub family: String,
    /// Operator applied.
    pub op: String,
    /// Rendered algebra script (the Figure 7(b) artifact).
    pub script: String,
    /// Classes created by the script (script name → effective class).
    pub created: Vec<(String, ClassId)>,
    /// How many newly derived classes were folded onto existing duplicates.
    pub duplicates_folded: usize,
    /// View classes replaced by primed counterparts — the subschema-evolution
    /// cost metric (how much of the schema a change touches).
    pub classes_touched: usize,
    /// Wall-clock phase breakdown of this evolution.
    pub timings: PhaseTimings,
}

/// Per-phase wall-clock breakdown of one schema evolution, in nanoseconds.
///
/// The phases mirror the Figure 6 pipeline: the Translator turns the view
/// change into an algebra script, the script is executed with interleaved
/// classification, the new view selection is regenerated, and the new
/// version is swapped into the family history. The phases are measured on
/// disjoint intervals, so `phases_sum_ns() <= total_ns` always holds.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimings {
    /// The whole `evolve` call, including composite-macro expansion (for a
    /// composite change this covers every expanded primitive).
    pub total_ns: u64,
    /// `evolve.translate`: change → rendered algebra script.
    pub translate_ns: u64,
    /// `evolve.classify`: script execution plus classification of every
    /// defined class.
    pub classify_ns: u64,
    /// `evolve.view_regen`: regenerating the view selection (replacements,
    /// additions, removals, carried renames).
    pub view_regen_ns: u64,
    /// `evolve.swap_in`: generating the new view schema and registering it
    /// as the family's current version.
    pub swap_in_ns: u64,
}

impl PhaseTimings {
    /// Sum of the four measured phases (excludes untimed glue between them).
    pub fn phases_sum_ns(&self) -> u64 {
        self.translate_ns + self.classify_ns + self.view_regen_ns + self.swap_in_ns
    }
}

/// The TSE system: one shared database, many evolving views.
pub struct TseSystem {
    pub(crate) db: Database,
    pub(crate) views: ViewManager,
    pub(crate) policy: UpdatePolicy,
}

/// Pre-change state captured by the outermost `evolve` call: the store
/// transaction (which undoes record/segment mutations) plus clones of the
/// cheap control-plane structures the undo log does not cover.
struct ChangeCheckpoint {
    txn: EvolutionTxn,
    views: ViewManager,
    policy: UpdatePolicy,
}

impl Default for TseSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl TseSystem {
    /// A fresh system with default storage configuration.
    pub fn new() -> Self {
        Self::with_config(StoreConfig::default())
    }

    /// A fresh system with explicit storage configuration.
    pub fn with_config(config: StoreConfig) -> Self {
        TseSystem { db: Database::new(config), views: ViewManager::new(), policy: UpdatePolicy::default() }
    }

    /// The shared database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// An independent copy of this system for **fork–evolve–swap**: the
    /// shared system runs a schema change against the fork while readers
    /// keep using `self`, then swaps the evolved fork in under a short
    /// exclusive section. Schema metadata (`Arc<Class>`), view schemas
    /// (`Arc<ViewSchema>`), record segments, and object headers are shared
    /// or cheaply cloned; the telemetry domain and failpoint registry are
    /// the *same* handles, so spans from the fork land in the same journal
    /// and armed failpoints fire inside it. Fails if an evolution
    /// transaction is open (the undo log cannot be split).
    pub fn fork(&self) -> ModelResult<TseSystem> {
        Ok(TseSystem {
            db: self.db.fork()?,
            views: self.views.clone(),
            policy: self.policy.clone(),
        })
    }

    /// A **copy-free** fork for fork–evolve–swap: the returned system
    /// shares the store contents and object map with `self` (see
    /// [`Database::fork_shared`]) — only schema/view/policy metadata is
    /// (shallowly) cloned. Mutations the fork installs are MVCC versions on
    /// the shared data, invisible to readers pinned before them and
    /// undo-poppable on rollback, so the swap-in is a metadata publish, not
    /// a data migration. The caller must quiesce writers for the fork's
    /// lifetime. Fails if an evolution transaction is open.
    pub fn fork_shared(&self) -> ModelResult<TseSystem> {
        Ok(TseSystem {
            db: self.db.fork_shared()?,
            views: self.views.clone(),
            policy: self.policy.clone(),
        })
    }

    /// Mutable database access (base-schema construction).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The view registry.
    pub fn views(&self) -> &ViewManager {
        &self.views
    }

    /// The update-propagation policy (owned; grows union routes as schema
    /// changes create union classes).
    pub fn policy(&self) -> &UpdatePolicy {
        &self.policy
    }

    /// The telemetry domain shared by every layer of this system — storage,
    /// object model, classifier, view manager, and the evolution pipeline
    /// all record into it, producing one coherent journal per system.
    pub fn telemetry(&self) -> &tse_telemetry::Telemetry {
        self.db.telemetry()
    }

    /// The fault-injection registry shared by every layer of this system.
    /// Arm a site (e.g. `evolve.classify`, `storage.insert`) to make the
    /// matching operation fail or simulate a crash deterministically.
    pub fn failpoints(&self) -> &FailpointRegistry {
        self.db.failpoints()
    }

    fn check_failpoint(&self, site: &str) -> ModelResult<()> {
        self.db.failpoints().check(site)?;
        Ok(())
    }

    // ----- base schema construction ----------------------------------------

    /// Define a base class with local properties (global-schema setup).
    pub fn define_base_class(
        &mut self,
        name: &str,
        supers: &[&str],
        props: Vec<PendingProp>,
    ) -> ModelResult<ClassId> {
        let mut sup_ids = Vec::with_capacity(supers.len());
        for s in supers {
            sup_ids.push(self.db.schema().by_name(s)?);
        }
        let id = self.db.schema_mut().create_base_class(name, &sup_ids)?;
        for p in props {
            self.db.schema_mut().add_local_prop(id, p, None)?;
        }
        Ok(id)
    }

    // ----- views -------------------------------------------------------------

    /// Create a view over the named global classes.
    pub fn create_view(&mut self, family: &str, class_names: &[&str]) -> ModelResult<ViewId> {
        let mut classes = BTreeSet::new();
        for n in class_names {
            classes.insert(self.db.schema().by_name(n)?);
        }
        self.views.create_view(&self.db, family, classes)
    }

    /// Create a view over the named classes, automatically *type-closing*
    /// the selection: every class referenced by a `Ref`-typed attribute of a
    /// selected class is pulled in transitively (§5: "we can check the
    /// type-closure of a view schema and incorporate necessary classes").
    pub fn create_view_closed(
        &mut self,
        family: &str,
        class_names: &[&str],
    ) -> ModelResult<ViewId> {
        let mut classes = BTreeSet::new();
        for n in class_names {
            classes.insert(self.db.schema().by_name(n)?);
        }
        let probe = tse_view::build_view(
            &self.db,
            ViewId(u32::MAX),
            family,
            0,
            classes,
            BTreeMap::new(),
        )?;
        let closed = tse_view::closed_selection(&self.db, &probe)?;
        self.views.create_view(&self.db, family, closed)
    }

    /// Create a view containing every non-root base class (a convenient
    /// "whole schema" view).
    pub fn create_view_all(&mut self, family: &str) -> ModelResult<ViewId> {
        let root = self.db.schema().root();
        let classes: BTreeSet<ClassId> = self
            .db
            .schema()
            .class_ids()
            .filter(|c| *c != root)
            .filter(|c| self.db.schema().class(*c).map(|x| x.is_base()).unwrap_or(false))
            .collect();
        self.views.create_view(&self.db, family, classes)
    }

    /// The current version of a view family.
    pub fn current_view(&self, family: &str) -> ModelResult<&ViewSchema> {
        self.views.current(family)
    }

    /// A specific registered view version (old applications hold on to
    /// these — that is the interoperability story).
    pub fn view(&self, id: ViewId) -> ModelResult<&ViewSchema> {
        self.views.view(id)
    }

    // ----- schema evolution ----------------------------------------------------

    /// Apply a schema change to a view family: the family's *current*
    /// version is evolved and a new version registered. Composite macros
    /// expand into primitive sequences (§6.9); the report describes the last
    /// primitive.
    ///
    /// Every call runs under an `evolve` telemetry span (composite macros
    /// nest one `evolve` span per expanded primitive), bumps the `evolve.*`
    /// counters, and republishes the store's `store.*` gauges, so the
    /// journal records the full expansion tree of each change.
    ///
    /// Each top-level call is **all-or-nothing**: the outermost frame opens
    /// a storage transaction and checkpoints the schema, views, and policy;
    /// on any error the store rolls record/segment mutations back through
    /// its undo log and the control-plane clones are restored, so no
    /// partially created classes survive a failed change. The recursive
    /// sub-evolves a composite macro expands into join the outer
    /// transaction and leave rollback to this frame.
    pub fn evolve(&mut self, family: &str, change: &SchemaChange) -> ModelResult<EvolutionReport> {
        let telemetry = self.db.telemetry().clone();
        // One trace per top-level change: a composite macro's recursive
        // sub-evolves re-enter the same trace, so the whole expansion tree
        // shares one trace id in the journal.
        let _trace = telemetry.ensure_trace("evolve");
        let checkpoint = if self.db.in_evolution() {
            None
        } else {
            Some(ChangeCheckpoint {
                txn: self.db.begin_evolution()?,
                views: self.views.clone(),
                policy: self.policy.clone(),
            })
        };
        let span = telemetry.span_with(
            "evolve",
            &[("family", family.into()), ("op", change.op_name().into())],
        );
        match self.evolve_inner(family, change) {
            Ok(mut report) => {
                span.record("classes_created", report.created.len());
                span.record("duplicates_folded", report.duplicates_folded);
                let total = span.finish();
                // The outer span strictly contains the phase intervals, but
                // each is clamped to >= 1ns; keep the invariant exact.
                report.timings.total_ns = total.max(report.timings.phases_sum_ns());
                telemetry.incr("evolve.count", 1);
                telemetry.incr("evolve.classes_created", report.created.len() as u64);
                telemetry.incr("evolve.duplicates_folded", report.duplicates_folded as u64);
                if let Some(cp) = checkpoint {
                    self.db.commit_evolution(cp.txn)?;
                }
                self.db.publish_store_stats();
                Ok(report)
            }
            Err(e) => {
                span.record("error", true);
                span.finish();
                telemetry.incr("evolve.errors", 1);
                note_fault(&telemetry, &e);
                if let Some(cp) = checkpoint {
                    if is_crash(&e) {
                        // A simulated crash deliberately leaves the
                        // in-memory state torn mid-change (the transaction
                        // stays open, poisoning further evolves): recovery
                        // is exercised by re-opening the system from disk,
                        // not by in-memory rollback.
                    } else {
                        self.views = cp.views;
                        self.policy = cp.policy;
                        self.db.rollback_evolution(cp.txn)?;
                        telemetry.incr("evolve.rollbacks", 1);
                        telemetry.event(
                            "evolve.rollback",
                            &[
                                ("family", family.into()),
                                ("op", change.op_name().into()),
                                ("error", e.to_string().into()),
                            ],
                        );
                    }
                }
                Err(e)
            }
        }
    }

    fn evolve_inner(
        &mut self,
        family: &str,
        change: &SchemaChange,
    ) -> ModelResult<EvolutionReport> {
        match change {
            SchemaChange::InsertClass { name, sup, sub } => {
                // §6.9.1: add_class + add_edge.
                self.evolve(
                    family,
                    &SchemaChange::AddClass {
                        name: name.clone(),
                        connected_to: Some(sup.clone()),
                    },
                )?;
                self.evolve(
                    family,
                    &SchemaChange::AddEdge { sup: name.clone(), sub: sub.clone() },
                )
            }
            SchemaChange::DeleteClass2 { class } => {
                // §6.9.2: splice out, reconnect subs to supers, drop.
                let view = self.views.current(family)?.clone();
                let c = view.lookup(&self.db, class)?;
                let subs: Vec<String> = view
                    .subs_in_view(c)
                    .into_iter()
                    .map(|s| view.local_name(&self.db, s))
                    .collect::<ModelResult<_>>()?;
                let sups: Vec<String> = view
                    .supers_in_view(c)
                    .into_iter()
                    .map(|s| view.local_name(&self.db, s))
                    .collect::<ModelResult<_>>()?;
                for v in &subs {
                    self.evolve(
                        family,
                        &SchemaChange::DeleteEdge {
                            sup: class.clone(),
                            sub: v.clone(),
                            connected_to: None,
                        },
                    )?;
                    for u in &sups {
                        self.evolve(
                            family,
                            &SchemaChange::AddEdge { sup: u.clone(), sub: v.clone() },
                        )?;
                    }
                }
                for (i, u) in sups.iter().enumerate() {
                    let is_last = i + 1 == sups.len();
                    self.evolve(
                        family,
                        &SchemaChange::DeleteEdge {
                            sup: u.clone(),
                            sub: class.clone(),
                            connected_to: None,
                        },
                    )?;
                    let _ = is_last;
                }
                self.evolve(family, &SchemaChange::DeleteClass { class: class.clone() })
            }
            SchemaChange::RenameClass { old, new } => {
                // A pure view change: same classes, updated rename map.
                let view = self.views.current(family)?.clone();
                let target = view.lookup(&self.db, old)?;
                if view.lookup(&self.db, new).is_ok() {
                    return Err(ModelError::DuplicateClassName(new.clone()));
                }
                let mut renames = view.renames.clone();
                if self.db.schema().class(target)?.name == *new {
                    renames.remove(&target);
                } else {
                    renames.insert(target, new.clone());
                }
                self.check_failpoint("evolve.swap_in")?;
                let span = self.db.telemetry().clone().span("evolve.swap_in");
                let new_view =
                    self.views.push_version(&self.db, family, view.classes.clone(), renames)?;
                let swap_in_ns = span.finish();
                Ok(EvolutionReport {
                    view: new_view,
                    family: family.to_string(),
                    op: change.op_name().to_string(),
                    script: String::new(),
                    created: vec![],
                    duplicates_folded: 0,
                    classes_touched: 0,
                    timings: PhaseTimings { swap_in_ns, ..PhaseTimings::default() },
                })
            }
            primitive => self.evolve_primitive(family, primitive),
        }
    }

    /// Alias of [`TseSystem::evolve`], kept for API compatibility.
    ///
    /// Historically this was the only all-or-nothing entry point and paid
    /// for it with a full encode/decode snapshot of the system per call.
    /// Plain `evolve` is now transactional (undo-log rollback plus cheap
    /// control-plane clones, no record data copied), so the two are
    /// identical.
    #[deprecated(note = "plain `evolve` has been all-or-nothing since the \
                         transactional rework; call it directly")]
    pub fn evolve_atomic(
        &mut self,
        family: &str,
        change: &SchemaChange,
    ) -> ModelResult<EvolutionReport> {
        self.evolve(family, change)
    }

    /// Parse and apply a textual schema-change command.
    pub fn evolve_cmd(&mut self, family: &str, command: &str) -> ModelResult<EvolutionReport> {
        let change = parse_change(command)?;
        self.evolve(family, &change)
    }

    fn evolve_primitive(
        &mut self,
        family: &str,
        change: &SchemaChange,
    ) -> ModelResult<EvolutionReport> {
        let telemetry = self.db.telemetry().clone();
        let view = self.views.current(family)?.clone();

        // Phase 1 — translation: view change → algebra script. On an error
        // path the guard's Drop still closes the span.
        self.check_failpoint("evolve.translate")?;
        let span = telemetry.span("evolve.translate");
        let plan = translate(&self.db, &view, change)?;
        let script_text = plan.script.render(&self.db);
        span.record("statements", plan.script.stmts.len());
        let translate_ns = span.finish();

        // Phase 2 — script execution with interleaved classification.
        self.check_failpoint("evolve.classify")?;
        let span = telemetry.span("evolve.classify");
        let (map, duplicates_folded) = self.execute_plan(&plan)?;
        let classify_ns = span.finish();

        // Phase 3 — regenerate the view selection: replace primed classes,
        // apply additions and removals, carry renames for untouched classes.
        self.check_failpoint("evolve.view_regen")?;
        let span = telemetry.span("evolve.view_regen");
        let mut classes = view.classes.clone();
        let mut renames: BTreeMap<ClassId, String> = BTreeMap::new();
        for (c, local) in &view.renames {
            if plan.replacements.iter().all(|(old, _)| old != c) && !plan.removals.contains(c) {
                renames.insert(*c, local.clone());
            }
        }
        for (old, script_name) in &plan.replacements {
            let new = *map
                .get(script_name)
                .ok_or_else(|| ModelError::Invalid(format!("plan lost class {script_name}")))?;
            classes.remove(old);
            classes.insert(new);
            if new != *old {
                // Transparency: the replacement carries the old local name.
                let local = view.local_name(&self.db, *old)?;
                if self.db.schema().class(new)?.name != local {
                    renames.insert(new, local);
                }
            } else if let Some(local) = view.renames.get(old) {
                renames.insert(*old, local.clone());
            }
        }
        for (script_name, local) in &plan.additions {
            let new = *map
                .get(script_name)
                .ok_or_else(|| ModelError::Invalid(format!("plan lost class {script_name}")))?;
            classes.insert(new);
            if &self.db.schema().class(new)?.name != local {
                renames.insert(new, local.clone());
            }
        }
        for r in &plan.removals {
            classes.remove(r);
            renames.remove(r);
        }
        let view_regen_ns = span.finish();

        // Phase 4 — swap-in: generate the new view schema and register it as
        // the family's current version (the `view.generate` span nests here).
        self.check_failpoint("evolve.swap_in")?;
        let span = telemetry.span("evolve.swap_in");
        let new_view = self.views.push_version(&self.db, family, classes, renames)?;
        let swap_in_ns = span.finish();

        Ok(EvolutionReport {
            view: new_view,
            family: family.to_string(),
            op: change.op_name().to_string(),
            script: script_text,
            created: map.into_iter().collect(),
            duplicates_folded,
            classes_touched: plan.replacements.len(),
            timings: PhaseTimings {
                total_ns: 0, // filled in by `evolve`
                translate_ns,
                classify_ns,
                view_regen_ns,
                swap_in_ns,
            },
        })
    }

    /// Execute a plan's script with interleaved classification: every
    /// defined class is immediately integrated into the global schema (and
    /// possibly folded onto a duplicate), and later statements referencing it
    /// by name are resolved through the fold map.
    fn execute_plan(
        &mut self,
        plan: &ChangePlan,
    ) -> ModelResult<(BTreeMap<String, ClassId>, usize)> {
        let mut map: BTreeMap<String, ClassId> = BTreeMap::new();
        let mut duplicates = 0usize;
        for stmt in &plan.script.stmts {
            match stmt {
                Stmt::DefineVc { name, query } => {
                    let query = substitute(query, &map);
                    let id = define_vc(&mut self.db, name, &query)?;
                    let placement = classify(&mut self.db, id)?;
                    if placement.duplicate_of.is_some() {
                        duplicates += 1;
                    }
                    map.insert(name.clone(), placement.class);
                }
                Stmt::DefineBase { name, supers } => {
                    let mut sup_ids = Vec::with_capacity(supers.len());
                    for s in supers {
                        sup_ids.push(match s {
                            ClassRef::Id(id) => *id,
                            ClassRef::Name(n) => match map.get(n) {
                                Some(id) => *id,
                                None => self.db.schema().by_name(n)?,
                            },
                        });
                    }
                    let id = self.db.schema_mut().create_base_class(name, &sup_ids)?;
                    map.insert(name.clone(), id);
                }
                Stmt::RouteUnion { name, route } => {
                    let id = match map.get(name) {
                        Some(id) => *id,
                        None => self.db.schema().by_name(name)?,
                    };
                    self.policy.union_routes.insert(id, *route);
                }
            }
        }
        Ok((map, duplicates))
    }

    // ----- user data operations through views ------------------------------------

    fn resolve_in(&self, view: ViewId, class_local: &str) -> ModelResult<ClassId> {
        self.views.view(view)?.lookup(&self.db, class_local)
    }

    /// Create an object through a view class.
    pub fn create(
        &self,
        view: ViewId,
        class_local: &str,
        values: &[(&str, Value)],
    ) -> ModelResult<Oid> {
        let started = std::time::Instant::now();
        let class = self.resolve_in(view, class_local)?;
        let out = tse_algebra::create(&self.db, &self.policy.clone(), class, values);
        if let Err(e) = &out {
            note_fault(self.db.telemetry(), e);
        }
        observe_op(self.db.telemetry(), "create", started);
        out
    }

    /// Read an attribute through a view class.
    pub fn get(
        &self,
        view: ViewId,
        oid: Oid,
        class_local: &str,
        attr: &str,
    ) -> ModelResult<Value> {
        let started = std::time::Instant::now();
        let class = self.resolve_in(view, class_local)?;
        let out = self.db.read_attr(oid, class, attr);
        observe_op(self.db.telemetry(), "get", started);
        out
    }

    /// Set attributes through a view class.
    pub fn set(
        &self,
        view: ViewId,
        oid: Oid,
        class_local: &str,
        assignments: &[(&str, Value)],
    ) -> ModelResult<()> {
        let started = std::time::Instant::now();
        let class = self.resolve_in(view, class_local)?;
        let out = tse_algebra::set(&self.db, &self.policy.clone(), &[oid], class, assignments);
        if let Err(e) = &out {
            note_fault(self.db.telemetry(), e);
        }
        observe_op(self.db.telemetry(), "set", started);
        out
    }

    /// Add existing objects to a view class.
    pub fn add_to(&self, view: ViewId, oids: &[Oid], class_local: &str) -> ModelResult<()> {
        let class = self.resolve_in(view, class_local)?;
        tse_algebra::add(&self.db, &self.policy.clone(), oids, class)
    }

    /// Remove objects from a view class.
    pub fn remove_from(
        &self,
        view: ViewId,
        oids: &[Oid],
        class_local: &str,
    ) -> ModelResult<()> {
        let class = self.resolve_in(view, class_local)?;
        tse_algebra::remove(&self.db, &self.policy.clone(), oids, class)
    }

    /// Destroy objects.
    pub fn delete_objects(&self, oids: &[Oid]) -> ModelResult<()> {
        tse_algebra::delete(&self.db, oids)
    }

    /// The extent of a view class.
    pub fn extent(&self, view: ViewId, class_local: &str) -> ModelResult<Vec<Oid>> {
        let class = self.resolve_in(view, class_local)?;
        Ok(self.db.extent(class)?.iter().copied().collect())
    }

    /// `select from <Class> where <expr>` — evaluate a textual boolean
    /// expression over each member of a view class and return the matches.
    ///
    /// ```text
    /// tse.select_where(v, "Student", "gpa >= 3.5 and age < 30")
    /// ```
    pub fn select_where(
        &self,
        view: ViewId,
        class_local: &str,
        expr: &str,
    ) -> ModelResult<Vec<Oid>> {
        let started = std::time::Instant::now();
        let class = self.resolve_in(view, class_local)?;
        let body = crate::change::parse_expr(expr)?;
        let pred = tse_object_model::Predicate::Expr(body);
        let out = tse_algebra::select_objects(&self.db, class, &pred);
        observe_op(self.db.telemetry(), "select_where", started);
        out
    }

    /// `( select from <Class> where <expr> ) set [assignments]` — the
    /// user-level query-update pipeline of §3.3.
    pub fn update_where(
        &self,
        view: ViewId,
        class_local: &str,
        expr: &str,
        assignments: &[(&str, Value)],
    ) -> ModelResult<usize> {
        let started = std::time::Instant::now();
        let oids = self.select_where(view, class_local, expr)?;
        let class = self.resolve_in(view, class_local)?;
        tse_algebra::set(&self.db, &self.policy.clone(), &oids, class, assignments)?;
        observe_op(self.db.telemetry(), "update_where", started);
        Ok(oids.len())
    }

    /// Invoke a property with dynamic dispatch (late binding) through a view
    /// class — an overriding definition on the object's own class wins even
    /// if this view only knows a superclass.
    pub fn invoke(
        &self,
        view: ViewId,
        oid: Oid,
        class_local: &str,
        name: &str,
    ) -> ModelResult<Value> {
        let class = self.resolve_in(view, class_local)?;
        self.db.invoke(oid, class, name)
    }

    /// Attach a class constraint through a view: every member must satisfy
    /// the boolean expression after any create/set (§3.3's type-specific
    /// update behaviour — constraint checking and update refusal).
    pub fn set_constraint(
        &mut self,
        view: ViewId,
        class_local: &str,
        expr: Option<&str>,
    ) -> ModelResult<()> {
        let class = self.resolve_in(view, class_local)?;
        let pred = match expr {
            Some(e) => Some(tse_object_model::Predicate::Expr(crate::change::parse_expr(e)?)),
            None => None,
        };
        self.db.schema_mut().set_class_constraint(class, pred)
    }

    /// Proposition B, executable: are all *other* registered views
    /// structurally unaffected (same classes, same generated edges)?
    pub fn views_unaffected_except(&self, family: &str) -> ModelResult<bool> {
        for fam in self.views.families().map(|s| s.to_string()).collect::<Vec<_>>() {
            if fam == family {
                continue;
            }
            for vid in self.views.versions(&fam)?.to_vec() {
                if !self.views.is_unaffected(&self.db, vid)? {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }
}

/// Did the error originate from a simulated-crash failpoint?
pub(crate) fn is_crash(e: &ModelError) -> bool {
    matches!(e, ModelError::Storage(s) if s.is_crash())
}

/// Surface a fired failpoint in the `fault.*` counters and the journal, so
/// the observability layer sees every injected fault.
pub(crate) fn note_fault(telemetry: &tse_telemetry::Telemetry, e: &ModelError) {
    let (site, kind) = match e {
        ModelError::Storage(StorageError::Injected(site)) => (site, "error"),
        ModelError::Storage(StorageError::SimulatedCrash(site)) => (site, "crash"),
        _ => return,
    };
    telemetry.incr("fault.injected", 1);
    if kind == "crash" {
        telemetry.incr("fault.crashes", 1);
    }
    telemetry.event("fault.fired", &[("site", site.as_str().into()), ("kind", kind.into())]);
}

/// Count a data-plane operation (`op.<name>`) and record its wall-clock
/// latency into the `latency.<name>` histogram.
pub(crate) fn observe_op(telemetry: &tse_telemetry::Telemetry, op: &str, started: std::time::Instant) {
    telemetry.observe_op(op, (started.elapsed().as_nanos() as u64).max(1));
}

/// Replace by-name references that were folded onto other classes.
fn substitute(query: &Query, map: &BTreeMap<String, ClassId>) -> Query {
    match query {
        Query::Class(id) => Query::Class(*id),
        Query::ClassName(n) => match map.get(n) {
            Some(id) => Query::Class(*id),
            None => Query::ClassName(n.clone()),
        },
        Query::Select { src, pred } => {
            Query::Select { src: Box::new(substitute(src, map)), pred: pred.clone() }
        }
        Query::Hide { src, props } => {
            Query::Hide { src: Box::new(substitute(src, map)), props: props.clone() }
        }
        Query::Refine { src, new_props, inherited } => Query::Refine {
            src: Box::new(substitute(src, map)),
            new_props: new_props.clone(),
            inherited: inherited
                .iter()
                .map(|(r, n)| {
                    let r = match r {
                        ClassRef::Name(name) => match map.get(name) {
                            Some(id) => ClassRef::Id(*id),
                            None => ClassRef::Name(name.clone()),
                        },
                        ClassRef::Id(id) => ClassRef::Id(*id),
                    };
                    (r, n.clone())
                })
                .collect(),
        },
        Query::Union(a, b) => {
            Query::Union(Box::new(substitute(a, map)), Box::new(substitute(b, map)))
        }
        Query::Difference(a, b) => {
            Query::Difference(Box::new(substitute(a, map)), Box::new(substitute(b, map)))
        }
        Query::Intersect(a, b) => {
            Query::Intersect(Box::new(substitute(a, map)), Box::new(substitute(b, map)))
        }
    }
}
