//! System health state machine: `Healthy → Degraded(read-only) → Poisoned`.
//!
//! The paper's promise is *transparent* evolution — applications keep
//! working through schema change. A durability fault must therefore degrade
//! service, not end it. The health machine classifies every durable-path
//! failure by [`tse_storage::IoFaultKind`] and reacts by kind:
//!
//! - **Transient, retries exhausted** or **disk full** → [`SystemHealth::Degraded`]:
//!   reads keep serving from the published metadata snapshot, writers get a
//!   typed `ModelError::Unavailable { retry_after }` as backpressure, and an
//!   explicit `try_heal()` can restore `Healthy` without a restart.
//! - **Corruption**, or a **permanent** fault that actually poisoned the WAL
//!   (failed fsync) → [`SystemHealth::Poisoned`]: fail-stop, absorbing. The
//!   process must restart and recover from disk; `try_heal()` refuses — a
//!   poisoned log's durable contents are unknowable, so "healing" in place
//!   could silently ack lost writes.
//!
//! Every transition is journaled as a `health.transition` event (fields
//! `from`, `to`, `reason`) under the active trace, and mirrored in the
//! `health.state` gauge (0 = healthy, 1 = degraded, 2 = poisoned), so
//! `tse-inspect --check` can flag a degradation that never recovered.
//!
//! Transition rules (enforced by [`HealthMachine`]):
//! `Degraded` is only entered from `Healthy` (re-degrading with a new
//! reason while already degraded keeps the *first* reason — the root
//! cause); `Poisoned` is entered from anywhere and never left; `Healthy`
//! is only re-entered from `Degraded`, via a successful heal.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use tse_storage::{IoFaultKind, StorageError};
use tse_telemetry::Telemetry;

/// Why the system dropped to read-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedReason {
    /// The device reported `ENOSPC`; space must be reclaimed (the heal
    /// path's emergency checkpoint resets the log) before writes resume.
    DiskFull,
    /// A transient fault outlasted the bounded retry budget.
    RetriesExhausted,
}

impl DegradedReason {
    /// Stable lowercase name used in telemetry and error messages.
    pub fn name(self) -> &'static str {
        match self {
            DegradedReason::DiskFull => "disk_full",
            DegradedReason::RetriesExhausted => "retries_exhausted",
        }
    }
}

/// Current service level of a durable system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemHealth {
    /// Normal operation.
    Healthy,
    /// Read-only: reads serve, writes get `Unavailable` backpressure,
    /// `try_heal()` may restore `Healthy`.
    Degraded {
        /// Root cause of the degradation.
        reason: DegradedReason,
    },
    /// Fail-stop: the WAL's durable contents are unknowable (failed fsync)
    /// or on-disk state is corrupt. Absorbing — restart and recover.
    Poisoned,
}

impl SystemHealth {
    /// Stable lowercase name used in telemetry fields.
    pub fn name(&self) -> &'static str {
        match self {
            SystemHealth::Healthy => "healthy",
            SystemHealth::Degraded { .. } => "degraded",
            SystemHealth::Poisoned => "poisoned",
        }
    }

    fn gauge(&self) -> u64 {
        match self {
            SystemHealth::Healthy => 0,
            SystemHealth::Degraded { .. } => 1,
            SystemHealth::Poisoned => 2,
        }
    }
}

impl fmt::Display for SystemHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemHealth::Degraded { reason } => write!(f, "degraded ({})", reason.name()),
            other => f.write_str(other.name()),
        }
    }
}

/// Thread-safe holder of a [`SystemHealth`] enforcing the transition rules
/// and journaling every transition.
#[derive(Debug)]
pub struct HealthMachine {
    /// Fast path for the per-write health check: the gauge value.
    state: AtomicU8,
    detail: Mutex<SystemHealth>,
}

impl Default for HealthMachine {
    fn default() -> Self {
        HealthMachine {
            state: AtomicU8::new(0),
            detail: Mutex::new(SystemHealth::Healthy),
        }
    }
}

impl HealthMachine {
    /// A machine starting `Healthy`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current health. The fast path (`Healthy`) is a single relaxed load.
    pub fn current(&self) -> SystemHealth {
        if self.state.load(Ordering::Relaxed) == 0 {
            return SystemHealth::Healthy;
        }
        *self.detail.lock().unwrap()
    }

    /// True when writes should be refused with `Unavailable` (degraded
    /// only — poisoned writes fall through to the WAL's own fail-stop
    /// error, preserving its diagnostic).
    pub fn is_degraded(&self) -> bool {
        matches!(self.current(), SystemHealth::Degraded { .. })
    }

    /// Degrade to read-only. Only effective from `Healthy`: a second fault
    /// while already degraded keeps the original root cause, and a
    /// poisoned system never un-poisons. Returns true when the transition
    /// happened.
    pub fn degrade(&self, reason: DegradedReason, telemetry: &Telemetry) -> bool {
        let mut cur = self.detail.lock().unwrap();
        if *cur != SystemHealth::Healthy {
            return false;
        }
        let next = SystemHealth::Degraded { reason };
        self.transition(&mut cur, next, reason.name(), telemetry);
        true
    }

    /// Enter fail-stop. Absorbing; idempotent. Returns true on the first
    /// transition.
    pub fn poison(&self, reason: &str, telemetry: &Telemetry) -> bool {
        let mut cur = self.detail.lock().unwrap();
        if *cur == SystemHealth::Poisoned {
            return false;
        }
        self.transition(&mut cur, SystemHealth::Poisoned, reason, telemetry);
        true
    }

    /// Record a successful heal: `Degraded → Healthy`. Refused (returns
    /// false) from any other state.
    pub fn healed(&self, telemetry: &Telemetry) -> bool {
        let mut cur = self.detail.lock().unwrap();
        if !matches!(*cur, SystemHealth::Degraded { .. }) {
            return false;
        }
        self.transition(&mut cur, SystemHealth::Healthy, "heal", telemetry);
        true
    }

    fn transition(
        &self,
        cur: &mut SystemHealth,
        next: SystemHealth,
        reason: &str,
        telemetry: &Telemetry,
    ) {
        let from = *cur;
        *cur = next;
        self.state.store(next.gauge() as u8, Ordering::Relaxed);
        telemetry.set_gauge("health.state", next.gauge());
        telemetry.incr("health.transitions", 1);
        telemetry.event(
            "health.transition",
            &[
                ("from", from.name().into()),
                ("to", next.name().into()),
                ("reason", reason.into()),
            ],
        );
    }
}

/// Classify a durable-path error and advance the health machine. Called at
/// every point a WAL append, fsync, or snapshot write surfaces an error to
/// the control/data plane (retries have already been spent by then):
///
/// - disk-full → `Degraded(disk_full)`;
/// - transient (necessarily retry-exhausted to reach here) →
///   `Degraded(retries_exhausted)`;
/// - corruption → `Poisoned`;
/// - permanent errors poison only when the WAL itself is poisoned (failed
///   fsync) — a *clean* injected failure (`StorageError::Injected` from a
///   rolled-back evolve or a no-op append fault) leaves health alone;
/// - [`StorageError::Poisoned`] never transitions: it is a follower's
///   observation of an earlier root cause, which was classified when it
///   happened. Without this rule a degraded system would be escalated to
///   `Poisoned` by every thread that merely *noticed* the poisoned log.
pub(crate) fn observe_io_error(
    health: &HealthMachine,
    wal_poisoned: bool,
    telemetry: &Telemetry,
    e: &StorageError,
) {
    match IoFaultKind::of(e) {
        IoFaultKind::DiskFull => {
            health.degrade(DegradedReason::DiskFull, telemetry);
        }
        IoFaultKind::Transient => {
            health.degrade(DegradedReason::RetriesExhausted, telemetry);
        }
        IoFaultKind::Corruption => {
            health.poison(&e.to_string(), telemetry);
        }
        IoFaultKind::Permanent => {
            if !matches!(e, StorageError::Poisoned(_)) && wal_poisoned {
                health.poison(&e.to_string(), telemetry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_classifies_by_kind() {
        let t = Telemetry::new();
        let h = HealthMachine::new();
        // A clean injected failure with a healthy log: no transition.
        observe_io_error(&h, false, &t, &StorageError::Injected("site".into()));
        assert_eq!(h.current(), SystemHealth::Healthy);
        // A follower seeing the poisoned log: still no transition.
        observe_io_error(&h, true, &t, &StorageError::Poisoned("earlier".into()));
        assert_eq!(h.current(), SystemHealth::Healthy);
        // Disk full degrades.
        observe_io_error(&h, false, &t, &StorageError::DiskFull("enospc".into()));
        assert_eq!(h.current(), SystemHealth::Degraded { reason: DegradedReason::DiskFull });

        // Root-cause permanent fault with a poisoned wal: poison.
        let h2 = HealthMachine::new();
        observe_io_error(&h2, true, &t, &StorageError::Injected("durable.wal_fsync".into()));
        assert_eq!(h2.current(), SystemHealth::Poisoned);

        // Exhausted transient retries: degraded, even if the wal poisoned.
        let h3 = HealthMachine::new();
        observe_io_error(&h3, true, &t, &StorageError::Transient("stall".into()));
        assert_eq!(
            h3.current(),
            SystemHealth::Degraded { reason: DegradedReason::RetriesExhausted }
        );
    }

    #[test]
    fn healthy_to_degraded_to_healed() {
        let t = Telemetry::new();
        let h = HealthMachine::new();
        assert_eq!(h.current(), SystemHealth::Healthy);
        assert!(h.degrade(DegradedReason::DiskFull, &t));
        assert_eq!(h.current(), SystemHealth::Degraded { reason: DegradedReason::DiskFull });
        assert!(h.is_degraded());
        assert!(h.healed(&t));
        assert_eq!(h.current(), SystemHealth::Healthy);
        assert_eq!(t.snapshot().counter("health.transitions"), 2);
        assert_eq!(t.snapshot().counter("health.state"), 0);
    }

    #[test]
    fn second_degrade_keeps_the_root_cause() {
        let t = Telemetry::new();
        let h = HealthMachine::new();
        assert!(h.degrade(DegradedReason::RetriesExhausted, &t));
        assert!(!h.degrade(DegradedReason::DiskFull, &t), "already degraded");
        assert_eq!(
            h.current(),
            SystemHealth::Degraded { reason: DegradedReason::RetriesExhausted }
        );
    }

    #[test]
    fn poisoned_is_absorbing() {
        let t = Telemetry::new();
        let h = HealthMachine::new();
        assert!(h.poison("fsync failed", &t));
        assert!(!h.poison("again", &t), "idempotent");
        assert!(!h.degrade(DegradedReason::DiskFull, &t));
        assert!(!h.healed(&t), "a poisoned system cannot heal in place");
        assert_eq!(h.current(), SystemHealth::Poisoned);
        assert_eq!(t.snapshot().counter("health.state"), 2);
    }

    #[test]
    fn healed_requires_degraded() {
        let t = Telemetry::new();
        let h = HealthMachine::new();
        assert!(!h.healed(&t), "healthy has nothing to heal");
        assert_eq!(t.snapshot().counter("health.transitions"), 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(SystemHealth::Healthy.to_string(), "healthy");
        assert_eq!(
            SystemHealth::Degraded { reason: DegradedReason::DiskFull }.to_string(),
            "degraded (disk_full)"
        );
        assert_eq!(SystemHealth::Poisoned.to_string(), "poisoned");
    }
}
