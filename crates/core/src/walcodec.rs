//! Typed WAL frame codec: the versioned binary payload format every
//! mutation — structural *and* data-plane — is redo-logged in.
//!
//! Frame layout (all integers big-endian):
//!
//! ```text
//! u8 version (0xA2) | u8 kind | u32 body_len | u32 crc32(kind ‖ body_len ‖ body) | body
//! ```
//!
//! The version byte is `0xA2` rather than a small integer on purpose: no
//! single-bit flip of `0xA2` yields `0x00`, and `0x00` is exactly what the
//! first byte of a legacy v1 text frame looks like (the high byte of its
//! `u32` family-length prefix). A flipped version byte therefore lands in
//! the v1 parser with an impossible multi-gigabyte family length and is
//! rejected — every single-bit corruption of a typed frame is detected,
//! either by that route or by the CRC, which covers everything after the
//! version byte.
//!
//! v1 read-compat: [`decode_frame`] still accepts the PR-2 text frames
//! (`u32 family_len | family | command`), decoding them as
//! [`WalRecord::Evolve`] — a log written before this format upgrade
//! replays unchanged. New frames are always written typed.
//!
//! Data frames log **effects, not requests**: `Create` carries the oid the
//! original call assigned (recovery forces the allocator to reissue it),
//! `UpdateWhere` carries the oids its predicate resolved to (re-evaluating
//! the predicate against a half-replayed store could match a different
//! set), and every frame carries resolved *global* [`ClassId`]s rather
//! than view-local names, so replay does not depend on view state.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tse_object_model::{
    get_pending_prop, put_pending_prop, ClassId, ModelError, ModelResult, Oid, PendingProp,
    Value,
};
use tse_storage::{Crc32, Payload, StorageError};

/// Version byte of the typed frame format.
pub const FRAME_VERSION: u8 = 0xA2;

fn corrupt(msg: impl Into<String>) -> ModelError {
    ModelError::Storage(StorageError::Corrupt(msg.into()))
}

/// Discriminates the operation a WAL frame redoes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// A structural schema change (rendered command text).
    Evolve = 1,
    /// `WriteSession::create` — carries the assigned oid.
    Create = 2,
    /// `WriteSession::set`.
    Set = 3,
    /// `WriteSession::update_where` — carries the resolved oids.
    UpdateWhere = 4,
    /// `WriteSession::add_to`.
    AddTo = 5,
    /// `WriteSession::remove_from`.
    RemoveFrom = 6,
    /// `WriteSession::delete_objects`.
    Delete = 7,
    /// Checkpoint marker, appended before a snapshot is cut. A successful
    /// checkpoint resets the log (wiping the marker); one surviving a
    /// crash is skipped on replay and serves as forensic evidence of how
    /// far the checkpoint got.
    Checkpoint = 8,
    /// `define_base_class` — carries the pending property definitions, so
    /// a fresh directory replays its schema without needing a seed
    /// checkpoint.
    DefineClass = 9,
    /// `create_view` / `create_view_closed` / `create_view_all`.
    CreateView = 10,
}

impl FrameKind {
    fn from_u8(b: u8) -> ModelResult<FrameKind> {
        Ok(match b {
            1 => FrameKind::Evolve,
            2 => FrameKind::Create,
            3 => FrameKind::Set,
            4 => FrameKind::UpdateWhere,
            5 => FrameKind::AddTo,
            6 => FrameKind::RemoveFrom,
            7 => FrameKind::Delete,
            8 => FrameKind::Checkpoint,
            9 => FrameKind::DefineClass,
            10 => FrameKind::CreateView,
            other => return Err(corrupt(format!("unknown wal frame kind {other}"))),
        })
    }
}

/// One decoded redo record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Structural change: re-run `evolve_cmd(family, command)`.
    Evolve {
        /// View family the change targets.
        family: String,
        /// Rendered command text ([`crate::SchemaChange::render`]).
        command: String,
    },
    /// Re-run `create` and force the allocator to hand out `oid`.
    Create {
        /// Resolved global class.
        class: ClassId,
        /// The oid the original (acked) call assigned.
        oid: Oid,
        /// Initial attribute values by name.
        values: Vec<(String, Value)>,
    },
    /// Re-run `set` on the logged oids (also used for `update_where`,
    /// which logs its resolved oid set under [`FrameKind::UpdateWhere`]).
    Set {
        /// Resolved global class.
        class: ClassId,
        /// Target objects.
        oids: Vec<Oid>,
        /// Attribute assignments by name.
        assignments: Vec<(String, Value)>,
        /// True when the frame was logged by `update_where` (kind
        /// round-trips so forensics can tell the entry points apart).
        from_update_where: bool,
    },
    /// Re-run `add` (view-class membership).
    AddTo {
        /// Resolved global class.
        class: ClassId,
        /// Objects added.
        oids: Vec<Oid>,
    },
    /// Re-run `remove`.
    RemoveFrom {
        /// Resolved global class.
        class: ClassId,
        /// Objects removed.
        oids: Vec<Oid>,
    },
    /// Re-run `delete`.
    Delete {
        /// Objects destroyed.
        oids: Vec<Oid>,
    },
    /// Checkpoint marker — skipped on replay.
    Checkpoint,
    /// Re-run `define_base_class(name, supers, props)`.
    DefineClass {
        /// Class name.
        name: String,
        /// Superclass names (resolved at replay time, like the original
        /// call resolved them).
        supers: Vec<String>,
        /// Property definitions, logged verbatim.
        props: Vec<PendingProp>,
    },
    /// Re-run view creation for `family`.
    CreateView {
        /// View family name.
        family: String,
        /// Member class names (empty for [`ViewMode::All`]).
        classes: Vec<String>,
        /// Which `create_view*` entry point was used.
        mode: ViewMode,
    },
}

/// Which view-creation entry point a [`WalRecord::CreateView`] frame logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewMode {
    /// `create_view(family, classes)`.
    Plain,
    /// `create_view_closed(family, classes)` — type-closure probe included.
    Closed,
    /// `create_view_all(family)` — every base class.
    All,
}

impl ViewMode {
    fn to_u8(self) -> u8 {
        match self {
            ViewMode::Plain => 0,
            ViewMode::Closed => 1,
            ViewMode::All => 2,
        }
    }

    fn from_u8(b: u8) -> ModelResult<ViewMode> {
        Ok(match b {
            0 => ViewMode::Plain,
            1 => ViewMode::Closed,
            2 => ViewMode::All,
            other => return Err(corrupt(format!("unknown view mode {other}"))),
        })
    }
}

impl WalRecord {
    /// The frame kind this record encodes as.
    pub fn kind(&self) -> FrameKind {
        match self {
            WalRecord::Evolve { .. } => FrameKind::Evolve,
            WalRecord::Create { .. } => FrameKind::Create,
            WalRecord::Set { from_update_where: false, .. } => FrameKind::Set,
            WalRecord::Set { from_update_where: true, .. } => FrameKind::UpdateWhere,
            WalRecord::AddTo { .. } => FrameKind::AddTo,
            WalRecord::RemoveFrom { .. } => FrameKind::RemoveFrom,
            WalRecord::Delete { .. } => FrameKind::Delete,
            WalRecord::Checkpoint => FrameKind::Checkpoint,
            WalRecord::DefineClass { .. } => FrameKind::DefineClass,
            WalRecord::CreateView { .. } => FrameKind::CreateView,
        }
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_oids(buf: &mut BytesMut, oids: &[Oid]) {
    buf.put_u32(oids.len() as u32);
    for oid in oids {
        buf.put_u64(oid.0);
    }
}

fn put_pairs(buf: &mut BytesMut, pairs: &[(String, Value)]) {
    buf.put_u32(pairs.len() as u32);
    for (name, value) in pairs {
        put_str(buf, name);
        value.encode(buf);
    }
}

fn put_strs(buf: &mut BytesMut, strs: &[String]) {
    buf.put_u32(strs.len() as u32);
    for s in strs {
        put_str(buf, s);
    }
}

/// Encode `record` into a complete typed frame (version byte through body).
pub fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let mut body = BytesMut::new();
    match record {
        WalRecord::Evolve { family, command } => {
            put_str(&mut body, family);
            put_str(&mut body, command);
        }
        WalRecord::Create { class, oid, values } => {
            body.put_u32(class.0);
            body.put_u64(oid.0);
            put_pairs(&mut body, values);
        }
        WalRecord::Set { class, oids, assignments, .. } => {
            body.put_u32(class.0);
            put_oids(&mut body, oids);
            put_pairs(&mut body, assignments);
        }
        WalRecord::AddTo { class, oids } | WalRecord::RemoveFrom { class, oids } => {
            body.put_u32(class.0);
            put_oids(&mut body, oids);
        }
        WalRecord::Delete { oids } => {
            put_oids(&mut body, oids);
        }
        WalRecord::Checkpoint => {}
        WalRecord::DefineClass { name, supers, props } => {
            put_str(&mut body, name);
            put_strs(&mut body, supers);
            body.put_u32(props.len() as u32);
            for p in props {
                put_pending_prop(&mut body, p);
            }
        }
        WalRecord::CreateView { family, classes, mode } => {
            put_str(&mut body, family);
            put_strs(&mut body, classes);
            body.put_u8(mode.to_u8());
        }
    }
    let kind = record.kind() as u8;
    let len = body.len() as u32;
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(&len.to_be_bytes());
    crc.update(body.as_ref());
    let mut frame = Vec::with_capacity(10 + body.len());
    frame.push(FRAME_VERSION);
    frame.push(kind);
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(&crc.finalize().to_be_bytes());
    frame.extend_from_slice(body.as_ref());
    frame
}

fn get_str(buf: &mut Bytes) -> ModelResult<String> {
    if buf.remaining() < 4 {
        return Err(corrupt("wal frame: truncated string length"));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(corrupt("wal frame: truncated string"));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("wal frame: string not utf-8"))
}

fn get_oids(buf: &mut Bytes) -> ModelResult<Vec<Oid>> {
    if buf.remaining() < 4 {
        return Err(corrupt("wal frame: truncated oid count"));
    }
    let n = buf.get_u32() as usize;
    if buf.remaining() < n * 8 {
        return Err(corrupt("wal frame: truncated oid list"));
    }
    Ok((0..n).map(|_| Oid(buf.get_u64())).collect())
}

fn get_pairs(buf: &mut Bytes) -> ModelResult<Vec<(String, Value)>> {
    if buf.remaining() < 4 {
        return Err(corrupt("wal frame: truncated pair count"));
    }
    let n = buf.get_u32() as usize;
    let mut pairs = Vec::with_capacity(n.min(buf.remaining()));
    for _ in 0..n {
        let name = get_str(buf)?;
        let value = Value::decode(buf).map_err(ModelError::Storage)?;
        pairs.push((name, value));
    }
    Ok(pairs)
}

fn get_strs(buf: &mut Bytes) -> ModelResult<Vec<String>> {
    if buf.remaining() < 4 {
        return Err(corrupt("wal frame: truncated string count"));
    }
    let n = buf.get_u32() as usize;
    let mut out = Vec::with_capacity(n.min(buf.remaining()));
    for _ in 0..n {
        out.push(get_str(buf)?);
    }
    Ok(out)
}

fn get_class(buf: &mut Bytes) -> ModelResult<ClassId> {
    if buf.remaining() < 4 {
        return Err(corrupt("wal frame: truncated class id"));
    }
    Ok(ClassId(buf.get_u32()))
}

/// Decode one WAL frame payload — a typed frame, or a legacy v1 text frame
/// (accepted read-only, as [`WalRecord::Evolve`]). Every framing, length,
/// or CRC violation is an error; a frame never decodes "partially".
pub fn decode_frame(payload: &[u8]) -> ModelResult<WalRecord> {
    if payload.first() != Some(&FRAME_VERSION) {
        return decode_v1_frame(payload);
    }
    if payload.len() < 10 {
        return Err(corrupt("wal frame: truncated typed header"));
    }
    let kind_byte = payload[1];
    let body_len = u32::from_be_bytes(payload[2..6].try_into().unwrap()) as usize;
    let crc = u32::from_be_bytes(payload[6..10].try_into().unwrap());
    let body = &payload[10..];
    if body.len() != body_len {
        return Err(corrupt(format!(
            "wal frame: body is {} bytes, header says {body_len}",
            body.len()
        )));
    }
    let mut h = Crc32::new();
    h.update(&[kind_byte]);
    h.update(&(body_len as u32).to_be_bytes());
    h.update(body);
    if h.finalize() != crc {
        return Err(corrupt("wal frame: crc mismatch"));
    }
    let kind = FrameKind::from_u8(kind_byte)?;
    let mut buf = Bytes::from(body.to_vec());
    let record = match kind {
        FrameKind::Evolve => {
            WalRecord::Evolve { family: get_str(&mut buf)?, command: get_str(&mut buf)? }
        }
        FrameKind::Create => WalRecord::Create {
            class: get_class(&mut buf)?,
            oid: {
                if buf.remaining() < 8 {
                    return Err(corrupt("wal frame: truncated oid"));
                }
                Oid(buf.get_u64())
            },
            values: get_pairs(&mut buf)?,
        },
        FrameKind::Set | FrameKind::UpdateWhere => WalRecord::Set {
            class: get_class(&mut buf)?,
            oids: get_oids(&mut buf)?,
            assignments: get_pairs(&mut buf)?,
            from_update_where: kind == FrameKind::UpdateWhere,
        },
        FrameKind::AddTo => {
            WalRecord::AddTo { class: get_class(&mut buf)?, oids: get_oids(&mut buf)? }
        }
        FrameKind::RemoveFrom => {
            WalRecord::RemoveFrom { class: get_class(&mut buf)?, oids: get_oids(&mut buf)? }
        }
        FrameKind::Delete => WalRecord::Delete { oids: get_oids(&mut buf)? },
        FrameKind::Checkpoint => WalRecord::Checkpoint,
        FrameKind::DefineClass => {
            let name = get_str(&mut buf)?;
            let supers = get_strs(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(corrupt("wal frame: truncated prop count"));
            }
            let n = buf.get_u32() as usize;
            let mut props = Vec::with_capacity(n.min(buf.remaining()));
            for _ in 0..n {
                props.push(get_pending_prop(&mut buf).map_err(ModelError::Storage)?);
            }
            WalRecord::DefineClass { name, supers, props }
        }
        FrameKind::CreateView => WalRecord::CreateView {
            family: get_str(&mut buf)?,
            classes: get_strs(&mut buf)?,
            mode: {
                if buf.remaining() < 1 {
                    return Err(corrupt("wal frame: truncated view mode"));
                }
                ViewMode::from_u8(buf.get_u8())?
            },
        },
    };
    if buf.remaining() > 0 {
        return Err(corrupt("wal frame: trailing bytes in body"));
    }
    Ok(record)
}

/// Legacy v1 text frame: `u32 family_len | family | command`.
fn decode_v1_frame(payload: &[u8]) -> ModelResult<WalRecord> {
    if payload.len() < 4 {
        return Err(corrupt("wal frame too short"));
    }
    let family_len = u32::from_be_bytes(payload[..4].try_into().unwrap()) as usize;
    let rest = &payload[4..];
    if rest.len() < family_len {
        return Err(corrupt("wal frame family truncated"));
    }
    let family = std::str::from_utf8(&rest[..family_len])
        .map_err(|_| corrupt("wal frame family not utf-8"))?;
    let command = std::str::from_utf8(&rest[family_len..])
        .map_err(|_| corrupt("wal frame command not utf-8"))?;
    Ok(WalRecord::Evolve { family: family.to_string(), command: command.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Evolve {
                family: "STUDENTS".into(),
                command: "add_attribute gpa: float to Student".into(),
            },
            WalRecord::Create {
                class: ClassId(3),
                oid: Oid(41),
                values: vec![
                    ("name".into(), Value::Str("ann".into())),
                    ("age".into(), Value::Int(30)),
                    ("tags".into(), Value::List(vec![Value::Str("a".into()), Value::Null])),
                ],
            },
            WalRecord::Set {
                class: ClassId(9),
                oids: vec![Oid(1), Oid(2)],
                assignments: vec![("payload".into(), Value::Float(2.5))],
                from_update_where: false,
            },
            WalRecord::Set {
                class: ClassId(9),
                oids: vec![Oid(7)],
                assignments: vec![("flag".into(), Value::Bool(true))],
                from_update_where: true,
            },
            WalRecord::AddTo { class: ClassId(2), oids: vec![Oid(5)] },
            WalRecord::RemoveFrom { class: ClassId(2), oids: vec![Oid(5), Oid(6)] },
            WalRecord::Delete { oids: vec![Oid(8)] },
            WalRecord::Checkpoint,
            WalRecord::DefineClass {
                name: "Student".into(),
                supers: vec!["Person".into()],
                props: vec![tse_object_model::PropertyDef::stored(
                    "gpa",
                    tse_object_model::ValueType::Float,
                    Value::Float(0.0),
                )],
            },
            WalRecord::DefineClass { name: "Root".into(), supers: vec![], props: vec![] },
            WalRecord::CreateView {
                family: "VS".into(),
                classes: vec!["Person".into(), "Student".into()],
                mode: ViewMode::Plain,
            },
            WalRecord::CreateView {
                family: "VC".into(),
                classes: vec!["Person".into()],
                mode: ViewMode::Closed,
            },
            WalRecord::CreateView { family: "VA".into(), classes: vec![], mode: ViewMode::All },
        ]
    }

    #[test]
    fn every_record_round_trips() {
        for record in sample_records() {
            let frame = encode_frame(&record);
            assert_eq!(frame[0], FRAME_VERSION);
            let decoded = decode_frame(&frame).unwrap();
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn v1_text_frames_still_decode() {
        // The PR-2 format: u32 family_len | family | command.
        let family = b"COURSES";
        let command = b"delete_attribute units from Course";
        let mut payload = Vec::new();
        payload.extend_from_slice(&(family.len() as u32).to_be_bytes());
        payload.extend_from_slice(family);
        payload.extend_from_slice(command);
        assert_eq!(
            decode_frame(&payload).unwrap(),
            WalRecord::Evolve {
                family: "COURSES".into(),
                command: "delete_attribute units from Course".into(),
            }
        );
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        for record in sample_records() {
            let good = encode_frame(&record);
            for byte in 0..good.len() {
                for bit in 0..8u8 {
                    let mut bad = good.clone();
                    bad[byte] ^= 1 << bit;
                    match decode_frame(&bad) {
                        Err(_) => {}
                        Ok(decoded) => panic!(
                            "flip of byte {byte} bit {bit} in {record:?} decoded as {decoded:?}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn truncated_tails_are_rejected() {
        for record in sample_records() {
            let good = encode_frame(&record);
            for cut in 0..good.len() {
                assert!(
                    decode_frame(&good[..cut]).is_err(),
                    "truncation to {cut} bytes of {record:?} decoded"
                );
            }
        }
    }

    #[test]
    fn oversized_length_prefixes_error_cleanly() {
        // A typed frame whose header claims more body than exists.
        let mut frame = encode_frame(&WalRecord::Checkpoint);
        frame[5] = 0xFF; // body_len low byte
        assert!(decode_frame(&frame).is_err());
        // A v1 frame with an absurd family length.
        let v1 = [0x00, 0xFF, 0xFF, 0xFF, b'x'];
        assert!(decode_frame(&v1).is_err());
    }
}
